"""Measure line coverage of ``src/repro`` with the stdlib only.

CI gates on ``pytest --cov=repro --cov-fail-under=<floor>``; this script
is the no-dependencies twin used to *calibrate* that floor on machines
without coverage.py installed.  It traces the test run with
``sys.settrace`` (line events, restricted to frames under ``src/repro``)
and reports executed lines over compilable lines, per ``co_lines()`` of
every code object.

The measurement is deliberately conservative relative to coverage.py:
``# pragma: no cover`` blocks are *counted as uncovered* here but
excluded there, so a floor derived from this number underestimates what
CI will measure.  Usage:

    PYTHONPATH=src python benchmarks/coverage_floor.py [pytest args...]

(default pytest args: ``-q tests``).
"""

from __future__ import annotations

import glob
import os
import sys
from types import CodeType

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src", "repro"))

executed: dict[str, set[int]] = {}
_in_src: dict[CodeType, bool] = {}


def _local_trace(frame, event, arg):
    if event == "line":
        executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    code = frame.f_code
    wanted = _in_src.get(code)
    if wanted is None:
        wanted = code.co_filename.startswith(SRC)
        _in_src[code] = wanted
        if wanted:
            executed.setdefault(code.co_filename, set())
    return _local_trace if wanted else None


def _compilable_lines(path: str) -> set[int]:
    """Every line ``co_lines()`` attributes code to, over the whole file."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    lines: set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        stack.extend(c for c in code.co_consts if isinstance(c, CodeType))
    return lines


def main(argv: list[str]) -> int:
    import pytest

    sys.settrace(_global_trace)
    try:
        rc = pytest.main(argv or ["-q", "tests"])
    finally:
        sys.settrace(None)
    if rc != 0:
        print(f"pytest exited {rc}; coverage below is for the partial run")

    total = covered = 0
    rows = []
    for path in sorted(glob.glob(os.path.join(SRC, "**", "*.py"), recursive=True)):
        lines = _compilable_lines(path)
        hit = executed.get(os.path.abspath(path), set()) & lines
        total += len(lines)
        covered += len(hit)
        rows.append((os.path.relpath(path, SRC), len(hit), len(lines)))

    width = max(len(name) for name, _, _ in rows)
    for name, hit, of in rows:
        pct = 100.0 * hit / of if of else 100.0
        print(f"{name:<{width}}  {hit:>5}/{of:<5}  {pct:6.2f}%")
    pct = 100.0 * covered / total if total else 0.0
    print(f"{'TOTAL':<{width}}  {covered:>5}/{total:<5}  {pct:6.2f}%")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
