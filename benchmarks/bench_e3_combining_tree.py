"""E3 bench: combining trees flatten LegionClass load (5.2.2).

Regenerates the flat-vs-tree sweep table and times a tree-leaf GetBinding
once every tier is warm (the combining tree's steady-state cost).
"""

from conftest import assert_and_report

from repro.binding.hierarchy import build_agent_tree
from repro.experiments import e3_combining_tree
from repro.experiments.e3_combining_tree import _spawn_agent_on


def test_e3_combining_tree_claims_and_leaf_lookup(benchmark, small_system):
    system, cls, _instance = small_system

    servers = {}

    def spawn(parent, level, index):
        server = _spawn_agent_on(system, parent, f"bench-tree-{level}-{index}")
        binding = server.binding()
        servers[binding.loid.identity] = server
        return binding

    tree = build_agent_tree(spawn, leaf_count=4, fanout=2)
    leaf = tree.leaves[0]
    client = system.new_client("bench-e3")

    # Warm the escalation path once.
    system.call(leaf.loid, "GetBinding", cls.loid, client=client)

    def leaf_lookup():
        return system.call(leaf.loid, "GetBinding", cls.loid, client=client)

    binding = benchmark(leaf_lookup)
    assert binding.loid == cls.loid

    assert_and_report(e3_combining_tree.run(quick=True))
