"""Columnar mega-scale backend benchmarks.

Two questions, answered with wall clocks and one deterministic fit:

* **throughput** -- how many logical calls/sec and objects/sec the
  frame-at-once kernels sustain as the population climbs the E9 mega
  ladder (N/100, N/10, N);
* **speedup** -- how much faster the columnar backend runs the *same
  seeded scenario* than the all-rich-objects backend at an overlap scale
  where both exist (the differential harness proves they produce
  byte-identical reports there, so the comparison is apples to apples).

The ``e9_mega_slope`` number the perf gate protects is NOT wall clock:
it is the log-log slope of max per-class load across the ladder --
deterministic, machine-independent, and ~0 when the paper's principle
holds at mega scale.  The snapshot records its *flatness* transform
``1 / (1 + max(0, slope))`` so the gate's higher-is-better ratio logic
applies (flat ladder → 1.0; load growing linearly with population →
0.5).

Usage::

    PYTHONPATH=src python benchmarks/bench_mega.py --mega 1000000
    PYTHONPATH=src python benchmarks/bench_mega.py --quick
"""

from __future__ import annotations

import argparse
import json
import time

from repro.megascale.adapters import e9_mega_sizes, run_e9_mega_unit
from repro.megascale.compat import require_numpy
from repro.megascale.scenario import differential_spec, run_columnar, run_rich


def ladder_throughput(mega: int, seed: int = 0, quick: bool = True) -> dict:
    """Wall-clock calls/sec + objects/sec per ladder rung, and the slope."""
    rungs = []
    for size in e9_mega_sizes(mega, quick):
        started = time.perf_counter()
        unit = run_e9_mega_unit(size, seed=seed, quick=quick)
        wall = time.perf_counter() - started
        rungs.append(
            {
                "population": size,
                "issued": unit["issued"],
                "max_class_load": unit["max_class_load"],
                "settled": unit["settled"] and unit["wire_settled"],
                "wall_s": round(wall, 3),
                "calls_per_sec": round(unit["issued"] / wall, 1),
                "objects_per_sec": round(size / wall, 1),
            }
        )
    return {"rungs": rungs, "slope": ladder_slope(rungs)}


def ladder_slope(rungs) -> float:
    """Log-log OLS slope of max per-class load vs population.

    The same fit E9's ``mega`` checks apply (SeriesRecorder.slope with
    ``log_log=True``) -- repeated here so the bench stands alone.
    """
    import math

    xs = [math.log(r["population"]) for r in rungs]
    ys = [math.log(max(1, r["max_class_load"])) for r in rungs]
    n = len(xs)
    if n < 2:
        return 0.0
    mx, my = sum(xs) / n, sum(ys) / n
    denom = sum((x - mx) ** 2 for x in xs)
    if denom == 0:
        return 0.0
    return round(sum((x - mx) * (y - my) for x, y in zip(xs, ys, strict=True)) / denom, 4)


def flatness(slope: float) -> float:
    """Gate transform: 1.0 when the ladder is flat, shrinking as load grows.

    Ratios of near-zero slopes are unstable (0.002/0.001 is a "2x
    regression" of nothing), so the gate holds the line on this bounded,
    higher-is-better transform instead of the raw slope.
    """
    return round(1.0 / (1.0 + max(0.0, slope)), 4)


def columnar_vs_rich(population: int = 10_000, seed: int = 11) -> dict:
    """Same seeded scenario through both backends; reports must match."""
    spec = differential_spec(population)
    started = time.perf_counter()
    col = run_columnar(spec, seed=seed)
    col_wall = time.perf_counter() - started
    started = time.perf_counter()
    rich = run_rich(spec, seed=seed)
    rich_wall = time.perf_counter() - started
    return {
        "population": population,
        "reports_identical": col.report.render() == rich.report.render(),
        "columnar_wall_s": round(col_wall, 3),
        "rich_wall_s": round(rich_wall, 3),
        "speedup_x": round(rich_wall / col_wall, 2) if col_wall else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mega", type=int, default=1_000_000, help="top of the population ladder"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small ladder + skip the rich arm"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    require_numpy("bench_mega")
    mega = 100_000 if args.quick else args.mega
    out = {"ladder": ladder_throughput(mega, seed=args.seed, quick=True)}
    out["ladder"]["flatness"] = flatness(out["ladder"]["slope"])
    if not args.quick:
        out["columnar_vs_rich"] = columnar_vs_rich(seed=args.seed)
    print(json.dumps(out, indent=2))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
