"""E18 bench: scenario compilation + the columnar scenario backend.

Times the two hot paths the scenario language adds: compiling a catalog
spec into its backend-neutral event stream (pure seeded draws, no
kernel), and replaying a compiled scenario through the columnar frame
kernels at a mega-scale population.  The rich-object replay path is
covered by the experiment itself (``test_e18_claims_hold``), whose
per-cell cost the sweep wall-clock tracks.
"""

import pytest
from conftest import assert_and_report

from repro.experiments import e18_scenarios
from repro.scenarios import compile_events, get_scenario, stream_stats


def test_compile_catalog_scenario_cost(benchmark):
    """Compiling multi-tenant (3 phases, 3 tenants, MayI gating)."""
    spec = get_scenario("multi-tenant")

    plan = benchmark(compile_events, spec, 0)
    stats = stream_stats(plan)
    assert stats["sessions"] > 0
    assert stats["denied"] > 0  # the ACL probes are in the stream


def test_mega_backend_scenario_cost(benchmark):
    """One full mega-scale replay (compile + frames + tick kernel)."""
    np = pytest.importorskip("numpy", reason="repro[mega] extra not installed")
    del np
    from repro.scenarios.mega import run_scenario_mega

    spec = get_scenario("flash-crowd")

    report = benchmark(run_scenario_mega, spec, 0, 1_000_000)
    assert report["settled"]
    assert report["population"] >= 1_000_000
    assert report["shed"] > 0  # the surge must overrun the admission cap


def test_e18_claims_hold():
    assert_and_report(e18_scenarios.run(quick=True))
