"""Perf snapshots: record the repo's performance trajectory over PRs.

Measures three layers and writes ``BENCH_<label>.json`` at the repo root:

* **kernel**  -- events/sec on the timeout, spawn, and future-resume paths
  (the micro-workloads of :mod:`bench_kernel`);
* **system**  -- end-to-end warm ``system.call`` latency and calls/sec;
* **sweep_multicore** -- jurisdiction-sharded E15 full-sweep speedup at
  ``--shards 4`` (see :mod:`bench_shards`);
* **sweep**   -- wall time of the quick experiment sweep
  (``python -m repro.experiments``), optionally parallel via ``--jobs``.

Usage::

    PYTHONPATH=src python benchmarks/snapshot.py --label pr1 --jobs 4
    PYTHONPATH=src python benchmarks/snapshot.py --label quick --skip-sweep

Compare two snapshots::

    PYTHONPATH=src python benchmarks/snapshot.py --compare BENCH_seed.json BENCH_pr1.json

Snapshots are committed so every future PR has a trajectory to argue
against; wall-clock numbers are machine-dependent, so compare ratios
within one machine's series, not absolute numbers across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_kernel  # noqa: E402  (sibling module, not a package)
import bench_shards  # noqa: E402  (sibling module, not a package)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def snapshot_kernel() -> dict:
    """Events/sec for each kernel micro-workload (best of 3)."""
    metrics = {}
    for name, fn, n in (
        ("timeout_chain", bench_kernel.timeout_chain, 20_000),
        ("spawn_wave", bench_kernel.spawn_wave, 5_000),
        ("future_resume", bench_kernel.future_resume, 10_000),
    ):
        wall, events = bench_kernel.measure(fn, n)
        metrics[name] = {
            "iters": n,
            "events": events,
            "ops_per_sec": round(n / wall, 1),
            "wall_s": round(wall, 6),
        }
    return metrics


def snapshot_system_call(n: int = 300) -> dict:
    """Warm end-to-end call throughput (one request/reply per call)."""
    system, loid = bench_kernel.build_warm_system()
    wall, _ = bench_kernel.measure(bench_kernel.warm_system_call, system, loid, n)
    return {
        "calls": n,
        "calls_per_sec": round(n / wall, 1),
        "wall_ms_per_call": round(1000.0 * wall / n, 4),
    }


def snapshot_e15_goodput() -> dict:
    """E15 flow-arm goodput at the 4x overload level (fraction of capacity).

    The flow-control claim the perf gate protects: admission control must
    keep delivered goodput at the capacity plateau while offered load runs
    4x past it.  Recorded as a throughput-style metric (higher is better)
    so check_regression can hold the line on it like any ops/sec number.
    """
    from repro.experiments import e15_overload  # deferred: imports numpy

    started = time.perf_counter()
    result = e15_overload.run(quick=True, seed=0)
    wall = time.perf_counter() - started
    by_level = dict(
        zip(result.recorder.xs, result.recorder.series("flow_goodput"), strict=True)
    )
    level = 4.0 if 4.0 in by_level else max(by_level)
    return {
        "level": level,
        "goodput_x_capacity": by_level[level],
        "all_checks_passed": result.passed,
        "wall_s": round(wall, 2),
    }


def snapshot_e16_local_read() -> dict:
    """E16 locality claim the perf gate protects: with one replica per
    jurisdiction, same-jurisdiction reads stay at same-host cost.

    Recorded as reciprocal simulated latency (reads per simulated ms,
    higher is better) so check_regression can hold a line on it.  The
    number is deterministic -- if locality-aware selection breaks and
    local reads start crossing the WAN, it collapses by ~800x.
    """
    from repro.experiments import e16_georeplication as e16

    started = time.perf_counter()
    out = e16.shard_measure(("locality", e16.N_SITES), quick=True, seed=0)
    wall = time.perf_counter() - started
    local_ms = out["local_mean"]
    return {
        "replicas": out["replicas"],
        "local_mean_sim_ms": round(local_ms, 4),
        "reads_per_sim_ms": round(1.0 / local_ms, 3) if local_ms else 0.0,
        "wan_msgs_per_read": round(out["wan_per_read"], 4),
        "failed_reads": out["failed"],
        "wall_s": round(wall, 2),
    }


def snapshot_e17_governed_goodput() -> dict:
    """E17 governed-arm storm goodput (fraction of capacity, higher is
    better): the banded-governor claim the perf gate protects.

    Simulated-time and deterministic -- if band coupling stops tightening
    admission and retry policy under the storm, the governed arm joins
    the baseline's collapse and this drops ~3x.  The recovery figure and
    the band walk ride along for context.
    """
    from repro.experiments import e17_governor as e17  # deferred import

    started = time.perf_counter()
    out = e17.shard_measure("governed", quick=True, seed=0)
    wall = time.perf_counter() - started
    by_phase = {p["phase"]: p for p in out["phases"]}
    return {
        "storm_goodput_x_capacity": round(by_phase["storm"]["goodput_x"], 3),
        "recovery_goodput_x_capacity": round(
            by_phase["recovery"]["goodput_x"], 3
        ),
        "band_final": out["band_final"],
        "ledgered_transitions": len(out["ledger"]),
        "settled": out["settled"],
        "wall_s": round(wall, 2),
    }


def snapshot_e18_scenario_matrix() -> dict:
    """E18 scenario-language claim the perf gate protects: every catalog
    scenario's plain rich-object replay keeps delivering its goodput.

    Runs the plain arm of each catalog scenario and records the mean
    peak-phase goodput (fraction of deployment capacity, higher is
    better).  Simulated-time and deterministic -- it collapses if the
    compiler stops pacing arrivals, the driver stops completing
    sessions, or the deployment stops serving the mix.  The MayI-denial
    agreement and total delivered calls ride along for context.
    """
    from repro.experiments import e18_scenarios as e18
    from repro.scenarios import scenario_names

    started = time.perf_counter()
    partials = [
        e18.shard_measure((name, "plain", 0.0), quick=True, seed=0)
        for name in scenario_names()
    ]
    wall = time.perf_counter() - started
    goodputs = [
        max((p["goodput_x"] for p in partial["phases"]), default=0.0)
        for partial in partials
    ]
    return {
        "scenarios": len(partials),
        "mean_plain_goodput_x": round(sum(goodputs) / len(goodputs), 4),
        "ok_total": sum(p["outcomes"]["ok"] for p in partials),
        "denied_matches": all(
            p["outcomes"]["denied"] == p["expected_denied"] for p in partials
        ),
        "all_settled": all(p["settled"] for p in partials),
        "wall_s": round(wall, 2),
    }


def snapshot_e9_mega(mega: int = 1_000_000) -> dict:
    """E9 mega-ladder flatness: the columnar-backend claim the gate protects.

    Runs the E9 ``--mega`` population ladder (N/100, N/10, N) through the
    columnar backend and fits the log-log slope of max per-class load.
    The gated number is the bounded transform ``1 / (1 + max(0, slope))``
    (higher is better; 1.0 = perfectly flat ladder) because ratios of
    near-zero raw slopes are unstable.  Deterministic and simulated-time;
    the wall-clock calls/sec of the top rung rides along for context.
    """
    import bench_mega  # deferred: needs the repro[mega] extra (numpy)

    started = time.perf_counter()
    ladder = bench_mega.ladder_throughput(mega, seed=0, quick=True)
    wall = time.perf_counter() - started
    top = ladder["rungs"][-1]
    return {
        "population": top["population"],
        "slope": ladder["slope"],
        "flatness": bench_mega.flatness(ladder["slope"]),
        "all_settled": all(r["settled"] for r in ladder["rungs"]),
        "top_calls_per_sec": top["calls_per_sec"],
        "top_objects_per_sec": top["objects_per_sec"],
        "wall_s": round(wall, 2),
    }


def snapshot_sweep_multicore(shards: int = 4) -> dict:
    """Jurisdiction-sharded E15 full-sweep speedup at ``--shards N``.

    Real pool wall-clock on multi-CPU machines; on a single-CPU container
    the per-unit serial walls are measured for real and the N-worker
    makespan is modelled (LPT), with the mode recorded in the snapshot.
    See :mod:`bench_shards` for the full story.
    """
    return bench_shards.sweep_multicore(shards=shards, quick=False, seed=0)


def snapshot_sweep(jobs: int = 1) -> dict:
    """Wall time of the full quick experiment sweep via the CLI."""
    cmd = [sys.executable, "-m", "repro.experiments"]
    if jobs != 1:
        cmd += ["--jobs", str(jobs)]
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    started = time.perf_counter()
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    wall = time.perf_counter() - started
    return {
        "jobs": jobs,
        "wall_s": round(wall, 2),
        "all_passed": proc.returncode == 0,
    }


def take_snapshot(label: str, jobs: int, skip_sweep: bool) -> dict:
    data = {
        "label": label,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": {
            "kernel": snapshot_kernel(),
            "system_call": snapshot_system_call(),
            "e15_goodput": snapshot_e15_goodput(),
            "e16_local_read": snapshot_e16_local_read(),
            "e17_governed_goodput": snapshot_e17_governed_goodput(),
            "e18_scenario_matrix": snapshot_e18_scenario_matrix(),
            "sweep_multicore": snapshot_sweep_multicore(),
        },
    }
    from repro.megascale.compat import HAVE_NUMPY

    if HAVE_NUMPY:
        data["metrics"]["e9_mega"] = snapshot_e9_mega()
    if not skip_sweep:
        data["metrics"]["sweep"] = snapshot_sweep(jobs)
    return data


def compare(path_a: str, path_b: str) -> int:
    """Print B/A speedup ratios for every shared throughput metric."""
    with open(path_a) as fh:
        a = json.load(fh)
    with open(path_b) as fh:
        b = json.load(fh)
    print(f"{'metric':<28} {a['label']:>14} {b['label']:>14} {'speedup':>9}")
    rows = []
    for name in a["metrics"]["kernel"]:
        if name in b["metrics"]["kernel"]:
            va = a["metrics"]["kernel"][name]["ops_per_sec"]
            vb = b["metrics"]["kernel"][name]["ops_per_sec"]
            rows.append((f"kernel.{name}", va, vb))
    rows.append(
        (
            "system_call",
            a["metrics"]["system_call"]["calls_per_sec"],
            b["metrics"]["system_call"]["calls_per_sec"],
        )
    )
    multicore_a = a["metrics"].get("sweep_multicore")
    multicore_b = b["metrics"].get("sweep_multicore")
    if multicore_a and multicore_b:
        rows.append(
            ("sweep_multicore", multicore_a["speedup_x"], multicore_b["speedup_x"])
        )
    for name, va, vb in rows:
        print(f"{name:<28} {va:>14.0f} {vb:>14.0f} {vb / va:>8.2f}x")
    sweep_a = a["metrics"].get("sweep")
    sweep_b = b["metrics"].get("sweep")
    if sweep_a and sweep_b:
        print(
            f"{'sweep wall (s)':<28} {sweep_a['wall_s']:>14.1f} "
            f"{sweep_b['wall_s']:>14.1f} {sweep_a['wall_s'] / sweep_b['wall_s']:>8.2f}x"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="dev", help="snapshot label (file suffix)")
    parser.add_argument("--jobs", type=int, default=1, help="sweep parallelism")
    parser.add_argument("--skip-sweep", action="store_true", help="kernel+call only")
    parser.add_argument(
        "--compare", nargs=2, metavar=("A.json", "B.json"), help="diff two snapshots"
    )
    args = parser.parse_args(argv)

    if args.compare:
        return compare(*args.compare)

    data = take_snapshot(args.label, args.jobs, args.skip_sweep)
    out_path = os.path.join(REPO_ROOT, f"BENCH_{args.label}.json")
    with open(out_path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(json.dumps(data, indent=2))
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
