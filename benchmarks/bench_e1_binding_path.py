"""E1 bench: the binding walk (Figs. 13/17) + warm-invoke cost.

Regenerates the E1 table (cold / agent-warm / client-warm / inert message
counts) and times the steady-state operation the paper optimises for: a
fully warm method invocation, which must be a bare request/reply.
"""

from conftest import assert_and_report

from repro.experiments import e1_binding_path


def test_e1_binding_path_claims_and_warm_invoke(benchmark, small_system):
    system, _cls, instance = small_system

    # Warm the path once, then measure the steady state.
    system.call(instance.loid, "Ping")

    def warm_invoke():
        return system.call(instance.loid, "Ping")

    value = benchmark(warm_invoke)
    assert value == "pong"

    assert_and_report(e1_binding_path.run(quick=True))
