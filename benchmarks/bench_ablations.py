"""Ablation benches A1-A4: the design choices DESIGN.md calls out.

A1  explicit invalidation propagation (4.1.4's optional optimisation)
A2  the per-object binding cache (the premise of 5.2.1)
A3  binding TTLs (the expiry field of 3.5)
A4  the locality assumption (the premise of 5.2)

Each bench regenerates the ablation's table and times a representative
operation.
"""

from conftest import assert_and_report

from repro.experiments import (
    ablation_caching,
    ablation_propagation,
    ablation_ttl_locality,
)


def test_a1_propagation_claims_and_subscribe_cost(benchmark, small_system):
    system, cls, _instance = small_system
    agent = system.agents[system.sites[0].name]

    def subscribe():
        system.call(cls.loid, "SubscribeInvalidations", agent.binding())
        return True

    assert benchmark(subscribe)
    assert_and_report(ablation_propagation.run(quick=True))


def test_a2_cache_claims_and_cached_resolve_cost(benchmark, small_system):
    system, _cls, instance = small_system
    client = system.new_client("bench-a2")
    system.call(instance.loid, "Ping", client=client)

    def cached_resolve():
        fut = system.kernel.spawn(client.runtime.resolve(instance.loid))
        return system.kernel.run_until_complete(fut)

    binding = benchmark(cached_resolve)
    assert binding.loid == instance.loid
    assert_and_report(ablation_caching.run(quick=True))


def test_a3_ttl_claims_and_expiry_check_cost(benchmark, small_system):
    system, _cls, instance = small_system
    from repro.naming.binding import Binding
    from repro.naming.cache import BindingCache

    cache = BindingCache(capacity=128)
    cache.insert(Binding(instance.loid, instance.address, expires_at=1e12))

    def expiry_checked_lookup():
        return cache.lookup(instance.loid, system.kernel.now)

    assert benchmark(expiry_checked_lookup) is not None
    assert_and_report(ablation_ttl_locality.run_ttl(quick=True))


def test_a4_locality_claims_and_wan_call_cost(benchmark, small_system):
    system, _cls, instance = small_system
    remote_site = system.sites[1].name
    remote_client = system.new_client("bench-a4", site=remote_site)
    system.call(instance.loid, "Ping", client=remote_client)

    def cross_site_call():
        return system.call(instance.loid, "Increment", 1, client=remote_client)

    assert benchmark(cross_site_call) >= 1
    assert_and_report(ablation_ttl_locality.run_locality(quick=True))
