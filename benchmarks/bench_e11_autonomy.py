"""E11 bench: site autonomy (2.2, Fig. 9) + the cost of a MayI refusal.

Regenerates the autonomy table and times the security boundary itself: a
Create() that the target magistrate refuses (policy evaluated, refusal
marshalled back).
"""

from conftest import assert_and_report

from repro import errors
from repro.experiments import e11_autonomy
from repro.security.mayi import DenyAll


def test_e11_autonomy_claims_and_refusal_cost(benchmark, small_system):
    system, cls, _instance = small_system
    locked = system.magistrates[system.sites[1].name]
    locked.impl.mayi_policy = DenyAll()

    def refused_create():
        try:
            system.call(cls.loid, "Create", {"magistrate": locked.loid})
            return False
        except errors.SecurityDenied:
            return True

    was_refused = benchmark(refused_create)
    assert was_refused
    locked.impl.mayi_policy = locked.impl.mayi_policy.__class__()  # restore-ish

    assert_and_report(e11_autonomy.run(quick=True))
