"""E5 bench: the Fig. 11 lifecycle + deactivate/activate round-trip cost.

Regenerates the lifecycle table and times a full Active→Inert→Active
cycle (SaveState, OPR to vault, vault to host, RestoreState).
"""

from conftest import assert_and_report

from repro.experiments import e5_lifecycle


def test_e5_lifecycle_claims_and_cycle_cost(benchmark, small_system):
    system, cls, instance = small_system
    loid = instance.loid
    row = system.call(cls.loid, "GetRow", loid)
    magistrate = row.current_magistrates[0]

    def cycle():
        system.call(magistrate, "Deactivate", loid)
        return system.call(magistrate, "Activate", loid)

    address = benchmark(cycle)
    assert address is not None

    assert_and_report(e5_lifecycle.run(quick=True))
