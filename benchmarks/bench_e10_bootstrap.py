"""E10 bench: bootstrap (4.2.1) + full bring-up wall time.

Regenerates the bring-up table and times LegionSystem.build for a 2-site
system -- the complete section-4.2.1 procedure from nothing to a working
object system.
"""

from conftest import assert_and_report

from repro.experiments import e10_bootstrap
from repro.experiments.common import uniform_sites
from repro.system.legion import LegionSystem


def test_e10_bootstrap_claims_and_bringup_cost(benchmark):
    def bring_up():
        return LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=7)

    system = benchmark(bring_up)
    assert len(system.host_servers) == 4

    assert_and_report(e10_bootstrap.run(quick=True))
