"""E8 bench: the relation machinery (2.1) + the cost of Derive().

Regenerates the inheritance/behaviour table and times run-time class
derivation -- LegionClass id allocation, class-object activation through
a magistrate, table and relation updates.
"""

import itertools

from conftest import assert_and_report

from repro.experiments import e8_inheritance

_counter = itertools.count(1)


def test_e8_inheritance_claims_and_derive_cost(benchmark, small_system):
    system, cls, _instance = small_system

    derived = []

    def derive():
        name = f"BenchSub{next(_counter)}"
        binding = system.call(cls.loid, "Derive", name, {})
        derived.append(binding)
        return binding

    # Bounded rounds: each round activates a real class object on a host.
    binding = benchmark.pedantic(derive, rounds=30, iterations=1)
    assert binding.loid.is_class
    for extra in derived:  # free the slots for later benches
        system.call(cls.loid, "Delete", extra.loid)

    assert_and_report(e8_inheritance.run(quick=True))
