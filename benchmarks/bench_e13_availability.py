"""E13 bench: availability under chaos + the cost of one recovery.

Regenerates the chaos table and times the full crash→sweep→
reactivate-from-checkpoint sequence: each round crashes the object's
process, so the measured sweep *always* performs a recovery.
"""

from conftest import assert_and_report

from repro.experiments import e13_availability
from repro.faults.driver import ChaosDriver
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl


def test_e13_chaos_claims_and_recovery_cost(benchmark):
    system = LegionSystem.build(
        [SiteSpec("east", hosts=3), SiteSpec("west", hosts=3)], seed=42
    )
    site0 = system.sites[0].name
    cls = system.create_class(
        "BenchCounter",
        factory=CounterImpl,
        magistrate=system.magistrates[site0].loid,
        host=system.host_servers[system.site_hosts[site0][0]].loid,
    )
    binding = system.create_instance(cls.loid)
    system.call(binding.loid, "Increment", 7)
    row = system.call(cls.loid, "GetRow", binding.loid)
    system.call(row.current_magistrates[0], "Checkpoint", binding.loid)
    driver = ChaosDriver(system, FaultPlan(), FaultLog())
    driver.start()

    def crash_then_recover():
        driver.crash_object(str(binding.loid))
        system.call(row.current_magistrates[0], "SweepHosts")
        return system.call(binding.loid, "Get")

    value = benchmark(crash_then_recover)
    assert value == 7  # recovered from the checkpoint every round

    assert_and_report(e13_availability.run(quick=True))
