"""E4 bench: class cloning (5.2.2) + the cost of one Create().

Regenerates the clone-count table and times the operation that makes a
class "hot": a full Create() -- LOID allocation, magistrate cooperation,
host activation, table insertion.
"""

from conftest import assert_and_report

from repro.experiments import e4_class_cloning


def test_e4_cloning_claims_and_create_cost(benchmark, small_system):
    system, cls, _instance = small_system

    created = []

    def create_instance():
        binding = system.call(cls.loid, "Create", {})
        created.append(binding)
        return binding

    # Bounded rounds: every round really creates an object, and host
    # process slots are finite.
    binding = benchmark.pedantic(create_instance, rounds=30, iterations=1)
    assert binding.loid.class_id == cls.loid.class_id
    for extra in created:  # free the slots for later benches
        system.call(cls.loid, "Delete", extra.loid)

    assert_and_report(e4_class_cloning.run(quick=True))
