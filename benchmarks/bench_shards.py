"""The ``sweep_multicore`` bench: jurisdiction-sharded sweep speedup.

The sharded runner (``repro.experiments.runner --shards N``) farms the
independent units of a sweep -- one simulated jurisdiction/configuration
per unit -- onto worker processes and merges the partials
deterministically.  This bench prices that on the E15 *full* sweep (14
units: flow and baseline arms across six offered-load levels), the
heaviest sharded workload in the suite.

Two measurement modes, recorded honestly in the output:

* ``measured``      -- >= 2 usable CPUs: run the sweep once serially
  (per-unit walls) and once through ``--shards N`` workers; the speedup
  is the real wall-clock ratio.
* ``modelled-1cpu`` -- a single-CPU container cannot exhibit parallel
  speedup, so the bench measures the per-unit serial walls (real work,
  real machine) and models the N-worker makespan with the same
  longest-processing-time placement the runner's longest-first
  submission approximates.  The per-unit walls ship in the snapshot so
  the model is auditable.

Either way ``speedup_x`` is serial wall / parallel wall for the same
unit set, and reports stay byte-identical across shard counts (that
equivalence is pinned by ``tests/experiments/test_shard_matrix.py``,
not here).

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_shards.py --shards 4
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def measure_serial_units(quick: bool = False, seed: int = 0) -> list:
    """Run every E15 shard unit in-process; [(unit, wall seconds)]."""
    from repro.experiments import e15_overload

    walls = []
    for unit in e15_overload.shard_units(quick=quick):
        started = time.perf_counter()
        e15_overload.shard_measure(unit, quick=quick, seed=seed)
        walls.append((unit, time.perf_counter() - started))
    return walls


def lpt_makespan(times: list, workers: int) -> float:
    """Makespan of a longest-processing-time schedule on ``workers``."""
    loads = [0.0] * max(1, workers)
    for wall in sorted(times, reverse=True):
        loads[loads.index(min(loads))] += wall
    return max(loads)


def measure_pool_wall(shards: int, quick: bool = False, seed: int = 0) -> float:
    """Real wall time of one sharded E15 run through the runner."""
    from repro.experiments import runner

    started = time.perf_counter()
    runner.run_one("e15", quick=quick, seed=seed, shards=shards)
    return time.perf_counter() - started


def sweep_multicore(shards: int = 4, quick: bool = False, seed: int = 0) -> dict:
    """The ``sweep_multicore`` metric for the BENCH snapshot."""
    cpus = usable_cpus()
    unit_walls = measure_serial_units(quick=quick, seed=seed)
    serial_s = sum(wall for _unit, wall in unit_walls)
    if cpus >= 2:
        parallel_s = measure_pool_wall(shards, quick=quick, seed=seed)
        mode = "measured"
    else:
        parallel_s = lpt_makespan([wall for _unit, wall in unit_walls], shards)
        mode = "modelled-1cpu"
    return {
        "experiment": "e15",
        "quick": quick,
        "shards": shards,
        "cpus": cpus,
        "mode": mode,
        "units": len(unit_walls),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup_x": round(serial_s / parallel_s, 2),
        "unit_walls": [
            {"unit": f"{arm}@x{level:g}", "wall_s": round(wall, 3)}
            for (level, arm), wall in unit_walls
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4, help="worker count")
    parser.add_argument("--quick", action="store_true", help="quick sweep units")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    out = sweep_multicore(shards=args.shards, quick=args.quick, seed=args.seed)
    print(f"{'unit':<16} {'wall (s)':>9}")
    for row in out["unit_walls"]:
        print(f"{row['unit']:<16} {row['wall_s']:>9.3f}")
    print(
        f"\n{out['units']} units, serial {out['serial_s']:.2f}s, "
        f"--shards {out['shards']} {out['mode']}: {out['parallel_s']:.2f}s "
        f"-> {out['speedup_x']:.2f}x (cpus={out['cpus']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
