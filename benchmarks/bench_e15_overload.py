"""E15 bench: the admission-control hot path + the goodput claim table.

Times one overload burst -- a batch of concurrent invokes against a
flow-controlled serial server, where most arrivals take the shed path
(metric + FaultLog-less Overloaded reply) and the rest queue and drain.
This is the per-request cost admission control adds under saturation,
the path E15's goodput plateau depends on.
"""

import pytest
from conftest import assert_and_report

from repro.core.runtime import RetryPolicy
from repro.errors import Overloaded
from repro.experiments import e15_overload
from repro.flow.config import FlowConfig
from repro.metrics.counters import ComponentKind
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import SerialServiceImpl

BURST = 20


@pytest.fixture(scope="module")
def flow_system():
    system = LegionSystem.build(
        [SiteSpec("main", hosts=2)],
        seed=42,
        flow=FlowConfig(
            capacity=1,
            queue_limit=4,
            service_estimate=0.5,
            admit_kinds=frozenset({ComponentKind.APPLICATION}),
        ),
    )
    cls = system.create_class(
        "BenchSerial", factory=lambda: SerialServiceImpl(service_time=0.5)
    )
    binding = system.create_instance(cls.loid)
    client = system.new_client("burst")
    client.runtime.retry_policy = RetryPolicy(max_attempts=1)
    return system, client, binding


def test_e15_overload_claims_and_shed_cost(benchmark, flow_system):
    system, client, binding = flow_system
    kernel = system.kernel

    def overload_burst():
        futs = [
            kernel.spawn(client.runtime.invoke(binding.loid, "Work"))
            for _ in range(BURST)
        ]
        kernel.run()
        served = sum(1 for f in futs if f.exception() is None)
        shed = sum(1 for f in futs if isinstance(f.exception(), Overloaded))
        return served, shed

    served, shed = benchmark(overload_burst)
    # capacity 1 + queue 4 admit five of every burst; the rest shed.
    assert served == 5 and shed == BURST - 5

    assert_and_report(e15_overload.run(quick=True))
