"""E2 bench: bounded per-agent load (5.2.1) + cache-served GetBinding cost.

Regenerates the E2 sweep table and times what a loaded Binding Agent does
all day: serving a GetBinding request from its cache.
"""

from conftest import assert_and_report

from repro.experiments import e2_agent_load


def test_e2_agent_load_claims_and_cached_getbinding(benchmark, small_system):
    system, _cls, instance = small_system
    agent = system.agents[system.sites[0].name]
    client = system.new_client("bench-e2")

    # Prime the agent's cache with the instance binding.
    system.call(instance.loid, "Ping", client=client)

    def cached_get_binding():
        return system.call(agent.loid, "GetBinding", instance.loid, client=client)

    binding = benchmark(cached_get_binding)
    assert binding.loid == instance.loid

    assert_and_report(e2_agent_load.run(quick=True))
