"""E17 bench: the governor's observation path + the banded-health claims.

Times one governing ``poll()`` -- evidence snapshot (metrics sum, wire
stats, FaultLog scan, backlog walk), band-machine step, and idempotent
policy re-application -- against a warm governed system.  This is the
whole per-tick cost of running banded health: it executes once per
``tick`` simulated ms, entirely off the wire, so it must stay cheap
enough to be a rounding error next to real traffic.

The governor-disabled cost is separately pinned by the perf gate: the
only hot-path trace of repro.health is the one ``paused`` check on the
flow-only admission intake, covered by the ``system_call`` metric in
``check_regression`` (BENCH baselines pre-date the governor).
"""

import pytest
from conftest import assert_and_report

from repro.core.runtime import RetryPolicy
from repro.experiments import e17_governor
from repro.faults.log import FaultLog
from repro.flow.config import FlowConfig
from repro.health import Band, Governor, GovernorConfig
from repro.metrics.counters import ComponentKind
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import SerialServiceImpl


@pytest.fixture(scope="module")
def governed_system():
    """A warm governed system with live servers, a client, and a FaultLog."""
    system = LegionSystem.build(
        [SiteSpec("main", hosts=3)],
        seed=42,
        flow=FlowConfig(
            capacity=1,
            queue_limit=14,
            service_estimate=2.0,
            admit_kinds=frozenset({ComponentKind.APPLICATION}),
        ),
    )
    system.services.fault_log = FaultLog()
    cls = system.create_class(
        "BenchSerial", factory=lambda: SerialServiceImpl(service_time=2.0)
    )
    instances = [system.create_instance(cls.loid) for _ in range(4)]
    client = system.new_client("bench-gov")
    client.runtime.retry_policy = RetryPolicy(
        max_attempts=2, retry_tokens=60.0, retry_token_refill=0.5
    )
    governor = Governor(system, GovernorConfig())
    governor.track(client)
    return system, governor, instances


def test_governor_poll_cost(benchmark, governed_system):
    """One full observe/step/apply cycle on a warm system."""
    _system, governor, _instances = governed_system

    record = benchmark(governor.poll)
    assert record is None  # calm system: no transition to ledger
    assert governor.band is Band.STABLE
    assert governor.last_evidence is not None
    assert governor.last_evidence.consistent


def test_policy_apply_cost_at_worst_band(benchmark, governed_system):
    """Re-applying the Failed-band policy (the heaviest, with the pause
    sweep over every admitted server) stays idempotent and cheap."""
    _system, governor, _instances = governed_system
    policy = governor.config.policies[Band.FAILED]

    benchmark(governor._apply, policy)
    governor._apply(governor.config.policies[Band.STABLE])  # restore


def test_e17_claims_hold():
    assert_and_report(e17_governor.run(quick=True))
