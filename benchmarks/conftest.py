"""Shared fixtures for the benchmark suite.

Each ``bench_eN_*.py`` regenerates experiment N's claim table (printed
with ``-s``; always asserted to pass) and times that experiment's core
operation with pytest-benchmark.  Systems are built once per module --
the timed operations are repeatable against a live system.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import uniform_sites
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


@pytest.fixture(scope="module")
def small_system():
    """A 2-site, 4-host system with one Counter class and one instance."""
    system = LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=42)
    cls = system.create_class("BenchCounter", factory=CounterImpl)
    instance = system.create_instance(cls.loid, context_name="bench/counter")
    return system, cls, instance


def assert_and_report(result):
    """Print an experiment's table and fail the bench if a check failed."""
    print()
    print(result.render())
    failed = [c for c in result.checks if not c.passed]
    assert not failed, f"experiment {result.experiment} checks failed: {failed}"
