"""Kernel micro-benchmarks: the event-loop paths every experiment leans on.

Three synthetic workloads isolate the simulation kernel's hot paths from
the Legion layers above it:

* ``timeout_chain``  -- a self-rescheduling callback: pure heap push/pop
  throughput, no processes involved;
* ``spawn_wave``     -- process start/finish overhead (spawn, first step,
  StopIteration, future resolution);
* ``future_resume``  -- the path a warm ``invoke`` lives on: a process
  yields a :class:`SimFuture` that a later event resolves, over and over.
  This is the path the trampoline fast path targets.

Plus one end-to-end workload, ``warm_system_call``, which measures a fully
warm ``system.call`` (bare request/reply through the simulated network).

Runnable three ways:

* ``pytest benchmarks/bench_kernel.py`` -- pytest-benchmark timings;
* ``PYTHONPATH=src python benchmarks/bench_kernel.py`` -- a quick table;
* imported by ``benchmarks/snapshot.py`` for the recorded perf trajectory.
"""

from __future__ import annotations

import time

from repro.simkernel.futures import SimFuture
from repro.simkernel.kernel import SimKernel, Timeout

# ---------------------------------------------------------------- workloads


def timeout_chain(n: int = 20_000) -> int:
    """One callback rescheduling itself ``n`` times; returns events run."""
    kernel = SimKernel()
    remaining = n

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining:
            kernel.schedule(1.0, tick)

    kernel.schedule(1.0, tick)
    kernel.run()
    return kernel.events_executed


def spawn_wave(n: int = 5_000) -> int:
    """Spawn ``n`` one-timeout processes and drain; returns events run."""
    kernel = SimKernel()

    def proc():
        yield Timeout(1.0)

    for _ in range(n):
        kernel.spawn(proc())
    kernel.run()
    return kernel.events_executed


def future_resume(n: int = 10_000) -> int:
    """``n`` resolve→resume cycles through one process; returns events run.

    Each iteration yields a fresh future that a scheduled event resolves --
    exactly the shape of a request/reply round in the communication layer.
    """
    kernel = SimKernel()

    def consumer():
        for _ in range(n):
            fut = SimFuture()
            kernel.schedule(1.0, lambda f=fut: f.set_result(None))
            yield fut

    kernel.spawn(consumer())
    kernel.run()
    return kernel.events_executed


def build_warm_system():
    """A small Legion system with one instance, warmed for bare calls."""
    from repro.experiments.common import uniform_sites
    from repro.system.legion import LegionSystem
    from repro.workloads.apps import CounterImpl

    system = LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=42)
    cls = system.create_class("BenchCounter", factory=CounterImpl)
    instance = system.create_instance(cls.loid, context_name="bench/counter")
    system.call(instance.loid, "Ping")  # warm every cache on the path
    return system, instance.loid


def warm_system_call(system, loid, n: int = 1) -> None:
    """``n`` fully-warm Ping calls (each one request/reply round trip)."""
    for _ in range(n):
        system.call(loid, "Ping")


# ------------------------------------------------------------ pytest hooks


def test_timeout_chain(benchmark):
    events = benchmark(timeout_chain, 5_000)
    assert events >= 5_000


def test_spawn_wave(benchmark):
    events = benchmark(spawn_wave, 2_000)
    assert events >= 2_000


def test_future_resume(benchmark):
    events = benchmark(future_resume, 5_000)
    assert events >= 5_000


def test_warm_system_call(benchmark, small_system):
    system, _cls, instance = small_system
    system.call(instance.loid, "Ping")
    benchmark(warm_system_call, system, instance.loid, 1)


# ------------------------------------------------------------- standalone


def measure(fn, *args, repeat: int = 3):
    """Best-of-``repeat`` wall time and the workload's return value."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        started = time.perf_counter()
        value = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, value


def main() -> None:
    rows = []
    for name, fn, n in (
        ("timeout_chain", timeout_chain, 20_000),
        ("spawn_wave", spawn_wave, 5_000),
        ("future_resume", future_resume, 10_000),
    ):
        wall, events = measure(fn, n)
        rows.append((name, n, events, n / wall))
    system, loid = build_warm_system()
    wall, _ = measure(warm_system_call, system, loid, 200)
    rows.append(("warm_system_call", 200, "-", 200 / wall))

    print(f"{'workload':<18} {'iters':>8} {'events':>8} {'ops/sec':>12}")
    for name, n, events, rate in rows:
        print(f"{name:<18} {n:>8} {events!s:>8} {rate:>12.0f}")


if __name__ == "__main__":
    main()
