"""E12 bench: LOID machinery (3.2) + allocation/pack/verify microcost.

Regenerates the uniqueness-audit table and times the naming hot path:
allocate an instance LOID, pack it to the Fig. 12 wire form, unpack, and
verify its public key.
"""

from conftest import assert_and_report

from repro.experiments import e12_loids
from repro.naming.loid import LOID, LOIDAllocator


def test_e12_loid_claims_and_alloc_cost(benchmark):
    allocator = LOIDAllocator(class_id=99, secret=1234)

    def alloc_pack_verify():
        loid = allocator.next_instance()
        packed = loid.pack()
        back = LOID.unpack(packed)
        assert back == loid
        return back.verify_key(1234)

    ok = benchmark(alloc_pack_verify)
    assert ok

    assert_and_report(e12_loids.run(quick=True))
