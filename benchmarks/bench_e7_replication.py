"""E7 bench: replication semantics (4.3) + replicated-call cost.

Regenerates the failure-masking matrix and times a call on a 3-replica
FIRST-semantics object (the primary/backup pattern's happy path).
"""

from conftest import assert_and_report

from repro.experiments import e7_replication


def test_e7_replication_claims_and_replicated_call(benchmark, small_system):
    system, cls, _instance = small_system
    binding = system.call(cls.loid, "CreateReplicated", 3, "first", 1)
    system.call(binding.loid, "Ping")  # warm

    def replicated_call():
        return system.call(binding.loid, "Increment", 1)

    value = benchmark(replicated_call)
    assert value >= 1

    assert_and_report(e7_replication.run(quick=True))
