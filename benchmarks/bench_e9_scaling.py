"""E9 bench: the distributed systems principle (5.2).

The artifact here IS the sweep (mitigated vs strawman bottleneck growth),
so the benchmark times one locality-mixed steady-state invocation while
the claim table is produced by the full quick sweep.
"""

from conftest import assert_and_report

from repro.experiments import e9_scaling


def test_e9_scaling_claims_and_steady_state_call(benchmark, small_system):
    system, _cls, instance = small_system
    client = system.new_client("bench-e9")
    system.call(instance.loid, "Ping", client=client)  # warm

    def steady_state_call():
        return system.call(instance.loid, "Increment", 1, client=client)

    value = benchmark(steady_state_call)
    assert value >= 1

    assert_and_report(e9_scaling.run(quick=True))
