"""Per-feature ablation of the compiled invoke/dispatch call path.

The call-path compiler (``repro.core.callpath``) promises that a
*disabled* middleware stage costs zero instructions on the hot path:
the per-``(runtime | server, FlowConfig, tracer, policy)`` pipeline is
selected at configuration time, not guarded at call time.  This bench
prices that promise per feature: each row builds a fresh two-site
system with exactly one feature enabled, warms the call path, and
measures warm ``system.call`` round trips.

Rows (toggled independently, never stacked):

* ``plain``     -- the zero-middleware baseline every other row is
  priced against; this is the configuration the compiled fast path
  serves with a single flat generator frame.
* ``retry``     -- a deep retry budget (8 attempts, token bucket).
  Success-path cost should be ~zero: retry accounting is compiled out
  of the fast path and only engages on failure.
* ``tracing``   -- an active SpanRecorder (every invocation, dispatch,
  and resolution records spans).
* ``flow``      -- admission control only (bounded server intake).
* ``credits``   -- caller-side credit windows only.
* ``batching``  -- a batch window with the bench method opted in (each
  call rides the coalescing path, flushing by window).
* ``autoscale`` -- a CloneController sampling load on the bench class
  (watermarks set so the pool never actually scales).

Runnable two ways:

* ``PYTHONPATH=src python benchmarks/bench_invoke_path.py`` -- a table
  of calls/sec and overhead vs ``plain``;
* ``pytest benchmarks/bench_invoke_path.py`` -- smoke assertions that
  every configuration still completes calls correctly.
"""

from __future__ import annotations

import time

CALLS = 300


# ---------------------------------------------------------------- builders


def _base_system(flow=None):
    from repro.experiments.common import uniform_sites
    from repro.system.legion import LegionSystem
    from repro.workloads.apps import CounterImpl

    system = LegionSystem.build(
        uniform_sites(2, hosts_per_site=2), seed=42, flow=flow
    )
    cls = system.create_class("AblateCounter", factory=CounterImpl)
    instance = system.create_instance(cls.loid, context_name="bench/ablate")
    return system, cls, instance.loid


def build_plain():
    """All middleware off: the compiled fast path's home configuration."""
    system, _cls, loid = _base_system()
    return system, loid


def build_retry():
    """Deep retry budget; the success path should not notice."""
    from repro.core.runtime import RetryPolicy

    system, _cls, loid = _base_system()
    system.console.runtime.retry_policy = RetryPolicy(max_attempts=8)
    return system, loid


def build_tracing():
    """An active causal-trace recorder on every hop."""
    system, _cls, loid = _base_system()
    system.enable_tracing()
    return system, loid


def build_flow():
    """Admission control only (no credits, no batching)."""
    from repro.flow.config import FlowConfig

    system, _cls, loid = _base_system(flow=FlowConfig(capacity=64))
    return system, loid


def build_credits():
    """Caller-side credit windows only."""
    from repro.flow.config import FlowConfig

    system, _cls, loid = _base_system(flow=FlowConfig(credit_window=32))
    return system, loid


def build_batching():
    """Request batching with the bench method opted in."""
    from repro.flow.config import FlowConfig

    system, _cls, loid = _base_system(
        flow=FlowConfig(batch_window=0.5, batch_limit=16)
    )
    system.console.runtime.enable_batching("Ping")
    return system, loid


def build_autoscale():
    """A CloneController sampling the bench class (never scaling)."""
    from repro.autoscale.controller import AutoscaleConfig, CloneController

    system, cls, loid = _base_system()
    controller = CloneController(
        system,
        cls,
        AutoscaleConfig(high_water=1e9, low_water=1e-9, min_clones=0),
    )
    controller.start()
    return system, loid


CONFIGS = [
    ("plain", build_plain),
    ("retry", build_retry),
    ("tracing", build_tracing),
    ("flow", build_flow),
    ("credits", build_credits),
    ("batching", build_batching),
    ("autoscale", build_autoscale),
]


# ---------------------------------------------------------------- measuring


def warm_calls(system, loid, n: int) -> None:
    """``n`` fully-warm Ping round trips through the compiled path."""
    for _ in range(n):
        system.call(loid, "Ping")


def measure_config(build, n: int = CALLS, repeat: int = 3) -> float:
    """Best-of-``repeat`` calls/sec for one configuration."""
    system, loid = build()
    system.call(loid, "Ping")  # warm every cache on the path
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        warm_calls(system, loid, n)
        best = min(best, time.perf_counter() - started)
    return n / best


def run_ablation(n: int = CALLS, repeat: int = 3) -> dict:
    """calls/sec per configuration, keyed by row name."""
    return {
        name: measure_config(build, n=n, repeat=repeat)
        for name, build in CONFIGS
    }


# ------------------------------------------------------------ pytest hooks


def test_every_config_completes_calls():
    """Smoke: each ablation row actually performs correct warm calls."""
    for name, build in CONFIGS:
        system, loid = build()
        assert system.call(loid, "Ping") == "pong", name
        assert system.call(loid, "Ping") == "pong", name


def test_plain_config_compiles_fast_path():
    """The baseline row really is the compiled zero-middleware pipeline."""
    build = dict(CONFIGS)["plain"]
    system, _loid = build()
    runtime = system.console.runtime
    assert runtime._plain_path
    assert runtime._invoke_key.stages() == ()


# ------------------------------------------------------------- standalone


def main() -> None:
    rates = run_ablation()
    plain = rates["plain"]
    print(f"{'config':<12} {'calls/sec':>12} {'vs plain':>10}")
    for name, _build in CONFIGS:
        rate = rates[name]
        print(f"{name:<12} {rate:>12.0f} {plain / rate:>9.2f}x")


if __name__ == "__main__":
    main()
