"""E6 bench: stale-binding repair (4.1.4) + the cost of one repair.

Regenerates the churn table and times the full detect→refresh→retry
sequence: each round deactivates the object behind the caller's back, so
the measured call *always* hits a stale binding.
"""

from conftest import assert_and_report

from repro.experiments import e6_stale_bindings


def test_e6_stale_claims_and_repair_cost(benchmark, small_system):
    system, cls, instance = small_system
    loid = instance.loid
    client = system.new_client("bench-e6")
    system.call(loid, "Ping", client=client)  # client now holds a binding

    def stale_then_repair():
        row = system.call(cls.loid, "GetRow", loid)
        magistrate = row.current_magistrates[0]
        # Invalidate the world behind the client's cached binding.
        system.call(magistrate, "Deactivate", loid)
        return system.call(loid, "Ping", client=client)

    value = benchmark(stale_then_repair)
    assert value == "pong"
    assert client.runtime.stats.stale_detected > 0

    assert_and_report(e6_stale_bindings.run(quick=True))
