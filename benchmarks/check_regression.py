"""Gate: a fresh perf snapshot must not regress past a committed baseline.

Compares every shared throughput metric (kernel micro-benchmarks +
warm system-call rate) of two ``BENCH_*.json`` snapshots and exits
non-zero if any ratio falls below ``1 - tolerance``.  CI runs this with
tracing *disabled* against the committed baseline, enforcing the
zero-overhead contract of the causal-tracing subsystem.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        BENCH_pr1.json BENCH_ci.json --tolerance 0.05

``--max-regress 5`` is the percentage spelling of the same knob (fail on
any >5% drop); the two are mutually exclusive.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterator, Tuple


def throughputs(snapshot: dict) -> Iterator[Tuple[str, float]]:
    """Every (metric name, ops/sec) pair a snapshot carries."""
    metrics = snapshot["metrics"]
    for name, payload in metrics.get("kernel", {}).items():
        yield f"kernel.{name}", float(payload["ops_per_sec"])
    if "system_call" in metrics:
        yield "system_call", float(metrics["system_call"]["calls_per_sec"])
    if "e15_goodput" in metrics:
        # Not ops/sec but same polarity (higher is better): the flow arm's
        # delivered goodput as a fraction of capacity under 4x overload.
        yield "e15_goodput", float(metrics["e15_goodput"]["goodput_x_capacity"])
    if "e16_local_read" in metrics:
        # Reciprocal simulated latency of same-jurisdiction reads with one
        # replica per jurisdiction (higher is better): collapses ~800x if
        # locality-aware replica selection stops keeping local reads local.
        yield (
            "e16_local_read_latency",
            float(metrics["e16_local_read"]["reads_per_sim_ms"]),
        )
    if "e17_governed_goodput" in metrics:
        # Same polarity (higher is better): the governed arm's delivered
        # goodput as a fraction of capacity during the E17 storm phase.
        # Simulated-time and deterministic -- it collapses ~3x to the
        # baseline's level if band→policy coupling stops working.
        yield (
            "e17_governed_goodput",
            float(
                metrics["e17_governed_goodput"]["storm_goodput_x_capacity"]
            ),
        )
    if "e18_scenario_matrix" in metrics:
        # The scenario-language claim (higher is better): mean peak-phase
        # goodput of the catalog's plain rich-object replays, as a
        # fraction of deployment capacity.  Deterministic simulated-time;
        # it collapses if scenario compilation, arrival pacing, or the
        # session drivers stop delivering the compiled workload.
        yield (
            "e18_scenario_matrix",
            float(
                metrics["e18_scenario_matrix"]["mean_plain_goodput_x"]
            ),
        )
    if "e9_mega" in metrics:
        # The columnar mega-scale claim (higher is better): flatness of
        # the E9 mega ladder's max per-class load, 1 / (1 + max(0, slope)).
        # 1.0 = flat at 10^6 objects; 0.5 = load growing linearly with
        # the population, i.e. the backend stopped scaling.
        yield "e9_mega_slope", float(metrics["e9_mega"]["flatness"])
    if "sweep_multicore" in metrics:
        # Same polarity again: the sharded runner's serial/parallel wall
        # ratio on the E15 full sweep (see bench_shards).
        yield "sweep_multicore", float(metrics["sweep_multicore"]["speedup_x"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json to hold the line at")
    parser.add_argument("candidate", help="freshly measured BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional slowdown per metric (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=None,
        metavar="PCT",
        help="allowed percentage slowdown per metric (--max-regress 5 == "
        "--tolerance 0.05)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="METRIC",
        help="fail unless METRIC is present in both snapshots (repeatable); "
        "guards against a gate that silently passes because a snapshot "
        "stopped carrying the metric it exists to protect",
    )
    parser.add_argument(
        "--min",
        action="append",
        default=[],
        metavar="METRIC=VALUE",
        dest="floors",
        help="absolute floor on a candidate metric (repeatable); useful for "
        "metrics like sweep_multicore whose baseline value is not "
        "comparable across machines or CPU counts",
    )
    args = parser.parse_args(argv)
    if args.tolerance is not None and args.max_regress is not None:
        parser.error("--tolerance and --max-regress are mutually exclusive")
    if args.max_regress is not None:
        args.tolerance = args.max_regress / 100.0
    elif args.tolerance is None:
        args.tolerance = 0.05

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)

    base = dict(throughputs(baseline))
    cand = dict(throughputs(candidate))
    for name in args.require:
        missing = [
            label
            for label, snap in (("baseline", base), ("candidate", cand))
            if name not in snap
        ]
        if missing:
            print(f"FAIL: required metric {name!r} missing from {', '.join(missing)}")
            return 1
    for spec in args.floors:
        name, _, value = spec.partition("=")
        if name not in cand:
            print(f"FAIL: --min metric {name!r} missing from candidate")
            return 1
        if cand[name] < float(value):
            print(f"FAIL: {name} = {cand[name]:g} below floor {float(value):g}")
            return 1
    floor = 1.0 - args.tolerance
    failures = []
    print(f"{'metric':<28} {'baseline':>14} {'candidate':>14} {'ratio':>8}")
    for name in base:
        if name not in cand:
            continue
        ratio = cand[name] / base[name] if base[name] else float("inf")
        flag = "" if ratio >= floor else "  << REGRESSION"
        print(f"{name:<28} {base[name]:>14.0f} {cand[name]:>14.0f} {ratio:>7.2f}x{flag}")
        if ratio < floor:
            failures.append((name, ratio))

    if failures:
        worst = min(failures, key=lambda kv: kv[1])
        print(
            f"\nFAIL: {len(failures)} metric(s) below {floor:.2f}x of "
            f"{baseline['label']!r} (worst: {worst[0]} at {worst[1]:.2f}x)"
        )
        return 1
    print(f"\nOK: all metrics within {args.tolerance:.0%} of {baseline['label']!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
