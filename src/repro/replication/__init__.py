"""System-level object replication (paper section 4.3, Fig. 1).

"An LOID names Legion Object A1, which is implemented as a replicated
object consisting of four processes ... residing at four different
physical addresses.  The Object Address for A1 includes each of the
address elements."  The address *semantic* (ALL / one-at-random / k-of-N,
section 3.4) governs how callers use the list, "without changing the
application-level semantics for communicating with the object".

The creation side lives on class objects
(:meth:`~repro.core.legion_class.ClassObjectImpl.create_replicated`); this
package adds the group-maintenance helpers:

* :func:`probe_replicas` -- which elements of a replica group answer;
* :func:`repair_replica_group` -- probe, report dead members to the class
  (shrinking the group), and return the repaired binding;
* :class:`ReplicaGroupStatus` -- the probe report.

The paper also notes application-level replication (multiple LOIDs acting
as one logical service, managed by the application) remains possible;
``examples/replication_fault_tolerance.py`` demonstrates both styles.
"""

from repro.replication.manager import (
    ReplicaGroupStatus,
    probe_replicas,
    repair_replica_group,
)

__all__ = ["ReplicaGroupStatus", "probe_replicas", "repair_replica_group"]
