"""Geo-replication data plane (section 4.3 + the section-5 locality story).

"An LOID names Legion Object A1, which is implemented as a replicated
object consisting of four processes ... residing at four different
physical addresses."  The creation side lives on class objects
(:meth:`~repro.core.legion_class.ClassObjectImpl.create_replicated` /
``AddReplica``); this package is everything around it::

    enable_replication(system)          # catalogs + index + directory
      ├─ ReplicaCatalog (per site)      # LOID -> local replica set
      ├─ GlobalReplicaIndex (one)       # LOID -> {site: count}
      └─ services.replication           # ReplicaDirectory (epoch bump)
    class Derive(..., consistency=...)  # per-class policy choice
    cls.CreateReplicated(n, ...)        # places replicas, gossips news
    runtime.invoke(loid, "Get", ...)    # locality-ordered FIRST reads
    ReplicaSession(runtime, binding, policy)   # quorum / primary-copy
    ReplicaRepairService(system)        # background regrow, yields to load

Modules: :mod:`selection` (config + locality ordering), :mod:`catalog`
(the two-tier replica-location fabric), :mod:`policy` (consistency
sessions), :mod:`store` (the versioned KV workload), :mod:`repair`
(probes, one-shot repair, background service), :mod:`directory` (the
ambient handle + ``enable_replication``).  The legacy ``manager`` module
survives as a compatibility shim over :mod:`repair`.
"""

from repro.replication.catalog import GlobalReplicaIndexImpl, ReplicaCatalogImpl
from repro.replication.directory import ReplicaDirectory, enable_replication
from repro.replication.policy import (
    ConsistencyPolicy,
    ReplicaSession,
    default_quorums,
)
from repro.replication.repair import (
    REPAIR_RETRY_POLICY,
    ReplicaGroupStatus,
    ReplicaRepairService,
    probe_replicas,
    repair_replica_group,
)
from repro.replication.selection import LocalitySelector, ReplicationConfig
from repro.replication.store import ReplicatedStoreImpl

__all__ = [
    "REPAIR_RETRY_POLICY",
    "ConsistencyPolicy",
    "GlobalReplicaIndexImpl",
    "LocalitySelector",
    "ReplicaCatalogImpl",
    "ReplicaDirectory",
    "ReplicaGroupStatus",
    "ReplicaRepairService",
    "ReplicaSession",
    "ReplicatedStoreImpl",
    "ReplicationConfig",
    "default_quorums",
    "enable_replication",
    "probe_replicas",
    "repair_replica_group",
]
