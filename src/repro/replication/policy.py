"""Per-class consistency policies over replica groups.

The Multicomputer Object Store observation (PAPERS.md): no single
coherence mechanism suits every object, so the *class* picks one to
match its instances' access pattern.  Classes carry the choice as a
string (``consistency=...`` at Derive time, read back with
``GetConsistencyPolicy``); a :class:`ReplicaSession` turns the choice
into wire protocol against a replica group:

* ``READ_ANY`` -- immutable objects (frozen OPRs).  Reads are plain
  ``invoke``: the locality-ordered FIRST path picks the nearest live
  replica and falls across partitions element-by-element, so a read
  *never blocks* on an unreachable copy.  Writes happen only at seed
  time (write-all, then Freeze).
* ``PRIMARY_COPY`` -- writes go to the group's first element (the
  primary), which assigns the version; the session then pushes *acked*
  ``Invalidate`` markers to every secondary in group order before the
  write returns.  Reads try the nearest copy and fall back to the
  primary whenever the copy admits staleness -- so a completed write is
  never overwritten by an old value served as fresh.
* ``QUORUM`` -- explicit-version read/write quorums with R + W > N:
  a write reads R versions, picks max+1, and lands on W replicas; a
  read merges R copies by max version.  Read-your-writes holds because
  any read quorum intersects the last write quorum.

Sessions are client-side coordinator generators: they run inside any
simulation process and speak to specific elements via
``runtime.call_element`` (bypassing group semantics on purpose -- the
*session* is the semantic here).
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, Tuple

from repro.errors import DeliveryFailure, ReplicationError
from repro.security.environment import CallEnvironment


class ConsistencyPolicy(enum.Enum):
    """The per-class consistency choices (string keys on class objects)."""

    PRIMARY_COPY = "primary-copy"
    QUORUM = "quorum"
    READ_ANY = "read-any"


def default_quorums(n: int) -> Tuple[int, int]:
    """Majority read and write quorums for an ``n``-replica group."""
    majority = n // 2 + 1
    return majority, majority


class ReplicaSession:
    """A client-side coordinator bound to one replica group.

    Parameters
    ----------
    runtime:
        The calling object's :class:`~repro.core.runtime.LegionRuntime`.
    binding:
        The replica group's Binding (a multi-element FIRST address).
    policy:
        A :class:`ConsistencyPolicy` or its string value (a class's
        ``GetConsistencyPolicy()`` result plugs in directly).
    read_quorum / write_quorum:
        Override the majority defaults (QUORUM only).  The session
        refuses configurations with R + W <= N: they cannot give
        read-your-writes and would silently serve stale data.
    """

    def __init__(
        self,
        runtime,
        binding,
        policy,
        read_quorum: Optional[int] = None,
        write_quorum: Optional[int] = None,
        timeout: Optional[float] = None,
        priority: int = 0,
    ) -> None:
        self.runtime = runtime
        self.binding = binding
        self.policy = ConsistencyPolicy(policy)
        n = len(binding.address.elements)
        default_r, default_w = default_quorums(n)
        self.read_quorum = read_quorum if read_quorum is not None else default_r
        self.write_quorum = write_quorum if write_quorum is not None else default_w
        if self.policy is ConsistencyPolicy.QUORUM and (
            self.read_quorum + self.write_quorum <= n
        ):
            raise ReplicationError(
                f"quorums R={self.read_quorum} W={self.write_quorum} do not "
                f"overlap over {n} replicas (need R + W > N)"
            )
        self.timeout = timeout
        self.priority = priority

    # ------------------------------------------------------------- plumbing

    @property
    def elements(self) -> tuple:
        return self.binding.address.elements

    @property
    def primary(self):
        return self.binding.address.elements[0]

    def _env(self) -> CallEnvironment:
        return CallEnvironment.originating(self.runtime.loid)

    def _call(self, element, method: str, *args: Any):
        value = yield from self.runtime.call_element(
            element,
            self.binding.loid,
            method,
            args,
            self._env(),
            self.timeout,
            self.priority,
        )
        return value

    def _collect(self, method: str, args: tuple, need: int):
        """Call ``need`` replicas in group order, skipping unreachable ones.

        Returns (values, elements_answering).  Raises the last transport
        error when fewer than ``need`` replicas answered.
        """
        values: List[Any] = []
        answered: List[Any] = []
        last: Optional[BaseException] = None
        for element in self.elements:
            if len(values) >= need:
                break
            try:
                value = yield from self._call(element, method, *args)
            except DeliveryFailure as exc:
                last = exc
                continue
            values.append(value)
            answered.append(element)
        if len(values) < need:
            raise ReplicationError(
                f"quorum not met: {len(values)}/{need} replicas of "
                f"{self.binding.loid} answered {method}"
            ) from last
        return values, answered

    # ------------------------------------------------------------------ API

    def read(self, key: str):
        """Policy-appropriate read of ``key``; returns the value."""
        if self.policy is ConsistencyPolicy.READ_ANY:
            # The group address IS the protocol: locality-ordered FIRST
            # picks the nearest live copy and never waits on a partition
            # longer than one bounced hop per unreachable element.
            value = yield from self.runtime.invoke(
                self.binding.loid,
                "Get",
                key,
                timeout=self.timeout,
                priority=self.priority,
            )
            return value
        if self.policy is ConsistencyPolicy.QUORUM:
            replies, _who = yield from self._collect(
                "GetVersioned", (key,), self.read_quorum
            )
            version, value, _fresh = max(replies, key=lambda r: r[0])
            return value
        # PRIMARY_COPY: nearest copy first, primary on staleness.
        selector = getattr(self.runtime, "_replica_selector", None)
        ordered = (
            selector.order(self.runtime.element.host, self.elements)
            if selector is not None
            else self.elements
        )
        for element in ordered:
            if element == self.primary:
                break  # no point asking a copy ranked behind the source
            try:
                version, value, fresh = yield from self._call(
                    element, "GetVersioned", key
                )
            except DeliveryFailure:
                continue
            if fresh and version > 0:
                return value
            break  # stale copy: go straight to the primary
        version, value, _fresh = yield from self._call(
            self.primary, "GetVersioned", key
        )
        return value

    def write(self, key: str, value: Any):
        """Policy-appropriate write; returns the version written."""
        if self.policy is ConsistencyPolicy.READ_ANY:
            raise ReplicationError(
                "read-any groups are immutable after seeding; use seed()"
            )
        if self.policy is ConsistencyPolicy.QUORUM:
            replies, _who = yield from self._collect(
                "GetVersioned", (key,), self.read_quorum
            )
            version = max(r[0] for r in replies) + 1
            _acks, _who = yield from self._collect(
                "PutVersioned", (key, version, value), self.write_quorum
            )
            return version
        # PRIMARY_COPY: the primary assigns the version; acked
        # invalidations reach every secondary before the write returns,
        # in group order -- the ordering the property tests pin.
        version = yield from self._call(self.primary, "WritePrimary", key, value)
        for element in self.elements[1:]:
            yield from self._call(element, "Invalidate", key, version)
        return version

    def seed(self, items):
        """Write-all + Freeze: build an immutable read-any group.

        ``items`` is an iterable of (key, value).  Every element receives
        every pair (version 1) and is then frozen.
        """
        pairs = list(items)
        for element in self.elements:
            for key, value in pairs:
                yield from self._call(element, "PutVersioned", key, 1, value)
            yield from self._call(element, "Freeze")
