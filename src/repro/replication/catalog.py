"""Replica catalogs: site-local placement maps plus a global index.

The shape is the EU DataGrid replica-location service (PAPERS.md): each
jurisdiction runs a **ReplicaCatalog** mapping LOID -> the replica
elements *at this site*, and a single lightweight **GlobalReplicaIndex**
answers the cross-jurisdiction question "which sites hold replicas of
this LOID, and how many?".  Catalogs are authoritative for their site
only; the index holds counts, never addresses, so it stays small and its
loss costs a rebuild, not data.

Both are ordinary application-level Legion objects.  They learn about
placement through one-way EVENT messages -- class objects gossip
``replica-news`` on CreateReplicated / AddReplica / ReportDeadReplica,
catalogs forward ``site-holds`` digests to the index -- so keeping the
map current costs no round trips on any foreground path.  Queries
(lookup, under-replication scans for the repair service) are normal
method invocations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.object_base import LegionObjectImpl, legion_method
from repro.naming.loid import LOID


class ReplicaCatalogImpl(LegionObjectImpl):
    """One jurisdiction's LOID -> local-replica-set map."""

    def __init__(self, site: str = "") -> None:
        self.site = site
        #: loid identity -> entry dict:
        #:   loid        the LOID itself,
        #:   class_loid  the managing class object,
        #:   want        the group's global replication target,
        #:   elements    replica address elements at *this* site.
        self.entries: Dict[int, Dict[str, Any]] = {}
        #: Address element of the GlobalReplicaIndex (set via SetIndex).
        self.index_element: Any = None
        self.news_seen = 0

    def persistent_attributes(self) -> List[str]:
        return ["site", "entries", "index_element", "news_seen"]

    # ------------------------------------------------------------- queries

    @legion_method("SetIndex(element)")
    def set_index(self, element: Any) -> None:
        """Point this catalog at the global index."""
        self.index_element = element

    @legion_method("list LookupReplicas(LOID)")
    def lookup_replicas(self, loid: LOID) -> List[Any]:
        """The replica elements of ``loid`` held at this site, sorted."""
        entry = self.entries.get(loid.identity)
        if entry is None:
            return []
        return sorted(entry["elements"])

    @legion_method("int ReplicaCount(LOID)")
    def replica_count(self, loid: LOID) -> int:
        """How many replicas of ``loid`` this site holds."""
        entry = self.entries.get(loid.identity)
        return 0 if entry is None else len(entry["elements"])

    @legion_method("list Tracked()")
    def tracked(self) -> List[Tuple[LOID, int, LOID]]:
        """Every group this site participates in: (loid, want, class).

        Sorted by LOID identity so repair sweeps are deterministic.
        """
        return [
            (entry["loid"], entry["want"], entry["class_loid"])
            for _identity, entry in sorted(self.entries.items())
        ]

    @legion_method("int Size()")
    def size(self) -> int:
        """Number of tracked replica groups."""
        return len(self.entries)

    # ---------------------------------------------------------- event plane

    def handle_event(self, payload: Any, source: Any) -> None:
        """Placement news from class objects (one-way, no round trips)."""
        if not (isinstance(payload, tuple) and payload and payload[0] == "replica-news"):
            return
        _tag, kind, loid, elements, want, class_loid = payload
        self.news_seen += 1
        entry = self.entries.get(loid.identity)
        if entry is None:
            entry = {
                "loid": loid,
                "class_loid": class_loid,
                "want": 0,
                "elements": set(),
            }
            self.entries[loid.identity] = entry
        if class_loid is not None:
            entry["class_loid"] = class_loid
        if want:
            entry["want"] = max(entry["want"], int(want))
        local: Set[Any] = entry["elements"]
        if kind in ("add", "group"):
            local.update(elements)
        elif kind == "remove":
            local.difference_update(elements)
        self._forward_to_index(entry)

    def _forward_to_index(self, entry: Dict[str, Any]) -> None:
        """Digest this entry to the global index (site, count, want)."""
        runtime = getattr(self, "runtime", None)
        if self.index_element is None or runtime is None:
            return
        runtime.send_event(
            self.index_element,
            (
                "site-holds",
                self.site,
                entry["loid"],
                len(entry["elements"]),
                entry["want"],
                entry["class_loid"],
            ),
        )


class GlobalReplicaIndexImpl(LegionObjectImpl):
    """Cross-jurisdiction lookup: LOID -> {site: replica count}."""

    def __init__(self) -> None:
        #: loid identity -> {site: count} (zero-count sites are dropped).
        self.holdings: Dict[int, Dict[str, int]] = {}
        #: loid identity -> (loid, want, class_loid) bookkeeping.
        self.groups: Dict[int, Tuple[LOID, int, Optional[LOID]]] = {}
        self.digests_seen = 0

    def persistent_attributes(self) -> List[str]:
        return ["holdings", "groups", "digests_seen"]

    @legion_method("list SitesOf(LOID)")
    def sites_of(self, loid: LOID) -> List[Tuple[str, int]]:
        """Which sites hold replicas of ``loid``: sorted (site, count)."""
        return sorted(self.holdings.get(loid.identity, {}).items())

    @legion_method("int TotalReplicas(LOID)")
    def total_replicas(self, loid: LOID) -> int:
        """Global replica count of ``loid`` across all sites."""
        return sum(self.holdings.get(loid.identity, {}).values())

    @legion_method("list UnderReplicated()")
    def under_replicated(self) -> List[Tuple[LOID, int, int, Optional[LOID]]]:
        """Groups below target: sorted (loid, have, want, class_loid)."""
        out = []
        for identity, (loid, want, class_loid) in sorted(self.groups.items()):
            have = sum(self.holdings.get(identity, {}).values())
            if want and have < want:
                out.append((loid, have, want, class_loid))
        return out

    @legion_method("int IndexSize()")
    def index_size(self) -> int:
        """Number of indexed replica groups."""
        return len(self.groups)

    def handle_event(self, payload: Any, source: Any) -> None:
        """Site digests from the per-jurisdiction catalogs."""
        if not (isinstance(payload, tuple) and payload and payload[0] == "site-holds"):
            return
        _tag, site, loid, count, want, class_loid = payload
        self.digests_seen += 1
        holdings = self.holdings.setdefault(loid.identity, {})
        if count:
            holdings[site] = int(count)
        else:
            holdings.pop(site, None)
        old = self.groups.get(loid.identity)
        old_want = old[1] if old is not None else 0
        self.groups[loid.identity] = (
            loid,
            max(old_want, int(want)),
            class_loid if class_loid is not None else (old[2] if old else None),
        )
