"""Locality-aware replica selection for replicated Object Addresses.

The paper's scalability argument (section 5.2) assumes "most accesses
will be local"; the data plane makes that true for *replicated* objects
by trying a FIRST group's elements nearest-first.  Nearness is the
``repro/net`` link class of (caller host, replica host): same-host
before same-site before wide-area.  The sort is stable, so replicas at
equal distance keep their group order and every run stays deterministic.

``ReplicationConfig`` is the one knob bundle for the whole subsystem:
selection (``locality``), the repair service's cadence and priority, and
the catalog placement policy all read from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.net.latency import LatencyModel, LinkClass

#: Preference order of link classes: lower rank is tried first.
LINK_RANK: Dict[LinkClass, int] = {
    LinkClass.SAME_HOST: 0,
    LinkClass.SAME_SITE: 1,
    LinkClass.WIDE_AREA: 2,
}


@dataclass(frozen=True)
class ReplicationConfig:
    """Tunables of the geo-replication data plane.

    Parameters
    ----------
    locality:
        Compile locality-aware selection into runtime call paths (FIRST
        groups tried nearest-first).  Off leaves the historical group
        order untouched.
    repair_interval:
        Simulated ms between repair sweeps of one site's catalog.
    repair_stagger:
        Per-site start offset so sweeps do not run in lockstep.
    repair_priority:
        Flow-control priority stamped on every repair call.  Negative,
        so under overload admission control sheds/evicts repair traffic
        before any foreground request (PR 5 semantics: higher wins).
    repair_pacing:
        Simulated ms the repair loop idles between replica groups, so a
        long catalog never monopolises a sweep tick.
    repair_timeout:
        Per-attempt timeout for repair probes and copy calls.
    """

    locality: bool = True
    repair_interval: float = 150.0
    repair_stagger: float = 11.0
    repair_priority: int = -1
    repair_pacing: float = 5.0
    repair_timeout: float = 250.0


class LocalitySelector:
    """Orders a replica group nearest-first from a given source host.

    One instance is compiled into each runtime's call path
    (:func:`repro.core.callpath.compile_invoke_path`); ``order`` is a
    pure function of its arguments, so sharing is safe.  A tiny
    per-(src, group) memo keeps the warm path at one dict hit -- group
    tuples are immutable and hosts never change sites mid-run.
    """

    __slots__ = ("latency", "_memo")

    def __init__(self, latency: LatencyModel) -> None:
        self.latency = latency
        self._memo: Dict[Tuple[int, tuple], tuple] = {}

    def order(self, src_host: int, elements: tuple) -> tuple:
        """``elements`` stably sorted by link rank from ``src_host``."""
        key = (src_host, elements)
        ordered = self._memo.get(key)
        if ordered is None:
            classify = self.latency.classify
            ordered = tuple(
                sorted(
                    elements,
                    key=lambda e: LINK_RANK[classify(src_host, e.host)],
                )
            )
            self._memo[key] = ordered
        return ordered
