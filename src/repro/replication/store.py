"""ReplicatedStoreImpl: the versioned KV workload behind the policies.

One implementation serves all three consistency policies
(:mod:`repro.replication.policy`):

* **read-any** -- immutable after ``Freeze()``; ``Get`` is a plain read
  any replica can answer, so the locality-ordered FIRST call path *is*
  the read path;
* **primary-copy** -- ``WritePrimary`` assigns the next version at the
  group's primary; sessions then push acked ``Invalidate`` markers to
  the secondaries, whose ``GetVersioned`` flags the copy stale until a
  newer value lands;
* **quorum** -- ``PutVersioned``/``GetVersioned`` carry explicit
  versions; last-writer-wins per key, read quorums take the max.

``service_time`` (optional) makes ``Get`` a strictly serial FIFO server
exactly like :class:`repro.workloads.apps.SerialServiceImpl`, so
overload experiments can saturate a replica deterministically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.object_base import LegionObjectImpl, legion_method
from repro.errors import RequestRefused
from repro.simkernel.kernel import Timeout


class ReplicatedStoreImpl(LegionObjectImpl):
    """A versioned key-value replica.  See module docstring."""

    def __init__(self, service_time: float = 0.0) -> None:
        #: key -> (version, value); version 0 means "never written".
        self.data: Dict[str, Tuple[int, Any]] = {}
        #: key -> lowest version this copy may still serve as fresh.
        #: A copy whose stored version is below the marker is *stale*:
        #: it answers GetVersioned with fresh=False until a write at or
        #: above the marker lands.
        self.invalid_at: Dict[str, int] = {}
        self.frozen = False
        #: Simulated ms of exclusive service per Get (0 = instantaneous).
        self.service_time = float(service_time)
        self.busy_until = 0.0
        self.reads_served = 0

    def persistent_attributes(self) -> List[str]:
        return [
            "data",
            "invalid_at",
            "frozen",
            "service_time",
            "busy_until",
            "reads_served",
        ]

    def _refuse_if_frozen(self) -> None:
        if self.frozen:
            raise RequestRefused("store is frozen (immutable OPR)")

    # -------------------------------------------------------------- writes

    @legion_method("int WritePrimary(string, value)")
    def write_primary(self, key: str, value: Any) -> int:
        """Primary-copy write: assign the next version here; returns it."""
        self._refuse_if_frozen()
        version = self.data.get(key, (0, None))[0] + 1
        self.data[key] = (version, value)
        if self.invalid_at.get(key, 0) <= version:
            self.invalid_at.pop(key, None)
        return version

    @legion_method("int PutVersioned(string, int, value)")
    def put_versioned(self, key: str, version: int, value: Any) -> int:
        """Quorum/repair write at an explicit version (last writer wins).

        Applies only when ``version`` is newer than the stored copy;
        returns the version now stored either way.
        """
        self._refuse_if_frozen()
        current = self.data.get(key, (0, None))[0]
        if version > current:
            self.data[key] = (int(version), value)
            current = int(version)
            if self.invalid_at.get(key, 0) <= current:
                self.invalid_at.pop(key, None)
        return current

    @legion_method("Invalidate(string, int)")
    def invalidate(self, key: str, version: int) -> None:
        """Primary-copy invalidation: mark copies below ``version`` stale."""
        if self.data.get(key, (0, None))[0] >= version:
            return  # already caught up; nothing to invalidate
        self.invalid_at[key] = max(self.invalid_at.get(key, 0), int(version))

    @legion_method("Freeze()")
    def freeze(self) -> None:
        """Make this copy immutable (the read-any regime)."""
        self.frozen = True

    # --------------------------------------------------------------- reads

    @legion_method("value Get(string)")
    def get(self, key: str):
        """Plain read (read-any path); KeyError crosses as InvocationFailed.

        Pays one FIFO service slot when ``service_time`` is set, so a
        replica has a hard capacity of ``1/service_time`` reads per ms.
        """
        if self.service_time > 0.0:
            now = self.services.kernel.now
            start = self.busy_until if self.busy_until > now else now
            self.busy_until = start + self.service_time
            yield Timeout(self.busy_until - now)
        self.reads_served += 1
        return self.data[key][1]

    @legion_method("tuple GetVersioned(string)")
    def get_versioned(self, key: str) -> Tuple[int, Any, bool]:
        """Policy-aware read: (version, value, fresh).

        ``fresh`` is False when an Invalidate marker outruns the stored
        copy -- primary-copy sessions then fall back to the primary.
        Missing keys read as (0, None, True): "never written" is a
        consistent answer, not an error, for quorum merges.
        """
        version, value = self.data.get(key, (0, None))
        fresh = self.invalid_at.get(key, 0) <= version
        return (version, value, fresh)

    @legion_method("int Size()")
    def size(self) -> int:
        """Number of stored keys."""
        return len(self.data)

    @legion_method("list Keys()")
    def keys(self) -> List[str]:
        """All keys, sorted."""
        return sorted(self.data)

    @legion_method("int ReadsServed()")
    def reads_served_count(self) -> int:
        """How many Get() reads this copy has answered."""
        return self.reads_served
