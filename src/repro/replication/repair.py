"""Replica-group maintenance: probes, one-shot repair, background service.

The one-shot helpers (:func:`probe_replicas`,
:func:`repair_replica_group`) are the original section-4.3 maintenance
generators, relocated here from the legacy ``replication/manager.py``
(which remains as a compatibility shim).  They use only public Legion
member functions -- Ping on the replicas, ReportDeadReplica on the class
-- so they model what a monitoring object built *on* Legion would do.

:class:`ReplicaRepairService` is the background half: one sweep loop per
jurisdiction (mirroring :class:`repro.faults.recovery.RecoverySweeper`,
which accepts it as a companion) that walks the site's ReplicaCatalog,
probes each tracked group, shrinks dead members out, and *regrows*
under-replicated groups via the class's AddReplica, hinted at the
magistrate of a jurisdiction that lost coverage.  State transfer is the
class's job: AddReplica seeds the new member (object-mandatory
SaveState/RestoreState) before publishing it in the group address.
Every repair call is stamped with a negative flow-control priority and
paced between groups, so under overload admission control sheds repair
traffic before any foreground request: repair yields, foreground wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import (
    BindingNotFound,
    DeliveryFailure,
    LegionError,
    ProcessKilled,
)
from repro.core.method import MethodInvocation
from repro.core.runtime import LegionRuntime, RetryPolicy
from repro.naming.binding import Binding
from repro.naming.loid import LOID
from repro.net.address import ObjectAddressElement
from repro.replication.selection import ReplicationConfig
from repro.security.environment import CallEnvironment
from repro.simkernel.futures import SimFuture
from repro.simkernel.kernel import Timeout

#: The patient policy repair clients run: wide backoff, honors the
#: Overloaded retry_after pushback (repair re-offers only when the
#: server said it has room), rides out partitions and in-flight
#: recovery.  Jitter stays 0 so repair schedules are deterministic.
REPAIR_RETRY_POLICY = RetryPolicy(
    max_attempts=10,
    base_backoff=20.0,
    backoff_factor=2.0,
    max_backoff=400.0,
    budget=20_000.0,
    retry_partitions=True,
    retry_resolution_failures=True,
)


@dataclass
class ReplicaGroupStatus:
    """The result of probing every element of a replica group."""

    loid: LOID
    alive: List[ObjectAddressElement] = field(default_factory=list)
    dead: List[ObjectAddressElement] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Group size at probe time."""
        return len(self.alive) + len(self.dead)

    @property
    def availability(self) -> float:
        """Fraction of replicas answering (1.0 for a healthy group)."""
        return len(self.alive) / self.total if self.total else 0.0


def probe_replicas(
    runtime: LegionRuntime,
    binding: Binding,
    env: Optional[CallEnvironment] = None,
    timeout: Optional[float] = None,
):
    """Ping every element of ``binding``'s address; classify alive/dead.

    Probes are issued concurrently (one request per element) and awaited
    individually, so one dead replica does not slow the others' answers.
    """
    if env is None:
        env = CallEnvironment.originating(runtime.loid)
    futures: List[Tuple[ObjectAddressElement, SimFuture]] = []
    for element in binding.address.elements:
        invocation = MethodInvocation(
            target=binding.loid, method="Ping", args=(), env=env
        )
        futures.append((element, runtime.send_request(element, invocation, timeout)))
    status = ReplicaGroupStatus(loid=binding.loid)
    for element, fut in futures:
        try:
            result = yield fut
            result.unwrap()
            status.alive.append(element)
        except DeliveryFailure:
            status.dead.append(element)
    return status


def repair_replica_group(
    runtime: LegionRuntime,
    binding: Binding,
    class_loid: LOID,
    env: Optional[CallEnvironment] = None,
    timeout: Optional[float] = None,
):
    """Probe the group and report each dead member to the class.

    Returns the repaired :class:`Binding` (identical to the input when
    everything was alive).  Raises
    :class:`~repro.errors.BindingNotFound` if the class reports the last
    replica gone.
    """
    if env is None:
        env = CallEnvironment.originating(runtime.loid)
    status = yield from probe_replicas(runtime, binding, env, timeout)
    current = binding
    for element in status.dead:
        current = yield from runtime.invoke(
            class_loid, "ReportDeadReplica", binding.loid, element, env=env
        )
    runtime.cache.insert(current)
    return current


class ReplicaRepairService:
    """Background re-replication, one staggered sweep loop per site.

    Reads cadence, pacing, priority, and timeouts from the installed
    :class:`~repro.replication.selection.ReplicationConfig` (overridable
    per instance).  Requires ``enable_replication`` to have run: the
    per-site catalogs are the work lists.
    """

    def __init__(
        self,
        system,
        interval: Optional[float] = None,
        stagger: Optional[float] = None,
        priority: Optional[int] = None,
        pacing: Optional[float] = None,
    ) -> None:
        directory = getattr(system.services, "replication", None)
        if directory is None:
            raise LegionError(
                "ReplicaRepairService needs enable_replication() first"
            )
        config: ReplicationConfig = directory.config
        self.system = system
        self.directory = directory
        self.interval = config.repair_interval if interval is None else interval
        self.stagger = config.repair_stagger if stagger is None else stagger
        self.priority = config.repair_priority if priority is None else priority
        self.pacing = config.repair_pacing if pacing is None else pacing
        self.timeout = config.repair_timeout
        #: site -> client console the repair traffic originates from
        #: (placed at the site, so probes of local replicas stay local).
        self._clients: dict = {}
        self._procs: List = []
        #: (site, loid, kind) audit rows: kind in {"shrink", "regrow"}.
        self.actions: List[Tuple[str, Any, str]] = []

    def _client_runtime(self, site: str) -> LegionRuntime:
        client = self._clients.get(site)
        if client is None:
            client = self.system.new_client(f"repair-{site}", site=site)
            client.runtime.retry_policy = REPAIR_RETRY_POLICY
            self._clients[site] = client
        return client.runtime

    def start(self) -> None:
        """Spawn the per-site sweep loops (idempotent)."""
        if self._procs:
            return
        for index, site in enumerate(self.directory.sites()):
            self._procs.append(
                self.system.kernel.spawn_process(
                    self._loop(site, index), name=f"replica-repair-{site}"
                )
            )

    def _loop(self, site: str, index: int):
        yield Timeout(self.interval + index * self.stagger)
        while True:
            try:
                yield from self.sweep_site(site)
            except ProcessKilled:
                raise  # stop() tore this loop down; ProcessKilled must win
            except LegionError:
                pass  # a sweep interrupted by chaos just runs again later
            yield Timeout(self.interval)

    def sweep_site(self, site: str):
        """One pass over ``site``'s catalog: probe, shrink, regrow.

        Public so experiments/tests can drive a deterministic final pass
        after the measured window (``system.spawn(svc.sweep_site(s))``).
        """
        runtime = self._client_runtime(site)
        catalog = self.directory.catalogs[site]
        entries = yield from runtime.invoke(
            catalog.loid, "Tracked", timeout=self.timeout, priority=self.priority
        )
        for loid, want, class_loid in entries:
            if class_loid is None:
                continue
            yield Timeout(self.pacing)
            yield from self.repair_group(runtime, site, loid, want, class_loid)

    def repair_group(self, runtime: LegionRuntime, site: str, loid, want, class_loid):
        """Probe one group; shrink dead members; regrow to ``want``.

        Each regrow hints the magistrate of a site the group no longer
        covers (in directory order), so a group that lost its only
        replica in a jurisdiction is restored *there*, not wherever the
        sweeping site has room.  The class seeds the new member before
        publishing it, so a regrow observed in the returned binding is a
        full copy; a grow that could not be seeded raises and is retried
        on a later sweep.
        """
        try:
            binding = yield from runtime.invoke(
                class_loid, "GetBinding", loid,
                timeout=self.timeout, priority=self.priority,
            )
        except ProcessKilled:
            raise  # stop() kills mid-call; LegionError must not eat it
        except LegionError:
            return  # group gone or class unreachable: next sweep retries
        status = yield from probe_replicas(
            runtime, binding, timeout=self.timeout
        )
        for element in status.dead:
            try:
                binding = yield from runtime.invoke(
                    class_loid, "ReportDeadReplica", loid, element,
                    timeout=self.timeout, priority=self.priority,
                )
            except BindingNotFound:
                return  # last replica gone: nothing left to copy from
            self.actions.append((site, loid, "shrink"))
        site_of = self.system.network.latency.site_of
        while want and len(binding.address.elements) < want and status.alive:
            covered = {site_of(e.host) for e in binding.address.elements}
            missing = [s for s in self.directory.sites() if s not in covered]
            hint_site = missing[0] if missing else site
            before = set(binding.address.elements)
            try:
                binding = yield from runtime.invoke(
                    class_loid, "AddReplica", loid,
                    self.system.magistrates[hint_site].loid,
                    timeout=self.timeout, priority=self.priority,
                )
            except ProcessKilled:
                raise  # stop() kills mid-call; LegionError must not eat it
            except LegionError:
                return  # no capacity / no seed source / unreachable: retry later
            grown = [e for e in binding.address.elements if e not in before]
            if not grown:
                break  # another sweep (or the class's size cap) got there first
            for element in grown:
                status.alive.append(element)
                self.actions.append((site, loid, "regrow"))
        runtime.cache.insert(binding)

    def stop(self) -> None:
        """Kill the sweep processes (end of the measured phase)."""
        for proc in self._procs:
            proc.kill()
        self._procs.clear()
