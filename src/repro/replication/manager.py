"""Replica-group maintenance helpers (section 4.3).

These are client-side generators (run them in any object's simulation
process).  They use only public Legion member functions -- Ping on the
replicas, ReportDeadReplica on the class -- so they model what a
monitoring object built *on* Legion would do, rather than adding hidden
machinery beside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import DeliveryFailure
from repro.core.method import MethodInvocation
from repro.core.runtime import LegionRuntime
from repro.naming.binding import Binding
from repro.naming.loid import LOID
from repro.net.address import ObjectAddressElement
from repro.security.environment import CallEnvironment
from repro.simkernel.futures import SimFuture


@dataclass
class ReplicaGroupStatus:
    """The result of probing every element of a replica group."""

    loid: LOID
    alive: List[ObjectAddressElement] = field(default_factory=list)
    dead: List[ObjectAddressElement] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Group size at probe time."""
        return len(self.alive) + len(self.dead)

    @property
    def availability(self) -> float:
        """Fraction of replicas answering (1.0 for a healthy group)."""
        return len(self.alive) / self.total if self.total else 0.0


def probe_replicas(
    runtime: LegionRuntime,
    binding: Binding,
    env: Optional[CallEnvironment] = None,
    timeout: Optional[float] = None,
):
    """Ping every element of ``binding``'s address; classify alive/dead.

    Probes are issued concurrently (one request per element) and awaited
    individually, so one dead replica does not slow the others' answers.
    """
    if env is None:
        env = CallEnvironment.originating(runtime.loid)
    futures: List[Tuple[ObjectAddressElement, SimFuture]] = []
    for element in binding.address.elements:
        invocation = MethodInvocation(
            target=binding.loid, method="Ping", args=(), env=env
        )
        futures.append((element, runtime.send_request(element, invocation, timeout)))
    status = ReplicaGroupStatus(loid=binding.loid)
    for element, fut in futures:
        try:
            result = yield fut
            result.unwrap()
            status.alive.append(element)
        except DeliveryFailure:
            status.dead.append(element)
    return status


def repair_replica_group(
    runtime: LegionRuntime,
    binding: Binding,
    class_loid: LOID,
    env: Optional[CallEnvironment] = None,
    timeout: Optional[float] = None,
):
    """Probe the group and report each dead member to the class.

    Returns the repaired :class:`Binding` (identical to the input when
    everything was alive).  Raises
    :class:`~repro.errors.BindingNotFound` if the class reports the last
    replica gone.
    """
    if env is None:
        env = CallEnvironment.originating(runtime.loid)
    status = yield from probe_replicas(runtime, binding, env, timeout)
    current = binding
    for element in status.dead:
        current = yield from runtime.invoke(
            class_loid, "ReportDeadReplica", binding.loid, element, env=env
        )
    runtime.cache.insert(current)
    return current
