"""Compatibility shim: the maintenance helpers moved to
:mod:`repro.replication.repair` when replication grew into a real
subsystem (catalogs, policies, locality selection, background repair).

Import from ``repro.replication`` (or ``repro.replication.repair``)
instead; this module exists so old import paths keep working.
"""

from repro.replication.repair import (  # noqa: F401 (re-exports)
    ReplicaGroupStatus,
    probe_replicas,
    repair_replica_group,
)

__all__ = ["ReplicaGroupStatus", "probe_replicas", "repair_replica_group"]
