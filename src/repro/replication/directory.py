"""The replication directory: the subsystem's one ambient handle.

``enable_replication(system)`` builds the two-tier catalog fabric the EU
DataGrid replica-location service popularised -- one ReplicaCatalog
object per jurisdiction (site) plus a single lightweight
GlobalReplicaIndex -- and installs a :class:`ReplicaDirectory` on
``SystemServices.replication``.  The directory itself is pure plumbing,
like SystemServices: it remembers where the catalogs live and which
config is in force.  All *state* lives in the catalog and index objects,
which are ordinary application-level Legion objects reached through the
message plane.

Installing the directory bumps the callpath epoch exactly once; every
runtime recompiles its invoke pipeline lazily on its next call and from
then on pays zero per-call checks (the locality selector is compiled
in, not consulted).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.net.latency import LatencyModel
from repro.replication.selection import LocalitySelector, ReplicationConfig


class ReplicaDirectory:
    """Where the per-site catalogs and the global index live.

    Stored on ``services.replication``.  Holds no replica state -- only
    bindings of the catalog fabric plus the :class:`ReplicationConfig`.
    """

    def __init__(self, config: Optional[ReplicationConfig] = None) -> None:
        self.config = config or ReplicationConfig()
        #: site name -> Binding of that site's ReplicaCatalog.
        self.catalogs: Dict[str, Any] = {}
        #: Binding of the GlobalReplicaIndex (cross-jurisdiction lookup).
        self.index: Any = None
        self._selector: Optional[LocalitySelector] = None

    @property
    def locality(self) -> bool:
        """Whether locality-aware selection should be compiled in."""
        return self.config.locality

    def selector(self, latency: LatencyModel) -> LocalitySelector:
        """The (shared) locality selector compiled into runtimes."""
        if self._selector is None or self._selector.latency is not latency:
            self._selector = LocalitySelector(latency)
        return self._selector

    def register_catalog(self, site: str, binding: Any) -> None:
        """Record ``site``'s catalog binding."""
        self.catalogs[site] = binding

    def catalog_element(self, site: Optional[str]):
        """The primary address element of ``site``'s catalog, or any
        catalog's when the site is unknown/unassigned (conservative:
        the news still lands somewhere and reaches the global index)."""
        binding = self.catalogs.get(site) if site is not None else None
        if binding is None:
            for name in sorted(self.catalogs):
                binding = self.catalogs[name]
                break
        if binding is None:
            return None
        return binding.address.primary()

    def index_element(self):
        """The primary address element of the global index, or None."""
        if self.index is None:
            return None
        return self.index.address.primary()

    def sites(self) -> List[str]:
        """Catalog sites, sorted (the repair service's sweep order)."""
        return sorted(self.catalogs)


def enable_replication(system, config: Optional[ReplicationConfig] = None):
    """Build the catalog fabric and install the directory on ``system``.

    Creates a ReplicaCatalog instance per site (pinned to the site's
    first host, alongside the magistrate -- catalog survivability
    matches the site-infrastructure convention of E13) and one
    GlobalReplicaIndex on the first site.  Idempotent: returns the
    existing directory if replication is already on.

    Must run *before* ``CreateReplicated`` calls whose groups should be
    tracked: class objects gossip placement news only once the
    directory is installed.
    """
    from repro.replication.catalog import GlobalReplicaIndexImpl, ReplicaCatalogImpl

    existing = getattr(system.services, "replication", None)
    if existing is not None:
        return existing

    directory = ReplicaDirectory(config)
    sites = [spec.name for spec in system.sites]
    first = sites[0]

    def _site_hints(site: str) -> Dict[str, Any]:
        return {
            "magistrate": system.magistrates[site].loid,
            "host": system.host_servers[system.site_hosts[site][0]].loid,
        }

    index_cls = system.create_class(
        "GlobalReplicaIndex", factory=GlobalReplicaIndexImpl, **_site_hints(first)
    )
    index = system.create_instance(index_cls.loid, **_site_hints(first))
    directory.index = index

    catalog_cls = system.create_class(
        "ReplicaCatalog", factory=ReplicaCatalogImpl, **_site_hints(first)
    )
    index_element = index.address.primary()
    for site in sites:
        binding = system.create_instance(
            catalog_cls.loid, init={"site": site}, **_site_hints(site)
        )
        system.call(binding.loid, "SetIndex", index_element)
        directory.register_catalog(site, binding)

    # One assignment, one epoch bump: every runtime recompiles lazily.
    system.services.replication = directory
    return directory
