"""Vault: a jurisdiction's aggregate persistent storage.

"A Jurisdiction consists of some aggregate persistent storage space and a
set of Legion hosts ... all of a Jurisdiction's persistent storage space
must be visible from each of its hosts." (sections 2.2, 3.1, Fig. 11)

The Vault is that aggregate: the union of a jurisdiction's
:class:`PersistentStore` disks, with placement (which disk gets a new OPR)
chosen by free space.  It also keeps the LOID → Persistent Address index a
Magistrate needs to find the OPR of an object it manages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.naming.loid import LOID
from repro.persistence.opr import OPRecord, PersistentAddress
from repro.persistence.storage import PersistentStore


class Vault:
    """The aggregate persistent storage of one jurisdiction."""

    def __init__(self, jurisdiction: str) -> None:
        self.jurisdiction = jurisdiction
        self._stores: Dict[str, PersistentStore] = {}
        self._index: Dict[Tuple[int, int], PersistentAddress] = {}

    # -- composition ----------------------------------------------------------

    def add_store(self, store: PersistentStore) -> None:
        """Attach a disk to the vault (it must belong to this jurisdiction)."""
        if store.jurisdiction != self.jurisdiction:
            raise StorageError(
                f"store {store.name} belongs to {store.jurisdiction}, "
                f"not {self.jurisdiction}"
            )
        if store.name in self._stores:
            raise StorageError(f"store {store.name} already in vault")
        self._stores[store.name] = store

    def stores(self) -> List[PersistentStore]:
        """All attached disks, by name order."""
        return [self._stores[name] for name in sorted(self._stores)]

    # -- OPR lifecycle -----------------------------------------------------------

    def store_opr(self, record: OPRecord) -> PersistentAddress:
        """Write an OPR onto the emptiest disk with room; index it by LOID.

        Re-storing an object (a new deactivation) replaces its old OPR.
        """
        if not self._stores:
            raise StorageError(f"vault {self.jurisdiction} has no stores attached")
        old = self._index.get(record.loid.identity)
        blob_size = record.size
        candidates = sorted(
            self._stores.values(), key=lambda s: (s.used_bytes, s.name)
        )
        for store in candidates:
            if store.has_room_for(blob_size):
                address = store.write(record)
                if old is not None:
                    self._try_delete(old)
                self._index[record.loid.identity] = address
                return address
        raise StorageError(
            f"no store in vault {self.jurisdiction} has room for {blob_size} bytes"
        )

    def load_opr(self, loid: LOID) -> OPRecord:
        """Load the OPR of ``loid``; raises if this vault holds none."""
        address = self._index.get(loid.identity)
        if address is None:
            raise StorageError(f"vault {self.jurisdiction} holds no OPR for {loid}")
        return self._stores[address.store].read(address)

    def holds(self, loid: LOID) -> bool:
        """Whether this vault currently holds an OPR for ``loid``."""
        return loid.identity in self._index

    def address_of(self, loid: LOID) -> Optional[PersistentAddress]:
        """The Object Persistent Address of ``loid``'s OPR, if held."""
        return self._index.get(loid.identity)

    def delete_opr(self, loid: LOID) -> None:
        """Remove the OPR of ``loid`` (idempotent)."""
        address = self._index.pop(loid.identity, None)
        if address is not None:
            self._try_delete(address)

    def _try_delete(self, address: PersistentAddress) -> None:
        store = self._stores.get(address.store)
        if store is not None and store.exists(address):
            store.delete(address)

    # -- introspection -----------------------------------------------------------------

    @property
    def opr_count(self) -> int:
        """Number of Inert objects this vault holds."""
        return len(self._index)

    @property
    def used_bytes(self) -> int:
        """Total bytes across all disks."""
        return sum(s.used_bytes for s in self._stores.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Vault {self.jurisdiction} stores={len(self._stores)} "
            f"oprs={len(self._index)}>"
        )
