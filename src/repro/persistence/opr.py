"""Object Persistent Representations and Addresses (paper section 3.1.1).

"An Object Persistent Representation is a sequential set of bytes that
represents an Inert object, and that can be used by a Magistrate to
activate the object.  An executable file could be an Object Persistent
Representation for an object that has yet to become Active.  However, once
an object is activated, it may acquire state information that would need
to be stored as part of the Object Persistent Representation."

An :class:`OPRecord` therefore has two halves:

* the **implementation reference** -- a *factory chain*: an ordered list
  of (factory name, init kwargs) pairs naming entries of the system's
  :class:`~repro.core.context.ImplRegistry`.  A chain of length one is
  the plain executable; longer chains are how the active multiple
  inheritance of section 2.1.1 composes instances out of base-class
  implementations;
* the **saved state** -- the bytes SaveState() produced, or None for an
  object that has never been Active.

``to_bytes``/``from_bytes`` give the paper's sequential-byte form.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.naming.loid import LOID


@dataclass(frozen=True)
class PersistentAddress:
    """An Object Persistent Address: jurisdiction-local 'file name'.

    "will typically be a file name, and will only be meaningful within the
    Jurisdiction in which it resides" -- hence the explicit jurisdiction
    tag, which lets tests assert that cross-jurisdiction dereferencing is
    rejected rather than silently misbehaving.
    """

    jurisdiction: str
    store: str
    filename: str

    def __str__(self) -> str:
        return f"{self.jurisdiction}:/{self.store}/{self.filename}"


@dataclass
class OPRecord:
    """An Object Persistent Representation (see module docstring)."""

    loid: LOID
    class_loid: LOID
    #: Ordered (factory name, init kwargs) pairs; first is the object's own
    #: implementation, the rest are inherited base implementations.
    factory_chain: List[Tuple[str, Dict[str, Any]]]
    #: SaveState() output, or None before first activation.
    state: Optional[bytes] = None
    #: Metrics role of the object ("application", "class-object", ...).
    component_kind: str = "application"
    #: Extra creation-time annotations (host hints, security labels, ...).
    annotations: Dict[str, Any] = field(default_factory=dict)

    def with_state(self, state: bytes) -> "OPRecord":
        """A copy carrying freshly saved state (post-deactivation)."""
        return OPRecord(
            loid=self.loid,
            class_loid=self.class_loid,
            factory_chain=list(self.factory_chain),
            state=state,
            component_kind=self.component_kind,
            annotations=dict(self.annotations),
        )

    # -- the sequential-set-of-bytes form ---------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to the paper's 'sequential set of bytes'."""
        payload = {
            "loid": self.loid.pack(),
            "class_loid": self.class_loid.pack(),
            "factory_chain": self.factory_chain,
            "state": self.state,
            "component_kind": self.component_kind,
            "annotations": self.annotations,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, data: bytes) -> "OPRecord":
        """Inverse of :meth:`to_bytes`."""
        try:
            payload = pickle.loads(data)
            return cls(
                loid=LOID.unpack(payload["loid"]),
                class_loid=LOID.unpack(payload["class_loid"]),
                factory_chain=list(payload["factory_chain"]),
                state=payload["state"],
                component_kind=payload.get("component_kind", "application"),
                annotations=dict(payload.get("annotations", {})),
            )
        except (KeyError, pickle.UnpicklingError, EOFError) as exc:
            raise StorageError(f"corrupt Object Persistent Representation: {exc}") from exc

    @property
    def size(self) -> int:
        """Approximate byte size (for store capacity accounting)."""
        return len(self.to_bytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{len(self.state)}B" if self.state is not None else "fresh"
        return f"<OPRecord {self.loid} impl={self.factory_chain[0][0]} state={state}>"
