"""Persistence: Object Persistent Representations, Addresses, and storage.

Paper section 3.1: a Legion object is either **Active** (a process with an
Object Address) or **Inert** (a byte sequence -- the Object Persistent
Representation -- in a jurisdiction's storage, located by an Object
Persistent Address that is "typically a file name, and will only be
meaningful within the Jurisdiction in which it resides").

* :class:`OPRecord` -- the OPR: identity, implementation (factory chain),
  and saved state; serialisable to the paper's "sequential set of bytes".
* :class:`PersistentStore` -- a simulated disk: a flat namespace of OPR
  files with capacity accounting.
* :class:`Vault` -- a jurisdiction's aggregate persistent storage: the
  union of its disks, visible from every host of the jurisdiction (the
  visibility requirement of Fig. 11).
"""

from repro.persistence.opr import OPRecord, PersistentAddress
from repro.persistence.storage import PersistentStore
from repro.persistence.vault import Vault

__all__ = ["OPRecord", "PersistentAddress", "PersistentStore", "Vault"]
