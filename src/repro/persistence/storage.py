"""PersistentStore: one simulated disk of a jurisdiction.

A flat namespace of OPR files with byte-capacity accounting.  The store is
deliberately dumb -- write/read/delete/list -- because the paper gives all
lifecycle intelligence to Magistrates; the store just has to hold bytes
and give them back.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.errors import StorageError
from repro.persistence.opr import OPRecord, PersistentAddress


class PersistentStore:
    """A simulated disk identified by (jurisdiction, store name)."""

    def __init__(
        self,
        jurisdiction: str,
        name: str,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        self.jurisdiction = jurisdiction
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._files: Dict[str, bytes] = {}
        self._counter = itertools.count(1)

    # -- capacity -----------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently stored."""
        return sum(len(blob) for blob in self._files.values())

    def has_room_for(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more would fit."""
        if self.capacity_bytes is None:
            return True
        return self.used_bytes + nbytes <= self.capacity_bytes

    # -- file operations ---------------------------------------------------------------

    def write(self, record: OPRecord) -> PersistentAddress:
        """Store an OPR; returns its fresh Object Persistent Address."""
        blob = record.to_bytes()
        if not self.has_room_for(len(blob)):
            raise StorageError(
                f"store {self.jurisdiction}:{self.name} full "
                f"({self.used_bytes}/{self.capacity_bytes} bytes)"
            )
        filename = f"opr-{record.loid.class_id}.{record.loid.class_specific}-{next(self._counter)}"
        self._files[filename] = blob
        return PersistentAddress(self.jurisdiction, self.name, filename)

    def read(self, address: PersistentAddress) -> OPRecord:
        """Load the OPR at ``address``.

        Object Persistent Addresses are jurisdiction-local (section 3.1.1):
        an address minted by another jurisdiction is rejected outright.
        """
        self._check_ours(address)
        blob = self._files.get(address.filename)
        if blob is None:
            raise StorageError(f"no OPR at {address}")
        return OPRecord.from_bytes(blob)

    def delete(self, address: PersistentAddress) -> None:
        """Remove the OPR at ``address``."""
        self._check_ours(address)
        if self._files.pop(address.filename, None) is None:
            raise StorageError(f"no OPR at {address}")

    def exists(self, address: PersistentAddress) -> bool:
        """Whether an OPR is stored at ``address``."""
        return (
            address.jurisdiction == self.jurisdiction
            and address.store == self.name
            and address.filename in self._files
        )

    def list_files(self) -> List[str]:
        """All stored filenames, sorted."""
        return sorted(self._files)

    def _check_ours(self, address: PersistentAddress) -> None:
        if address.jurisdiction != self.jurisdiction or address.store != self.name:
            raise StorageError(
                f"persistent address {address} is not meaningful in "
                f"{self.jurisdiction}:{self.name} (addresses are jurisdiction-local)"
            )

    def __len__(self) -> int:
        return len(self._files)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "∞" if self.capacity_bytes is None else str(self.capacity_bytes)
        return (
            f"<PersistentStore {self.jurisdiction}:{self.name} "
            f"files={len(self._files)} used={self.used_bytes}/{cap}>"
        )
