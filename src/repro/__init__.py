"""repro: a reproduction of "The Core Legion Object Model" (HPDC 1996).

Lewis & Grimshaw's paper specifies the core objects of Legion -- a
wide-area, object-based metacomputing system -- and argues its naming,
binding, and management machinery scales.  This package implements the
complete model over a from-scratch discrete-event simulation of a
wide-area testbed, plus the experiments that check the paper's
scalability claims.

Quickstart
----------
::

    from repro import LegionSystem, SiteSpec, LegionObjectImpl, legion_method

    class Counter(LegionObjectImpl):
        def __init__(self, start=0):
            self.value = start
        def persistent_attributes(self):
            return ["value"]
        @legion_method("int Increment(int)")
        def increment(self, amount):
            self.value += amount
            return self.value

    system = LegionSystem.build([SiteSpec("uva", hosts=2), SiteSpec("doe", hosts=2)])
    counter_class = system.create_class("Counter", factory=Counter)
    counter = system.create_instance(counter_class.loid, context_name="demo/counter")
    print(system.call("demo/counter", "Increment", 5))   # -> 5

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-claim vs. measured results.
"""

from repro.binding.agent import BindingAgentImpl
from repro.binding.hierarchy import AgentTree, build_agent_tree
from repro.core.class_types import ClassFlavor
from repro.core.context import SystemServices
from repro.core.legion_class import ClassObjectImpl
from repro.core.metaclass import LegionClassImpl
from repro.core.object_base import LegionObjectImpl, legion_method
from repro.core.relations import RelationGraph, RelationKind
from repro.core.server import ObjectServer
from repro.errors import LegionError
from repro.hosts.host_object import HostObjectImpl
from repro.idl import (
    Interface,
    MethodSignature,
    parse_corba_interface,
    parse_interface,
    parse_signature,
)
from repro.naming.context_object import ContextObjectImpl
from repro.jurisdiction.jurisdiction import Jurisdiction
from repro.jurisdiction.magistrate import MagistrateImpl, ObjectState
from repro.naming.binding import Binding
from repro.naming.cache import BindingCache
from repro.naming.context import Context
from repro.naming.loid import LOID
from repro.net.address import AddressSemantic, ObjectAddress, ObjectAddressElement
from repro.net.latency import LatencyModel, LinkClass
from repro.persistence.opr import OPRecord, PersistentAddress
from repro.security.environment import CallEnvironment
from repro.security.mayi import ACLPolicy, AllowAll, DenyAll, MayIPolicy, TrustSetPolicy
from repro.simkernel.kernel import SimKernel, Timeout
from repro.system.legion import LegionSystem, SiteSpec

__version__ = "1.0.0"

__all__ = [
    "AddressSemantic",
    "AgentTree",
    "ACLPolicy",
    "AllowAll",
    "Binding",
    "BindingAgentImpl",
    "BindingCache",
    "build_agent_tree",
    "CallEnvironment",
    "ClassFlavor",
    "ClassObjectImpl",
    "Context",
    "ContextObjectImpl",
    "DenyAll",
    "HostObjectImpl",
    "Interface",
    "Jurisdiction",
    "LegionClassImpl",
    "LegionError",
    "LegionObjectImpl",
    "LegionSystem",
    "legion_method",
    "LOID",
    "LatencyModel",
    "LinkClass",
    "MagistrateImpl",
    "MayIPolicy",
    "MethodSignature",
    "ObjectAddress",
    "ObjectAddressElement",
    "ObjectServer",
    "ObjectState",
    "OPRecord",
    "PersistentAddress",
    "parse_corba_interface",
    "parse_interface",
    "parse_signature",
    "RelationGraph",
    "RelationKind",
    "SimKernel",
    "SiteSpec",
    "SystemServices",
    "Timeout",
    "TrustSetPolicy",
]
