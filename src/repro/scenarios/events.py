"""Compile a ScenarioSpec into a backend-neutral event stream.

The compiler is a pure function of ``(spec, seed, rate_scale)`` built on
one named :class:`~repro.simkernel.rng.RngStreams` stream, so the same
spec and seed always produce the identical stream -- the property the
rich-object driver (``drive``) and the columnar kernels (``mega``)
rely on to agree on per-frame arrival counts by construction.

The stream is a list of :class:`TickPlan` frames.  Each frame holds the
sessions that *arrive* during that tick; a session carries its complete
precompiled trajectory (request kinds, think gaps, final disposition),
so no backend draws randomness at replay time and kernel interleaving
can never perturb the workload.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.simkernel.rng import RngStreams

from .spec import ScenarioSpec, validate

#: Data keys per (class, site) target -- read/write traffic lands on these.
KEYSPACE = 16


@dataclass(frozen=True)
class Request:
    """One request of a session: kind plus the think gap before it."""

    kind: str
    think: float
    denied: bool  # privileged request from an unprivileged tenant


@dataclass(frozen=True)
class Arrival:
    """One session arrival with its full precompiled trajectory."""

    offset: float  # ms after the tick start
    site: int  # caller's jurisdiction
    tenant: int  # index into spec.tenants
    klass: int  # target class (Zipf-ranked: 0 is hottest)
    target_site: int  # jurisdiction whose instance pool is targeted
    slot: int  # instance index within (klass, target_site)
    key: int  # data key for read/write requests
    completed: bool  # ran to max_requests (else abandoned)
    requests: Tuple[Request, ...]


@dataclass(frozen=True)
class TickPlan:
    """All sessions arriving during one tick of the timeline."""

    index: int
    t0: float
    phase: str
    arrivals: Tuple[Arrival, ...]


def _poisson(rng, mean: float) -> int:
    """Knuth's Poisson sampler (exact, fine for per-tick means)."""
    if mean <= 0.0:
        return 0
    threshold = math.exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _cdf(weights: Sequence[float]) -> List[float]:
    total = float(sum(weights))
    acc, out = 0.0, []
    for w in weights:
        acc += w / total
        out.append(acc)
    return out


def _zipf_cdf(n: int, s: float) -> List[float]:
    return _cdf([(rank + 1) ** (-s) for rank in range(n)])


def site_rate(spec: ScenarioSpec, phase_index: int, site: int, t_in_phase: float) -> float:
    """The arrival rate (sessions/ms) one site offers at a phase-relative time."""
    arrival = spec.phases[phase_index].arrival
    base = arrival.rate / spec.sites
    if arrival.kind == "diurnal":
        shift = arrival.period * site / spec.sites  # time-zone offset
        angle = 2.0 * math.pi * (t_in_phase + shift) / arrival.period
        return base * (1.0 + arrival.amplitude * math.sin(angle))
    if arrival.kind == "flash":
        in_surge = (
            arrival.surge_at
            <= t_in_phase
            < arrival.surge_at + arrival.surge_duration
        )
        return base * (arrival.surge_mult if in_surge else 1.0)
    return base


def compile_events(
    spec: ScenarioSpec, seed: int, rate_scale: float = 1.0
) -> List[TickPlan]:
    """The deterministic event stream for ``spec`` at ``seed``.

    ``rate_scale`` uniformly multiplies every arrival rate (the
    ``--overload`` composition knob); it changes how many sessions are
    drawn but not the shape of the language.
    """
    validate(spec)
    rng = RngStreams(seed).stream(f"scenario-{spec.name}")
    zipf = _zipf_cdf(spec.n_classes, spec.mix.zipf_s)
    tenant_cdf = _cdf([t.weight for t in spec.tenants])
    kind_names = list(spec.mix.kinds)
    kind_cdf = _cdf([spec.mix.kinds[k] for k in kind_names])
    phase_ends: List[float] = []
    acc = 0.0
    for phase in spec.phases:
        acc += phase.duration
        phase_ends.append(acc)
    plan: List[TickPlan] = []
    index, t0 = 0, 0.0
    while t0 < acc - 1e-9:
        phase_index = min(bisect_right(phase_ends, t0), len(spec.phases) - 1)
        phase = spec.phases[phase_index]
        phase_start = phase_ends[phase_index] - phase.duration
        session = phase.session
        arrivals: List[Arrival] = []
        for site in range(spec.sites):
            rate = site_rate(spec, phase_index, site, t0 - phase_start)
            mean = max(0.0, rate) * spec.tick_ms * rate_scale
            for _ in range(_poisson(rng, mean)):
                offset = rng.random() * spec.tick_ms
                tenant = bisect_right(tenant_cdf, rng.random())
                klass = bisect_right(zipf, rng.random())
                if spec.sites > 1 and rng.random() >= spec.mix.locality:
                    target_site = rng.randrange(spec.sites - 1)
                    if target_site >= site:
                        target_site += 1
                else:
                    target_site = site
                slot = rng.randrange(spec.targets_per_site)
                key = rng.randrange(KEYSPACE)
                privileged_ok = spec.tenants[tenant].privileged
                requests: List[Request] = []
                while True:
                    kind = kind_names[bisect_right(kind_cdf, rng.random())]
                    think = 0.0
                    if requests and session.think_time > 0:
                        think = rng.expovariate(1.0 / session.think_time)
                    requests.append(
                        Request(
                            kind=kind,
                            think=think,
                            denied=(kind == "privileged" and not privileged_ok),
                        )
                    )
                    if len(requests) >= session.max_requests:
                        completed = True
                        break
                    if rng.random() >= session.p_continue:
                        completed = False
                        break
                arrivals.append(
                    Arrival(
                        offset=offset,
                        site=site,
                        tenant=tenant,
                        klass=klass,
                        target_site=target_site,
                        slot=slot,
                        key=key,
                        completed=completed,
                        requests=tuple(requests),
                    )
                )
        arrivals.sort(key=lambda a: a.offset)
        plan.append(
            TickPlan(index=index, t0=t0, phase=phase.name, arrivals=tuple(arrivals))
        )
        index += 1
        t0 = index * spec.tick_ms
    return plan


def per_tick_arrivals(plan: Sequence[TickPlan]) -> List[int]:
    """Session arrivals per tick -- the frame counts both backends share."""
    return [len(tick.arrivals) for tick in plan]


def per_tick_class_arrivals(
    plan: Sequence[TickPlan], n_classes: int
) -> List[List[int]]:
    """Per-tick, per-class session arrival counts."""
    out = []
    for tick in plan:
        row = [0] * n_classes
        for a in tick.arrivals:
            row[a.klass] += 1
        out.append(row)
    return out


def stream_stats(plan: Sequence[TickPlan]) -> dict:
    """Summary tallies of a compiled stream (sessions, requests, denials)."""
    sessions = requests = denied = completed = 0
    for tick in plan:
        for a in tick.arrivals:
            sessions += 1
            completed += a.completed
            requests += len(a.requests)
            denied += sum(r.denied for r in a.requests)
    return {
        "sessions": sessions,
        "requests": requests,
        "denied": denied,
        "completed": completed,
        "abandoned": sessions - completed,
    }
