"""The named scenario catalog (>= 5 shapes, ISSUE 10 / ROADMAP item 2).

Every entry is written in the declarative dictionary form and built via
:func:`repro.scenarios.spec.from_dict`, so the catalog itself exercises
the validation path and doubles as the language's reference examples.

Durations are the ``--quick`` sizes; E18 stretches them for ``--full``
runs by compiling the same spec with longer phases (see the experiment).
"""

from __future__ import annotations

from typing import Dict, List

from .spec import ScenarioSpec, ScenarioSpecError, from_dict

_CATALOG_DICTS = (
    {
        # Wide-area daily rhythm: three jurisdictions whose offered load
        # follows a sinusoid phase-shifted by a third of a period each --
        # the paper's campus/time-zone picture.  Peaks must land at
        # different ticks per site.
        "name": "diurnal-regional",
        "description": "time-zone-offset sinusoid load per jurisdiction",
        "sites": 3,
        "n_classes": 2,
        "service_time": 2.0,
        "mix": {"kinds": {"work": 1.0}, "zipf_s": 0.0, "locality": 0.9},
        "phases": [
            {
                "name": "day",
                "duration": 480.0,
                "arrival": {
                    "kind": "diurnal",
                    "rate": 0.9,
                    "amplitude": 0.8,
                    "period": 240.0,
                },
                "session": {
                    "think_time": 10.0,
                    "p_continue": 0.6,
                    "p_abandon": 0.4,
                    "max_requests": 3,
                },
            }
        ],
    },
    {
        # A step surge concentrated on one hot class: Zipf skew sends most
        # sessions to class 0, and mid-phase the arrival rate steps up 8x
        # for 80 ms.
        "name": "flash-crowd",
        "description": "step surge on one Zipf-hot class",
        "sites": 2,
        "n_classes": 4,
        "service_time": 2.0,
        "mix": {"kinds": {"work": 1.0}, "zipf_s": 1.5, "locality": 0.8},
        "phases": [
            {
                "name": "watch",
                "duration": 480.0,
                "arrival": {
                    "kind": "flash",
                    "rate": 0.5,
                    "surge_at": 160.0,
                    "surge_duration": 80.0,
                    "surge_mult": 8.0,
                },
                "session": {
                    "think_time": 6.0,
                    "p_continue": 0.5,
                    "p_abandon": 0.5,
                    "max_requests": 2,
                },
            }
        ],
    },
    {
        # Mixed-priority tenants under contention.  The premium tenant is
        # the only one allowed through the Privileged MayI gate; standard
        # and batch tenants keep probing it, so the security path is
        # exercised *while* the deployment is saturated.
        "name": "multi-tenant",
        "description": "mixed-priority tenants probing MayI under contention",
        "sites": 2,
        "n_classes": 2,
        "service_time": 2.0,
        "tenants": [
            {"name": "premium", "weight": 0.3, "deadline": 400.0, "privileged": True},
            {"name": "standard", "weight": 0.5},
            {"name": "batch", "weight": 0.2},
        ],
        "mix": {"kinds": {"work": 0.85, "privileged": 0.15}, "locality": 0.7},
        "phases": [
            {
                "name": "ramp",
                "duration": 160.0,
                "arrival": {"kind": "poisson", "rate": 0.6},
                "session": {
                    "think_time": 8.0,
                    "p_continue": 0.5,
                    "p_abandon": 0.5,
                    "max_requests": 3,
                },
            },
            {
                "name": "contention",
                "duration": 240.0,
                "arrival": {"kind": "poisson", "rate": 1.6},
                "session": {
                    "think_time": 5.0,
                    "p_continue": 0.6,
                    "p_abandon": 0.4,
                    "max_requests": 3,
                },
            },
            {
                "name": "calm",
                "duration": 160.0,
                "arrival": {"kind": "poisson", "rate": 0.4},
                "session": {
                    "think_time": 8.0,
                    "p_continue": 0.5,
                    "p_abandon": 0.5,
                    "max_requests": 2,
                },
            },
        ],
    },
    {
        # Metacomputing heritage: few long-running batch jobs (many
        # requests per session, heavy work units) arriving slowly -- the
        # shape checkpoint/restart (SaveState/OPRs) exists for.
        "name": "scientific-batch",
        "description": "long-running batch jobs with checkpoint/restart",
        "sites": 2,
        "n_classes": 2,
        "service_time": 2.0,
        "batch_units": 3.0,
        "checkpoint_restart": True,
        "mix": {"kinds": {"batch": 1.0}, "locality": 1.0},
        "phases": [
            {
                "name": "campaign",
                "duration": 600.0,
                "arrival": {"kind": "poisson", "rate": 0.12},
                "session": {
                    "think_time": 12.0,
                    "p_continue": 0.9,
                    "p_abandon": 0.1,
                    "max_requests": 6,
                },
            }
        ],
    },
    {
        # FEDORA-style digital repository: overwhelmingly reads with rare
        # writes over Zipf-hot keys, mostly local to each jurisdiction --
        # the shape replicated stores (--replicas) are for.
        "name": "repository",
        "description": "FEDORA-style reader-heavy repository, rare writes",
        "sites": 3,
        "n_classes": 2,
        "targets_per_site": 1,
        "service_time": 2.0,
        "read_time": 0.25,
        "consistency": "primary-copy",
        "mix": {"kinds": {"read": 0.96, "write": 0.04}, "zipf_s": 1.1, "locality": 0.85},
        "phases": [
            {
                "name": "browse",
                "duration": 480.0,
                "arrival": {"kind": "poisson", "rate": 1.4},
                "session": {
                    "think_time": 6.0,
                    "p_continue": 0.6,
                    "p_abandon": 0.4,
                    "max_requests": 4,
                },
            }
        ],
    },
)


def catalog() -> Dict[str, ScenarioSpec]:
    """Name -> validated spec for every catalog scenario."""
    specs = [from_dict(d) for d in _CATALOG_DICTS]
    return {spec.name: spec for spec in specs}


def scenario_names() -> List[str]:
    """Catalog names in declaration order."""
    return [d["name"] for d in _CATALOG_DICTS]


def get_scenario(name: str) -> ScenarioSpec:
    """One catalog scenario by name, with an actionable miss message."""
    specs = catalog()
    if name not in specs:
        raise ScenarioSpecError(
            f"unknown scenario {name!r}; catalog has {scenario_names()}"
        )
    return specs[name]
