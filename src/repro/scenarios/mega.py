"""Columnar mega-scale backend for the scenario language.

Any catalog scenario runs at 10^6 callers: the compiled event stream is
replayed through vectorised per-tick frame kernels (the PR-9 columnar
idiom) instead of per-object simulation processes.  The scaling model is
*sharded symmetry*: a population of N callers is served by
``scale = ceil(N / base)`` disjoint target shards, each receiving the
identical base stream -- per-target dynamics are exactly the base
dynamics, and every tally scales linearly.  That keeps the kernel an
exact, deterministic function of ``(spec, seed, population)`` and makes
rich-vs-mega agreement on per-frame arrival counts a property by
construction (compare at scale 1).

Accounting is exact: per tick, requests are admitted against a bounded
per-target backlog (``QCAP_TICKS`` ticks of work), the excess is shed,
privileged requests from unprivileged tenants are denied up front (the
MayI gate, columnar form), and each target serves FIFO at one ms of
work per ms.  The settled identity ``issued == denied + shed + served``
holds after the drain, per target, per frame.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence

from repro.megascale.compat import require_numpy

try:  # optional ``repro[mega]`` extra
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less installs only
    np = None  # type: ignore[assignment]

from .events import TickPlan, compile_events
from .spec import ScenarioSpec

#: A target's backlog is capped at this many ticks of work; beyond it,
#: arrivals are shed (the columnar form of bounded admission queues).
QCAP_TICKS = 4

#: Sessions in one shard of the sharded-symmetry scaling model.
BASE_SHARD_CALLERS = 1000


def _cost(spec: ScenarioSpec, kind: str) -> float:
    if kind == "read":
        return spec.read_time
    if kind == "batch":
        return spec.batch_units * spec.service_time
    return spec.service_time


def compile_frames(spec: ScenarioSpec, plan: Sequence[TickPlan]) -> dict:
    """Flatten a compiled stream into columnar per-request arrays.

    Requests are placed at their *nominal* times (arrival offset plus
    cumulative think gaps -- the open-loop rendering of the session
    state machine) and sorted FIFO per tick.
    """
    require_numpy("the scenario mega backend")
    times: List[float] = []
    tids: List[int] = []
    costs: List[float] = []
    denied: List[bool] = []
    first: List[bool] = []
    for tick in plan:
        for a in tick.arrivals:
            t = tick.t0 + a.offset
            tid = (a.klass * spec.sites + a.target_site) * spec.targets_per_site
            tid += a.slot
            for i, req in enumerate(a.requests):
                t += req.think
                times.append(t)
                tids.append(tid)
                costs.append(_cost(spec, req.kind))
                denied.append(req.denied)
                first.append(i == 0)
    order = np.lexsort((np.arange(len(times)), np.asarray(times)))
    return {
        "time": np.asarray(times)[order],
        "tid": np.asarray(tids, dtype=np.int64)[order],
        "cost": np.asarray(costs)[order],
        "denied": np.asarray(denied, dtype=bool)[order],
        "first": np.asarray(first, dtype=bool)[order],
        "n_targets": spec.targets_total,
    }


def frame_arrivals(spec: ScenarioSpec, seed: int) -> List[int]:
    """Per-frame session arrivals as the columnar backend sees them.

    The rich backend's counts are ``events.per_tick_arrivals``; the two
    must agree frame for frame (a Hypothesis property).
    """
    plan = compile_events(spec, seed)
    frames = compile_frames(spec, plan)
    n_ticks = len(plan)
    session_times = frames["time"][frames["first"]]
    index = np.minimum(
        (session_times // spec.tick_ms).astype(np.int64), n_ticks - 1
    )
    return np.bincount(index, minlength=n_ticks).astype(int).tolist()


def run_scenario_mega(
    spec: ScenarioSpec, seed: int, population: int = 1_000_000
) -> dict:
    """One scenario at ``population`` callers through the frame kernels."""
    require_numpy("the scenario mega backend")
    plan = compile_events(spec, seed)
    frames = compile_frames(spec, plan)
    n_targets = frames["n_targets"]
    tick_ms = spec.tick_ms
    qcap = QCAP_TICKS * tick_ms

    base_sessions = int(frames["first"].sum())
    scale = max(1, -(-population // max(1, base_sessions)))

    time_arr, tid_arr = frames["time"], frames["tid"]
    cost_arr, denied_arr = frames["cost"], frames["denied"]
    tick_of = (time_arr // tick_ms).astype(np.int64)
    horizon = int(tick_of.max()) + 1 if len(tick_of) else len(plan)

    backlog = np.zeros(n_targets)  # ms of admitted, unserved work
    served_cum = np.zeros(n_targets)  # ms of work served so far
    positions: List[List[float]] = [[] for _ in range(n_targets)]
    served_ptr = [0] * n_targets
    pos_end = np.zeros(n_targets)  # admitted-work watermark per target

    issued = denied_n = shed_n = served_n = 0
    frame_rows: List[dict] = []
    peak_backlog = 0.0

    def serve_one_tick() -> int:
        nonlocal served_n
        served_now = np.minimum(backlog, tick_ms)
        backlog[:] = backlog - served_now
        served_cum[:] = served_cum + served_now
        done = 0
        for t in range(n_targets):
            pos, ptr = positions[t], served_ptr[t]
            limit = served_cum[t] + 1e-9
            while ptr < len(pos) and pos[ptr] <= limit:
                ptr += 1
                done += 1
            served_ptr[t] = ptr
        served_n += done
        return done

    start = 0
    for k in range(horizon):
        stop = start
        while stop < len(tick_of) and tick_of[stop] == k:
            stop += 1
        tids_k = tid_arr[start:stop]
        costs_k = cost_arr[start:stop]
        denied_k = denied_arr[start:stop]
        start = stop

        issued += len(tids_k)
        denied_tick = int(denied_k.sum())
        denied_n += denied_tick
        live = ~denied_k
        tids_live, costs_live = tids_k[live], costs_k[live]

        # Admission cut: per target, admit FIFO while backlog stays
        # under the cap; the vectorised segment-cumsum form.
        if len(tids_live):
            order = np.argsort(tids_live, kind="stable")
            t_sorted, c_sorted = tids_live[order], costs_live[order]
            cum = np.cumsum(c_sorted)
            seg_start = np.flatnonzero(
                np.r_[True, t_sorted[1:] != t_sorted[:-1]]
            )
            seg_base = np.repeat(
                np.r_[0.0, cum[seg_start[1:] - 1]], np.diff(np.r_[seg_start, len(cum)])
            )
            within = cum - seg_base  # cumulative new work per target
            admit_sorted = backlog[t_sorted] + within <= qcap + 1e-9
            shed_tick = int((~admit_sorted).sum())
            shed_n += shed_tick
            adm_t = t_sorted[admit_sorted]
            adm_c = c_sorted[admit_sorted]
            np.add.at(backlog, adm_t, adm_c)
            for t, c in zip(adm_t.tolist(), adm_c.tolist()):
                pos_end[t] += c
                positions[t].append(pos_end[t])
        else:
            shed_tick = 0

        peak_backlog = max(peak_backlog, float(backlog.max()) if n_targets else 0.0)
        done = serve_one_tick()
        frame_rows.append(
            {
                "tick": k,
                "issued": len(tids_k),
                "denied": denied_tick,
                "shed": shed_tick,
                "served": done,
                "backlog_ms": round(float(backlog.sum()), 4),
            }
        )

    drain_ticks = 0
    while float(backlog.sum()) > 1e-9:
        done = serve_one_tick()
        drain_ticks += 1
        frame_rows.append(
            {
                "tick": horizon + drain_ticks - 1,
                "issued": 0,
                "denied": 0,
                "shed": 0,
                "served": done,
                "backlog_ms": round(float(backlog.sum()), 4),
            }
        )

    settled = issued == denied_n + shed_n + served_n
    report = {
        "scenario": spec.name,
        "population": base_sessions * scale,
        "scale": scale,
        "base_sessions": base_sessions,
        "ticks": horizon,
        "drain_ticks": drain_ticks,
        "issued": issued * scale,
        "denied": denied_n * scale,
        "shed": shed_n * scale,
        "served": served_n * scale,
        "settled": settled,
        "peak_target_backlog_ms": round(peak_backlog, 4),
        "frames": frame_rows,
    }
    digest = hashlib.sha256(
        json.dumps(report, sort_keys=True).encode()
    ).hexdigest()
    report["checksum"] = digest[:16]
    return report


def mega_summary(report: Dict) -> str:
    """One-line summary for tables and logs."""
    return (
        f"{report['scenario']}: pop={report['population']} "
        f"served={report['served']} shed={report['shed']} "
        f"denied={report['denied']} settled={report['settled']} "
        f"checksum={report['checksum']}"
    )
