"""Declarative scenario language + application catalog (ROADMAP item 2).

Specs (:mod:`.spec`) describe arrival processes, session lifecycles,
target mixes, tenants, and phase timelines; :mod:`.events` compiles a
spec + seed into a backend-neutral event stream; :mod:`.drive` replays
it through the rich-object runtime and :mod:`.mega` through columnar
frame kernels at mega-scale populations.  :mod:`.catalog` ships the
named scenarios experiment E18 sweeps.
"""

from .catalog import catalog, get_scenario, scenario_names
from .events import (
    Arrival,
    Request,
    TickPlan,
    compile_events,
    per_tick_arrivals,
    per_tick_class_arrivals,
    stream_stats,
)
from .spec import (
    ArrivalSpec,
    MixSpec,
    PhaseSpec,
    ScenarioSpec,
    ScenarioSpecError,
    SessionSpec,
    TenantSpec,
    from_dict,
    validate,
)
from .drive import Deployment, ReplicaRouting, ScenarioDriver, SessionTally, deploy

__all__ = [
    "Arrival",
    "ArrivalSpec",
    "Deployment",
    "MixSpec",
    "PhaseSpec",
    "ReplicaRouting",
    "Request",
    "ScenarioDriver",
    "ScenarioSpec",
    "ScenarioSpecError",
    "SessionSpec",
    "SessionTally",
    "TenantSpec",
    "TickPlan",
    "catalog",
    "compile_events",
    "deploy",
    "from_dict",
    "get_scenario",
    "per_tick_arrivals",
    "per_tick_class_arrivals",
    "scenario_names",
    "stream_stats",
    "validate",
]
