"""Replay a compiled scenario through the rich-object runtime.

``deploy`` turns a :class:`~repro.scenarios.spec.ScenarioSpec` into a
live :class:`~repro.system.legion.LegionSystem` -- one jurisdiction per
scenario site, one :class:`~repro.workloads.apps.ScenarioServiceImpl`
instance per (class, site, slot), one client console per (tenant, site),
and a MayI ACL admitting only privileged tenants to ``Privileged()``.

``ScenarioDriver`` then replays a compiled event stream: one simulation
process per session, issuing the precompiled request trajectory with
think gaps between requests, classifying every outcome (ok / shed /
denied / failed) into both the shared :class:`TrafficStats` ledger and a
per-call record list.  The driver builds on the same
:class:`~repro.workloads.generators.SessionLoopDriver` core as the
closed- and open-loop drivers, so call accounting is identical across
all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import LegionError, Overloaded, SecurityDenied
from repro.naming.loid import LOID
from repro.security.mayi import ACLPolicy
from repro.simkernel.kernel import Timeout
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import ScenarioServiceImpl
from repro.workloads.generators import SessionLoopDriver

from .events import Arrival, Request, TickPlan
from .spec import ScenarioSpec

#: Hosts per scenario site (jurisdiction).
HOSTS_PER_SITE = 2


def method_for(spec: ScenarioSpec, a: Arrival, req: Request) -> Tuple[str, tuple]:
    """The application method and args one request maps to."""
    if req.kind == "read":
        return "Read", (a.key,)
    if req.kind == "write":
        return "Write", (a.key,)
    if req.kind == "batch":
        return "Work", (spec.batch_units,)
    if req.kind == "privileged":
        return "Privileged", ()
    return "Work", (1.0,)


@dataclass
class SessionTally:
    """Conservation ledger: started == completed + abandoned + active."""

    started: int = 0
    completed: int = 0
    abandoned: int = 0

    @property
    def active(self) -> int:
        return self.started - self.completed - self.abandoned

    def conserved(self) -> bool:
        return self.active >= 0


@dataclass
class Deployment:
    """A scenario spec made live: system, targets, consoles, ACL."""

    spec: ScenarioSpec
    system: LegionSystem
    site_names: List[str]
    classes: List[object]  # class Bindings, one per scenario class
    instances: Dict[Tuple[int, int], List[LOID]]  # (klass, site) -> slots
    clients: Dict[Tuple[int, int], object]  # (tenant, site) -> console
    acl: Optional[ACLPolicy] = None

    def all_clients(self) -> List[object]:
        return [self.clients[key] for key in sorted(self.clients)]

    def target_of(self, a: Arrival) -> LOID:
        return self.instances[(a.klass, a.target_site)][a.slot]

    def client_of(self, a: Arrival) -> object:
        return self.clients[(a.tenant, a.site)]


def deploy(
    spec: ScenarioSpec,
    seed: int,
    *,
    flow=None,
    pin_classes: bool = False,
) -> Deployment:
    """Build the live system a scenario runs against.

    ``pin_classes`` places every class object (and its magistrate role)
    on site 0's first host -- the protected-host recipe the fault arm
    uses so chaos never kills the metadata spine.
    """
    site_names = [f"site{i}" for i in range(spec.sites)]
    system = LegionSystem.build(
        [SiteSpec(name=name, hosts=HOSTS_PER_SITE) for name in site_names],
        seed=seed,
        flow=flow,
    )
    clients: Dict[Tuple[int, int], object] = {}
    for ti, tenant in enumerate(spec.tenants):
        for si, site in enumerate(site_names):
            clients[(ti, si)] = system.new_client(
                name=f"{tenant.name}-{site}", site=site
            )
    acl: Optional[ACLPolicy] = None
    if any(r == "privileged" for r in spec.mix.kinds):
        admitted = {
            clients[(ti, si)].loid
            for ti, tenant in enumerate(spec.tenants)
            if tenant.privileged
            for si in range(spec.sites)
        }
        acl = ACLPolicy(acl={"Privileged": admitted}, default=True)

    def factory(policy=acl):
        impl = ScenarioServiceImpl(
            service_time=spec.service_time, read_time=spec.read_time
        )
        if policy is not None:
            impl.mayi_policy = policy
        return impl

    pin_hints = {}
    if pin_classes:
        site0 = site_names[0]
        pin_hints = {
            "magistrate": system.magistrates[site0].loid,
            "host": system.host_servers[system.site_hosts[site0][0]].loid,
        }
    classes: List[object] = []
    instances: Dict[Tuple[int, int], List[LOID]] = {}
    for k in range(spec.n_classes):
        cls = system.create_class(f"Scenario{k}", factory=factory, **pin_hints)
        classes.append(cls)
        for si, site in enumerate(site_names):
            hosts = system.site_hosts[site]
            slots = []
            for slot in range(spec.targets_per_site):
                host_id = hosts[slot % len(hosts)]
                binding = system.create_instance(
                    cls.loid,
                    magistrate=system.magistrates[site].loid,
                    host=system.host_servers[host_id].loid,
                )
                slots.append(binding.loid)
            instances[(k, si)] = slots
    return Deployment(
        spec=spec,
        system=system,
        site_names=site_names,
        classes=classes,
        instances=instances,
        clients=clients,
        acl=acl,
    )


class ScenarioDriver(SessionLoopDriver):
    """Replay one compiled event stream against a deployment.

    ``invoke_via(driver, client, arrival, request, timeout)`` may replace
    the default target-method invocation (the ``--replicas`` arm routes
    reads/writes through a :class:`ReplicaSession` this way).
    """

    kind = "scenario"

    def __init__(
        self,
        deployment: Deployment,
        plan: List[TickPlan],
        *,
        use_deadlines: bool = True,
        timeout: Optional[float] = None,
        invoke_via: Optional[Callable] = None,
    ) -> None:
        super().__init__(
            deployment.system.kernel,
            deployment.all_clients(),
            timeout=timeout,
        )
        self.deployment = deployment
        self.spec = deployment.spec
        self.plan = plan
        self.use_deadlines = use_deadlines
        self.invoke_via = invoke_via
        self.sessions = SessionTally()
        self.records: List[dict] = []
        #: Kernel time when the pump started -- the scenario's t=0.  The
        #: system bootstrap consumes simulated time before any driver
        #: runs, so arrival offsets and phase windows are relative.
        self.t_base: Optional[float] = None

    # ------------------------------------------------------------- plumbing

    def _default_invoke(self, client, a: Arrival, req: Request, timeout):
        target = self.deployment.target_of(a)
        method, args = method_for(self.spec, a, req)
        yield from client.runtime.invoke(target, method, *args, timeout=timeout)

    def _call(self, client, a: Arrival, req: Request, timeout, rec: dict):
        invoke = self.invoke_via or ScenarioDriver._default_invoke
        try:
            yield from invoke(self, client, a, req, timeout)
        except Overloaded:
            rec["outcome"] = "shed"
            self.stats.calls_failed += 1
        except SecurityDenied:
            rec["outcome"] = "denied"
            self.stats.calls_failed += 1
        except LegionError as exc:
            rec["outcome"] = "failed"
            self.stats.calls_failed += 1
            if len(self.stats.errors) < 32:
                self.stats.errors.append(f"{req.kind}: {exc}")
        else:
            rec["outcome"] = "ok"
            self.stats.calls_succeeded += 1
        rec["done"] = self.kernel.now

    def _session(self, a: Arrival, phase: str):
        client = self.deployment.client_of(a)
        timeout = self.timeout
        if self.use_deadlines and self.spec.tenants[a.tenant].deadline is not None:
            timeout = self.spec.tenants[a.tenant].deadline
        for req in a.requests:
            if req.think > 0:
                yield Timeout(req.think)
            rec = {
                "phase": phase,
                "tenant": a.tenant,
                "site": a.site,
                "klass": a.klass,
                "kind": req.kind,
                "expect_denied": req.denied,
                "issue": self.kernel.now,
                "done": None,
                "outcome": "pending",
            }
            self.records.append(rec)
            self.stats.calls_issued += 1
            yield from self._call(client, a, req, timeout, rec)
        if a.completed:
            self.sessions.completed += 1
        else:
            self.sessions.abandoned += 1

    def _pump(self):
        live = []
        self.t_base = self.kernel.now
        for tick in self.plan:
            for a in tick.arrivals:
                at = self.t_base + tick.t0 + a.offset
                if at > self.kernel.now:
                    yield Timeout(at - self.kernel.now)
                self.sessions.started += 1
                live.append(
                    self.kernel.spawn(
                        self._session(a, tick.phase),
                        name=f"scenario-session-{self.sessions.started}",
                    )
                )
        for fut in live:  # every session must run to disposition
            yield fut

    def start(self):
        """Spawn the arrival pump; future resolves with TrafficStats."""
        pump = self.kernel.spawn(self._pump(), name="scenario-pump")
        return pump.then(lambda _results: self.stats, name="scenario-stats")

    # ------------------------------------------------------------- summaries

    def outcome_counts(self) -> Dict[str, int]:
        counts = {"ok": 0, "shed": 0, "denied": 0, "failed": 0, "pending": 0}
        for rec in self.records:
            counts[rec["outcome"]] += 1
        return counts

    def phase_goodput(self) -> List[dict]:
        """Per-phase delivered goodput as a fraction of capacity."""
        windows: Dict[str, List[float]] = {}
        t0 = self.t_base or 0.0
        for phase in self.spec.phases:
            windows[phase.name] = [t0, t0 + phase.duration]
            t0 += phase.duration
        capacity = self.spec.capacity_per_ms()
        rows = []
        for name, (lo, hi) in windows.items():
            ok = [
                r
                for r in self.records
                if r["outcome"] == "ok" and lo <= r["issue"] < hi
            ]
            latencies = sorted(r["done"] - r["issue"] for r in ok)
            p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0
            goodput = len(ok) / ((hi - lo) * capacity) if capacity else 0.0
            rows.append(
                {
                    "phase": name,
                    "ok": len(ok),
                    "goodput_x": round(goodput, 4),
                    "p99": round(p99, 2),
                }
            )
        return rows


@dataclass
class ReplicaRouting:
    """State for the ``--replicas`` arm: one replica group per class.

    Reads and writes go through a per-client :class:`ReplicaSession`
    against the class's replicated store (locality-aware member
    selection picks the same-jurisdiction replica); compute kinds are
    recast as metadata reads of the hot key, since a replicated store
    exports no Work().
    """

    bindings: List[object]  # per-class replica-group binding
    consistency: str
    sessions: Dict[Tuple[int, int, int], object] = field(default_factory=dict)

    def session_for(self, driver: ScenarioDriver, client, a: Arrival):
        from repro.replication.policy import ReplicaSession

        key = (a.tenant, a.site, a.klass)
        if key not in self.sessions:
            self.sessions[key] = ReplicaSession(
                client.runtime, self.bindings[a.klass], self.consistency
            )
        return self.sessions[key]

    def invoke_via(self, driver: ScenarioDriver, client, a, req, timeout):
        session = self.session_for(driver, client, a)
        if req.kind == "write":
            yield from session.write(f"k{a.key}", a.key)
        else:
            yield from session.read(f"k{a.key}")
