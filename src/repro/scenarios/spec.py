"""Declarative scenario specs: the nouns of the workload language.

A :class:`ScenarioSpec` is a frozen description of *what the world does*
to a Legion deployment -- arrival processes on simulated time, session
lifecycles as seeded transition probabilities, target mixes (Zipf
hot-class skew, per-jurisdiction locality), per-tenant priority and
deadline, and a phase timeline -- with no reference to any backend.
``repro.scenarios.events`` compiles a spec into a backend-neutral event
stream; ``drive`` replays it through the rich-object runtime and
``mega`` through the columnar frame kernels.

Specs are data, so they can come from dictionaries (:func:`from_dict`)
and every constraint is checked up front by :func:`validate` with an
actionable error naming the offending path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.errors import LegionError

#: Request kinds the language knows; each maps to one application method
#: on :class:`repro.workloads.apps.ScenarioServiceImpl`.
REQUEST_KINDS = ("read", "write", "work", "batch", "privileged")

#: Arrival-process shapes.
ARRIVAL_KINDS = ("poisson", "diurnal", "flash")

#: Probability sums are checked to this tolerance.
_EPS = 1e-9


class ScenarioSpecError(LegionError):
    """A scenario spec failed validation; the message names the path."""


@dataclass(frozen=True)
class ArrivalSpec:
    """An arrival process on simulated time.

    ``rate`` is aggregate session arrivals per simulated ms across all
    sites.  ``diurnal`` modulates it with a sinusoid of ``period`` ms and
    relative ``amplitude``, phase-shifted per site by ``period/sites``
    (time-zone offsets); ``flash`` steps the rate up by ``surge_mult``
    for ``surge_duration`` ms starting ``surge_at`` ms into the phase.
    """

    kind: str = "poisson"
    rate: float = 0.5
    amplitude: float = 0.8
    period: float = 240.0
    surge_at: float = 0.0
    surge_duration: float = 0.0
    surge_mult: float = 1.0


@dataclass(frozen=True)
class SessionSpec:
    """A session-lifecycle state machine as seeded transition probabilities.

    Each arrived session issues a request, thinks ``think_time`` ms (an
    exponential mean), then continues with ``p_continue`` or abandons
    with ``p_abandon`` (they must sum to 1).  A session that reaches
    ``max_requests`` completes; one that stops earlier abandoned.
    """

    think_time: float = 8.0
    p_continue: float = 0.5
    p_abandon: float = 0.5
    max_requests: int = 4


@dataclass(frozen=True)
class TenantSpec:
    """One traffic population: relative weight, deadline, privilege."""

    name: str = "all"
    weight: float = 1.0
    deadline: Optional[float] = None
    privileged: bool = False


@dataclass(frozen=True)
class MixSpec:
    """Target mix: request kinds, Zipf hot-class skew, locality."""

    kinds: Mapping[str, float] = field(default_factory=lambda: {"work": 1.0})
    zipf_s: float = 0.0
    locality: float = 1.0


@dataclass(frozen=True)
class PhaseSpec:
    """One entry of the phase timeline: a named arrival+session regime."""

    name: str = "phase"
    duration: float = 200.0
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    session: SessionSpec = field(default_factory=SessionSpec)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario (see module docstring)."""

    name: str
    description: str = ""
    sites: int = 2
    n_classes: int = 2
    targets_per_site: int = 1
    service_time: float = 2.0
    read_time: float = 0.25
    batch_units: float = 3.0
    tick_ms: float = 20.0
    consistency: str = "primary-copy"
    checkpoint_restart: bool = False
    tenants: Tuple[TenantSpec, ...] = (TenantSpec(),)
    mix: MixSpec = field(default_factory=MixSpec)
    phases: Tuple[PhaseSpec, ...] = ()

    @property
    def duration(self) -> float:
        """Total timeline length in simulated ms."""
        return sum(p.duration for p in self.phases)

    @property
    def targets_total(self) -> int:
        """Instances in the deployment: classes x sites x targets/site."""
        return self.n_classes * self.sites * self.targets_per_site

    def capacity_per_ms(self) -> float:
        """Aggregate work units the deployment can serve per simulated ms."""
        return self.targets_total / self.service_time if self.service_time else 0.0


def _fail(path: str, message: str) -> None:
    raise ScenarioSpecError(f"{path}: {message}")


def _require(cond: bool, path: str, message: str) -> None:
    if not cond:
        _fail(path, message)


def _validate_arrival(a: ArrivalSpec, path: str) -> None:
    _require(
        a.kind in ARRIVAL_KINDS,
        f"{path}.kind",
        f"unknown arrival kind {a.kind!r}; expected one of {ARRIVAL_KINDS}",
    )
    _require(a.rate >= 0, f"{path}.rate", f"rate must be >= 0, got {a.rate}")
    if a.kind == "diurnal":
        _require(
            0.0 <= a.amplitude <= 1.0,
            f"{path}.amplitude",
            f"diurnal amplitude must be in [0, 1], got {a.amplitude}",
        )
        _require(a.period > 0, f"{path}.period", f"period must be > 0, got {a.period}")
    if a.kind == "flash":
        _require(
            a.surge_at >= 0,
            f"{path}.surge_at",
            f"surge_at must be >= 0, got {a.surge_at}",
        )
        _require(
            a.surge_duration >= 0,
            f"{path}.surge_duration",
            f"surge_duration must be >= 0, got {a.surge_duration}",
        )
        _require(
            a.surge_mult >= 1,
            f"{path}.surge_mult",
            f"surge_mult must be >= 1, got {a.surge_mult}",
        )


def _validate_session(s: SessionSpec, path: str) -> None:
    _require(
        s.think_time >= 0,
        f"{path}.think_time",
        f"think_time must be >= 0, got {s.think_time}",
    )
    for knob in ("p_continue", "p_abandon"):
        value = getattr(s, knob)
        _require(
            0.0 <= value <= 1.0,
            f"{path}.{knob}",
            f"probability must be in [0, 1], got {value}",
        )
    total = s.p_continue + s.p_abandon
    _require(
        abs(total - 1.0) <= _EPS,
        f"{path}.p_continue",
        f"p_continue + p_abandon must sum to 1, got {total}",
    )
    _require(
        s.max_requests >= 1,
        f"{path}.max_requests",
        f"max_requests must be >= 1, got {s.max_requests}",
    )


def validate(spec: ScenarioSpec) -> ScenarioSpec:
    """Check every constraint; return the spec or raise ScenarioSpecError."""
    _require(bool(spec.name), "name", "scenario name must be non-empty")
    _require(spec.sites >= 1, "sites", f"sites must be >= 1, got {spec.sites}")
    _require(
        spec.n_classes >= 1,
        "n_classes",
        f"n_classes must be >= 1, got {spec.n_classes}",
    )
    _require(
        spec.targets_per_site >= 1,
        "targets_per_site",
        f"targets_per_site must be >= 1, got {spec.targets_per_site}",
    )
    for knob in ("service_time", "read_time", "batch_units"):
        value = getattr(spec, knob)
        _require(value > 0, knob, f"{knob} must be > 0, got {value}")
    _require(
        spec.tick_ms > 0, "tick_ms", f"tick_ms must be > 0, got {spec.tick_ms}"
    )
    _require(bool(spec.tenants), "tenants", "at least one tenant is required")
    for i, tenant in enumerate(spec.tenants):
        _require(
            tenant.weight > 0,
            f"tenants[{i}].weight",
            f"weight must be > 0, got {tenant.weight}",
        )
        if tenant.deadline is not None:
            _require(
                tenant.deadline > 0,
                f"tenants[{i}].deadline",
                f"deadline must be > 0, got {tenant.deadline}",
            )
    names = [t.name for t in spec.tenants]
    _require(
        len(set(names)) == len(names),
        "tenants",
        f"tenant names must be unique, got {names}",
    )
    _require(bool(spec.mix.kinds), "mix.kinds", "at least one request kind")
    for kind in spec.mix.kinds:
        _require(
            kind in REQUEST_KINDS,
            f"mix.kinds[{kind!r}]",
            f"unknown request kind; expected one of {REQUEST_KINDS}",
        )
    for kind, weight in spec.mix.kinds.items():
        _require(
            weight >= 0,
            f"mix.kinds[{kind!r}]",
            f"kind weight must be >= 0, got {weight}",
        )
    total = sum(spec.mix.kinds.values())
    _require(
        abs(total - 1.0) <= _EPS,
        "mix.kinds",
        f"kind weights must sum to 1, got {total}",
    )
    _require(
        spec.mix.zipf_s >= 0,
        "mix.zipf_s",
        f"zipf exponent must be >= 0, got {spec.mix.zipf_s}",
    )
    _require(
        0.0 <= spec.mix.locality <= 1.0,
        "mix.locality",
        f"locality must be in [0, 1], got {spec.mix.locality}",
    )
    _require(bool(spec.phases), "phases", "at least one phase is required")
    for i, phase in enumerate(spec.phases):
        path = f"phases[{i}]"
        _require(bool(phase.name), f"{path}.name", "phase name must be non-empty")
        _require(
            phase.duration > 0,
            f"{path}.duration",
            f"duration must be > 0, got {phase.duration}",
        )
        _validate_arrival(phase.arrival, f"{path}.arrival")
        _validate_session(phase.session, f"{path}.session")
    return spec


_NESTED = {
    "arrival": ArrivalSpec,
    "session": SessionSpec,
    "mix": MixSpec,
}


def _build(dc_type, data: Any, path: str):
    """One dataclass from a mapping, rejecting unknown keys by name."""
    if is_dataclass(dc_type) and isinstance(data, dc_type):
        return data
    if not isinstance(data, Mapping):
        _fail(path, f"expected a mapping for {dc_type.__name__}, got {type(data).__name__}")
    known = {f.name for f in fields(dc_type)}
    unknown = sorted(set(data) - known)
    if unknown:
        _fail(
            path,
            f"unknown key {unknown[0]!r}; expected one of {sorted(known)}",
        )
    kwargs = {}
    for key, value in data.items():
        sub = f"{path}.{key}" if path else key
        if key in _NESTED:
            kwargs[key] = _build(_NESTED[key], value, sub)
        elif key == "tenants":
            kwargs[key] = tuple(
                _build(TenantSpec, t, f"{sub}[{i}]") for i, t in enumerate(value)
            )
        elif key == "phases":
            kwargs[key] = tuple(
                _build(PhaseSpec, p, f"{sub}[{i}]") for i, p in enumerate(value)
            )
        elif key == "kinds":
            kwargs[key] = dict(value)
        else:
            kwargs[key] = value
    try:
        return dc_type(**kwargs)
    except TypeError as exc:  # e.g. a missing required field like name
        _fail(path or dc_type.__name__, str(exc))


def from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Build and validate a ScenarioSpec from nested dictionaries.

    Unknown keys raise :class:`ScenarioSpecError` naming the valid ones,
    so a typo like ``durration`` fails loudly at load time rather than
    silently falling back to a default.
    """
    return validate(_build(ScenarioSpec, data, ""))
