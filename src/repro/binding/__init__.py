"""Binding Agents and the binding mechanism (sections 3.6, 4.1).

* :class:`BindingAgentImpl` -- "a Binding Agent acts on behalf of other
  Legion objects to bind LOIDs to Object Addresses", exporting the
  paper's GetBinding / InvalidateBinding / AddBinding member functions
  (Fig. 15), with a cache, an optional parent agent (for hierarchies),
  and the class-object fallback.
* :mod:`repro.binding.resolver` -- the full resolution procedure of
  sections 4.1.2-4.1.3: locating the responsible class by LOID field
  surgery or via LegionClass's responsibility pairs, recursively, with
  caching at every step.
* :mod:`repro.binding.hierarchy` -- builders for k-ary combining trees of
  Binding Agents (section 5.2.2: "by constructing a k-ary tree of Binding
  Agents, eliminating traffic from 'leaf' Binding Agents to LegionClass,
  we can arbitrarily reduce the load placed on LegionClass").
"""

from repro.binding.agent import BindingAgentImpl
from repro.binding.hierarchy import build_agent_tree
from repro.binding.resolver import locate_class_binding, resolve_loid

__all__ = [
    "BindingAgentImpl",
    "build_agent_tree",
    "locate_class_binding",
    "resolve_loid",
]
