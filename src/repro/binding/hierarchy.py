"""Combining trees of Binding Agents (paper section 5.2.2, ref [9]).

"By constructing a k-ary tree of Binding Agents, eliminating traffic from
'leaf' Binding Agents to LegionClass, we can arbitrarily reduce the load
placed on LegionClass.  In essence, Binding Agents could be organized to
implement a software combining tree."

:func:`build_agent_tree` wires such a tree out of a caller-supplied spawn
function, so it works for any placement strategy (one agent per site, all
on one host, ...).  The root escalates to class objects; every other tier
escalates to its parent; clients attach to the leaves.  Cache hits at any
tier absorb ("combine") requests that would otherwise all reach
LegionClass and the class objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.naming.binding import Binding

#: spawn_agent(parent, level, index) -> Binding of the new agent.
SpawnAgent = Callable[[Optional[Binding], int, int], Binding]


@dataclass
class AgentTree:
    """The wired tree: leaves (client-facing) plus every tier for metrics."""

    root: Binding
    #: tiers[0] == [root]; tiers[-1] are the leaves.
    tiers: List[List[Binding]] = field(default_factory=list)

    @property
    def leaves(self) -> List[Binding]:
        """The agents clients should be attached to."""
        return self.tiers[-1]

    @property
    def agent_count(self) -> int:
        """Total agents in the tree."""
        return sum(len(tier) for tier in self.tiers)

    @property
    def depth(self) -> int:
        """Number of tiers (1 == a single root agent, no tree)."""
        return len(self.tiers)


def build_agent_tree(spawn_agent: SpawnAgent, leaf_count: int, fanout: int) -> AgentTree:
    """Build a k-ary combining tree with at least ``leaf_count`` leaves.

    ``fanout`` is k.  With ``fanout <= 1`` or ``leaf_count == 1`` the
    "tree" degenerates to a single root agent (the flat configuration the
    E3 experiment compares against is many *independent* root agents,
    built by calling ``spawn_agent(None, ...)`` directly).

    Tiers are built top-down; each tier has ``fanout`` times the agents of
    the one above, stopping once a tier can serve ``leaf_count`` leaves.
    Children are distributed round-robin over the tier above, so every
    leaf's escalation path has the same length.
    """
    if leaf_count < 1:
        raise ValueError(f"leaf_count must be >= 1, got {leaf_count}")
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")

    root = spawn_agent(None, 0, 0)
    tiers: List[List[Binding]] = [[root]]
    if fanout == 1 or leaf_count == 1:
        return AgentTree(root=root, tiers=tiers)

    while len(tiers[-1]) < leaf_count:
        parents = tiers[-1]
        width = min(len(parents) * fanout, leaf_count)
        level = len(tiers)
        tier = [
            spawn_agent(parents[i % len(parents)], level, i) for i in range(width)
        ]
        tiers.append(tier)
        if width == leaf_count:
            break
    return AgentTree(root=root, tiers=tiers)
