"""The full binding-resolution procedure (paper sections 4.1.2-4.1.3).

Given a LOID, produce a Binding, using only the mechanisms the paper
defines:

1. **Find the responsible class.**  For a non-class object this is LOID
   field surgery -- "the LOID of the responsible class can be determined
   by setting the Class Identifier field to match that of N, and by
   setting the Class Specific field to zero."  For a class object,
   LegionClass's responsibility pairs answer: "the existence of pair
   <X,Y> indicates that X is responsible for locating Y."
2. **Find the responsible class's own binding** -- recursively, by the
   same procedure; the recursion terminates at LegionClass, whose binding
   every object knows (it is seeded at activation, the simulated analogue
   of a well-known address), or at a class LegionClass is directly
   responsible for ("LegionClass simply hands out the appropriate
   binding").
3. **Ask the responsible class** -- GetBinding(LOID) on the class, which
   consults its logical table and may Activate() an Inert object.

Every binding discovered along the way is cached in the caller's runtime
cache, which is precisely the paper's scalability lever: "extensive
caching of both bindings and 'responsibility pairs' ensures that the vast
majority of accesses occurs locally."

These generators run inside any object's simulation process; Binding
Agents use them, but so can tests driving the procedure directly.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import BindingNotFound
from repro.core.runtime import LegionRuntime
from repro.naming.binding import Binding
from repro.naming.loid import LOID
from repro.security.environment import CallEnvironment


def locate_class_binding(runtime: LegionRuntime, class_loid: LOID, env: CallEnvironment):
    """Find the binding of a *class* object (section 4.1.3).

    Recursive walk up the responsibility chain, terminating at
    LegionClass.  Every step's result lands in ``runtime.cache``.
    """
    services = runtime.services
    legion_class = services.well_known_loid("LegionClass")

    cached = runtime.lookup_binding(class_loid)
    if cached is not None:
        return cached

    tracer = services.tracer
    if tracer is not None and tracer.active:
        # One zero-duration span per rung of the responsibility chain;
        # the trace shows exactly how deep 4.1.3's recursion went.
        tracer.instant(
            "responsibility walk",
            "resolve",
            parent=env.trace,
            target=str(class_loid),
        )

    if class_loid.identity == legion_class.identity:
        # LegionClass's own binding is seeded at activation; if it is
        # somehow missing, nothing below can work either.
        raise BindingNotFound(
            "LegionClass binding missing from cache (bootstrap incomplete?)",
            loid=class_loid,
        )

    responsible: LOID = yield from runtime.invoke(
        legion_class, "LocateResponsible", class_loid, env=env
    )
    if responsible.identity == legion_class.identity:
        binding: Binding = yield from runtime.invoke(
            legion_class, "GetCoreBinding", class_loid, env=env
        )
    else:
        # Make sure we can reach the responsible class, then ask it.
        yield from locate_class_binding(runtime, responsible, env)
        binding = yield from runtime.invoke(
            responsible, "GetBinding", class_loid, env=env
        )
    runtime.cache.insert(binding)
    return binding


def resolve_loid(runtime: LegionRuntime, query, env: CallEnvironment):
    """Resolve a LOID (or refresh a stale Binding) via the class mechanism.

    ``query`` is a LOID, or a Binding the caller found to be stale --
    the GetBinding(binding) overload of section 3.6.  Returns a Binding.
    """
    services = runtime.services
    stale: Optional[Binding] = None
    if isinstance(query, Binding):
        stale = query
        loid = query.loid
        # Drop any identical cached copy: the caller just proved it dead.
        runtime.cache.invalidate_exact(stale)
    else:
        loid = query

    cached = runtime.lookup_binding(loid)
    if cached is not None and (stale is None or cached != stale):
        return cached

    if loid.is_class:
        if stale is not None:
            # Our cached copy may be the same stale one; force a re-ask of
            # the responsible class rather than re-serving the cache.
            runtime.cache.invalidate(loid)
        binding = yield from locate_class_binding(runtime, loid, env)
        if stale is not None and binding == stale:
            # The responsible class still believes the stale address;
            # tell it explicitly by passing the stale binding through.
            legion_class = services.well_known_loid("LegionClass")
            responsible = yield from runtime.invoke(
                legion_class, "LocateResponsible", loid, env=env
            )
            binding = yield from runtime.invoke(
                responsible, "GetBinding", stale, env=env
            )
            runtime.cache.insert(binding)
        return binding

    # Non-class object: field surgery gives the responsible class.
    class_id, _zero = loid.class_identity()
    responsible = LOID.for_class(class_id, services.secret)
    tracer = services.tracer
    if tracer is not None and tracer.active:
        tracer.annotate(env.trace, responsible=str(responsible))
    yield from locate_class_binding(runtime, responsible, env)
    ask = stale if stale is not None else loid
    binding = yield from runtime.invoke(responsible, "GetBinding", ask, env=env)
    runtime.cache.insert(binding)
    return binding
