"""BindingAgentImpl: the LegionBindingAgent implementation (section 3.6).

"A typical Binding Agent maintains a cache of bindings, and responds to
member function calls to add, return, and invalidate bindings." (Fig. 15)

Member functions (the paper's exact set):

* ``GetBinding(LOID)`` / ``GetBinding(binding)`` -- the overloads share a
  name and arity, so one method accepts either; a Binding argument means
  "this one is stale, refresh it".
* ``InvalidateBinding(LOID)`` / ``InvalidateBinding(binding)`` -- remove a
  cached binding (by LOID, or only on exact match).
* ``AddBinding(binding)`` -- explicit propagation "for performance
  purposes".

On a cache miss the agent escalates, in the order the paper describes:
to its **parent agent** if it is part of a hierarchy ("the Binding Agent
may consult other Binding Agents, which may be organized in a hierarchy to
allow the binding process to scale"), otherwise to the **class of the
object** via the full resolver ("if all else fails, the Binding Agent can
consult the class of the object which must be able to return a binding if
one exists").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.binding.resolver import resolve_loid
from repro.core.method import InvocationContext
from repro.core.object_base import LegionObjectImpl, legion_method
from repro.errors import BindingNotFound, DeliveryFailure
from repro.naming.binding import Binding


@dataclass
class AgentStats:
    """Service-level counters (distinct from the plumbing cache stats)."""

    served: int = 0
    cache_hits: int = 0
    parent_escalations: int = 0
    class_escalations: int = 0
    refreshes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of GetBinding requests answered from the local cache."""
        return self.cache_hits / self.served if self.served else 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self.served = self.cache_hits = 0
        self.parent_escalations = self.class_escalations = self.refreshes = 0


class BindingAgentImpl(LegionObjectImpl):
    """A Binding Agent.  See module docstring."""

    def __init__(self, parent: Optional[Binding] = None) -> None:
        #: The next tier of a combining tree, or None for a root agent
        #: that escalates to class objects directly.
        self.parent = parent
        self.agent_stats = AgentStats()

    def on_activated(self) -> None:
        if self.parent is not None:
            self.runtime.seed_binding(self.parent)
        # Flow control (repro.flow): GetBinding escalations are idempotent
        # metadata reads, so child queries missing the cache inside one
        # batch window coalesce into a single upstream message -- the
        # combining tree made real on the data plane.  No-op without a
        # FlowConfig batch window.
        self.runtime.enable_batching("GetBinding")

    # The agent's cache *is* its runtime's cache: one binding cache per
    # Legion object, exactly as the paper draws it.  The server gives
    # binding agents a large cache via bootstrap configuration.

    def _trace_note(self, ctx: Optional[InvocationContext], **kv) -> None:
        """Annotate the enclosing dispatch span (how was this query served?)."""
        tracer = self.services.tracer
        if tracer is not None and ctx is not None:
            tracer.annotate(ctx.env.trace, **kv)

    @legion_method("binding GetBinding(query)")
    def get_binding(self, query, *, ctx: Optional[InvocationContext] = None):
        """Bind a LOID to an Object Address (or refresh a stale binding)."""
        self.agent_stats.served += 1
        stale: Optional[Binding] = None
        if isinstance(query, Binding):
            stale = query
            self.agent_stats.refreshes += 1
            loid = query.loid
            self.runtime.cache.invalidate_exact(stale)
        else:
            loid = query

        cached = self.runtime.cache.lookup(loid, self.services.kernel.now)
        if cached is not None and (stale is None or cached != stale):
            self.agent_stats.cache_hits += 1
            self._trace_note(ctx, cache="hit")
            return cached
        if cached is not None and stale is not None and cached == stale:
            self.runtime.cache.invalidate(loid)

        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        try:
            if self.parent is not None:
                self.agent_stats.parent_escalations += 1
                self._trace_note(ctx, cache="miss", escalated="parent")
                binding = yield from self.runtime.invoke(
                    self.parent.loid, "GetBinding", query, env=env
                )
                self.runtime.cache.insert(binding)
                return binding

            self.agent_stats.class_escalations += 1
            self._trace_note(ctx, cache="miss", escalated="class")
            binding = yield from resolve_loid(self.runtime, query, env)
            return binding
        except DeliveryFailure as exc:
            # The escalation path (parent agent, class, magistrate) is cut
            # off -- partitioned, lossy, or mid-crash.  That is a *naming*
            # outcome for the caller: "no binding right now", not a raw
            # transport error from some inner hop it never talked to.
            # Callers with a patient RetryPolicy re-ask after a backoff.
            raise BindingNotFound(
                f"binding walk for {loid} failed: {exc}", loid=loid
            ) from exc

    @legion_method("InvalidateBinding(query)")
    def invalidate_binding(self, query) -> None:
        """Remove a binding from the cache (both paper overloads).

        A LOID removes whatever is cached for it; a Binding removes the
        entry only on exact match (so a newer refresh survives).
        """
        if isinstance(query, Binding):
            self.runtime.cache.invalidate_exact(query)
        else:
            self.runtime.cache.invalidate(query)

    @legion_method("AddBinding(binding)")
    def add_binding(self, binding: Binding) -> None:
        """Explicitly propagate a binding into this agent's cache."""
        self.runtime.cache.insert(binding)

    @legion_method("int CacheSize()")
    def cache_size(self) -> int:
        """Number of bindings currently cached (monitoring)."""
        return len(self.runtime.cache)

    def handle_event(self, payload, source) -> None:
        """Invalidation news from subscribed classes (section 4.1.4).

        One-way EVENTs: ``("invalidate", loid)`` drops the cached binding,
        ``("add-binding", binding)`` pre-loads the fresh one -- so clients
        that come asking after a migration get the new address without a
        class round-trip.
        """
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return
        kind, body = payload
        if kind == "invalidate":
            self.runtime.cache.invalidate(body)
        elif kind == "add-binding" and isinstance(body, Binding):
            self.runtime.cache.insert(body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tier = "leaf" if self.parent is not None else "root"
        return f"<BindingAgentImpl {self.loid} {tier} served={self.agent_stats.served}>"
