"""Scheduling Agent implementations (the hooks of sections 3.7-3.8).

A Scheduling Agent answers ``ChooseMagistrate(class, candidates)``:
given the class asking and its Candidate Magistrate List (None meaning
"no restriction", in which case the agent falls back to the magistrates
it knows about), return the magistrate that should receive the next
Create()/Derive().  Policies differ in how they pick.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import LegionError, SchedulingError
from repro.core.method import InvocationContext
from repro.core.object_base import LegionObjectImpl, legion_method
from repro.naming.loid import LOID


class SchedulingAgentImpl(LegionObjectImpl):
    """Base Scheduling Agent: knows a pool of magistrates, picks per policy."""

    def __init__(self, magistrates: Optional[List[LOID]] = None) -> None:
        #: The magistrates this agent may place objects on when the asking
        #: class has no candidate restriction.
        self.magistrates: List[LOID] = list(magistrates or [])

    @legion_method("AddMagistrate(LOID)")
    def add_magistrate(self, magistrate: LOID) -> None:
        """Extend the pool (e.g. when a jurisdiction splits, section 2.2)."""
        if magistrate not in self.magistrates:
            self.magistrates.append(magistrate)

    def _pool(self, candidates: Optional[List[LOID]]) -> List[LOID]:
        pool = candidates if candidates is not None else self.magistrates
        if not pool:
            raise SchedulingError("scheduling agent has no magistrates to choose from")
        return pool

    @legion_method("LOID ChooseMagistrate(LOID, list)")
    def choose_magistrate(
        self,
        asking_class: LOID,
        candidates: Optional[List[LOID]],
        *,
        ctx: Optional[InvocationContext] = None,
    ):
        """Pick the magistrate for the asking class's next creation."""
        raise SchedulingError(
            f"{type(self).__name__} does not implement a choice policy"
        )


class RoundRobinSchedulingAgent(SchedulingAgentImpl):
    """Cycle through the pool; even spread regardless of load."""

    def __init__(self, magistrates: Optional[List[LOID]] = None) -> None:
        super().__init__(magistrates)
        self._next = 0

    def choose_magistrate(self, asking_class, candidates, *, ctx=None):
        pool = self._pool(candidates)
        choice = pool[self._next % len(pool)]
        self._next += 1
        return choice


class RandomSchedulingAgent(SchedulingAgentImpl):
    """Uniform random choice; stateless and contention-free."""

    def choose_magistrate(self, asking_class, candidates, *, ctx=None):
        pool = self._pool(candidates)
        rng = self.services.rng.stream("scheduling-random")
        return pool[rng.randrange(len(pool))]


class StaticSchedulingAgent(SchedulingAgentImpl):
    """Pin every class to one magistrate (per-class overrides allowed).

    Models a site that wants all of its objects under its own magistrate
    (the autonomy posture of section 2.2).
    """

    def __init__(self, default: LOID, per_class: Optional[dict] = None) -> None:
        super().__init__([default])
        self.default = default
        self.per_class = dict(per_class or {})

    def choose_magistrate(self, asking_class, candidates, *, ctx=None):
        choice = self.per_class.get(asking_class.identity, self.default)
        if candidates is not None and choice not in candidates:
            raise SchedulingError(
                f"pinned magistrate {choice} is not a candidate for {asking_class}"
            )
        return choice


class LeastLoadedSchedulingAgent(SchedulingAgentImpl):
    """Query each candidate's ManagedCount() and pick the smallest.

    The expensive-but-balanced policy: exercises the paper's intent that
    scheduling logic lives in agents and drives magistrates through their
    exported primitives.
    """

    def choose_magistrate(self, asking_class, candidates, *, ctx=None):
        pool = self._pool(candidates)
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        best: Optional[LOID] = None
        best_count = None
        for magistrate in pool:
            count = yield from self.runtime.invoke(
                magistrate, "ManagedCount", env=env
            )
            if best_count is None or count < best_count:
                best_count = count
                best = magistrate
        return best


class LeastLoadedPlacementAgent(LeastLoadedSchedulingAgent):
    """Placement down to the host level, for autoscaler clone spawns.

    ``ChoosePlacement`` composes the magistrate choice with a probe of
    each of that magistrate's hosts: pick the accepting host with the
    most free process slots (ties broken by enumeration order, which is
    deterministic).  Returns ``(magistrate, host_or_None)``; ``None``
    means "let the magistrate place it" (every probe failed).
    """

    @legion_method("pair ChoosePlacement(LOID, list)")
    def choose_placement(
        self,
        asking_class: LOID,
        candidates: Optional[List[LOID]],
        *,
        ctx: Optional[InvocationContext] = None,
    ):
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        magistrate = yield from self.choose_magistrate(asking_class, candidates, ctx=ctx)
        hosts = yield from self.runtime.invoke(magistrate, "GetHosts", env=env)
        best_host: Optional[LOID] = None
        best_free = None
        for host in hosts:
            try:
                state = yield from self.runtime.invoke(host, "GetState", env=env)
            except LegionError:
                continue  # dead or unreachable host: not a placement target
            if not state.accepting:
                continue
            if best_free is None or state.free_slots > best_free:
                best_free = state.free_slots
                best_host = host
        return (magistrate, best_host)
