"""Scheduling Agents: the scheduling hooks of the core model.

"Scheduling is intentionally left out of the core object model, except for
a few 'hooks' ... that allow other Legion objects to suggest scheduling
policies to Magistrates."  (section 3.7)  "Complex scheduling policies are
intended to be implemented outside of the Magistrate in Scheduling Agents.
The Scheduling Agents will implement their policies by making calls on the
primitive scheduling functions exported by the Magistrates." (section 3.8)

:class:`SchedulingAgentImpl` is the base; the shipped policies cover the
obvious space (round-robin, random, static pinning, least-loaded).  A
class object configured with a scheduling agent consults it on every
Create()/Derive() to pick the target magistrate.
"""

from repro.scheduling.agent import (
    LeastLoadedSchedulingAgent,
    RandomSchedulingAgent,
    RoundRobinSchedulingAgent,
    SchedulingAgentImpl,
    StaticSchedulingAgent,
)

__all__ = [
    "SchedulingAgentImpl",
    "RoundRobinSchedulingAgent",
    "RandomSchedulingAgent",
    "StaticSchedulingAgent",
    "LeastLoadedSchedulingAgent",
]
