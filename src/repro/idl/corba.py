"""CORBA-flavoured IDL support.

The paper (section 2, footnote): "At least two different IDLs will be
supported by Legion: the CORBA IDL Interface Definition Language, and the
Mentat Programming Language (MPL)."  The default parser
(:mod:`repro.idl.parser`) covers the paper's own MPL-ish signature style;
this module accepts the CORBA IDL subset that maps onto Legion method
signatures:

* ``void`` return → no return value;
* parameter direction keywords ``in`` / ``out`` / ``inout`` (recorded by
  convention in the parameter name prefix for out/inout, since Legion's
  invocation model returns results in the reply);
* CORBA basic types normalised to the neutral names the rest of the
  system uses (``long``/``short``/``unsigned long`` → int, ``double`` /
  ``float`` → float, ``boolean`` → bool, ``string`` → string, ``octet`` /
  ``any`` kept as-is);
* ``readonly attribute T name`` → a ``GetName()`` accessor, and a
  writable ``attribute`` additionally yields ``SetName(T)``;
* an optional trailing ``;`` after the interface block (CORBA style).

The output is an ordinary :class:`~repro.idl.interface.Interface`,
indistinguishable from one built with the default IDL -- which is the
point: two front-ends, one object model.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import InterfaceError
from repro.idl.interface import Interface
from repro.idl.signature import MethodSignature, Parameter

_TOKEN = re.compile(
    r"\s*(?:(//[^\n]*|/\*.*?\*/)|([A-Za-z_][A-Za-z0-9_]*)|([{}();,]))", re.DOTALL
)

#: CORBA basic type → neutral type name.
_TYPE_MAP = {
    "long": "int",
    "short": "int",
    "unsigned": "int",  # 'unsigned long' / 'unsigned short' collapse
    "double": "float",
    "float": "float",
    "boolean": "bool",
    "string": "string",
    "wstring": "string",
    "char": "string",
    "octet": "octet",
    "any": "any",
    "void": None,
}

_DIRECTIONS = {"in", "out", "inout"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise InterfaceError(f"CORBA IDL syntax error near {remainder[:20]!r}")
        comment, ident, punct = match.groups()
        if ident:
            tokens.append(ident)
        elif punct:
            tokens.append(punct)
        pos = match.end()
    return tokens


class _Cursor:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.i = 0

    def peek(self) -> str:
        if self.i >= len(self.tokens):
            raise InterfaceError("unexpected end of CORBA IDL input")
        return self.tokens[self.i]

    def next(self) -> str:
        token = self.peek()
        self.i += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise InterfaceError(f"expected {token!r}, got {got!r}")

    def done(self) -> bool:
        return self.i >= len(self.tokens)


def _normalise_type(cur: _Cursor) -> Optional[str]:
    """Consume one (possibly two-word) CORBA type; return the neutral name."""
    first = cur.next()
    if first == "unsigned":
        follow = cur.peek()
        if follow in ("long", "short"):
            cur.next()
        return "int"
    if first in _TYPE_MAP:
        return _TYPE_MAP[first]
    return first  # user-defined type name passes through


def _parse_params(cur: _Cursor) -> Tuple[Parameter, ...]:
    cur.expect("(")
    params: List[Parameter] = []
    if cur.peek() == ")":
        cur.next()
        return tuple(params)
    while True:
        direction = "in"
        if cur.peek() in _DIRECTIONS:
            direction = cur.next()
        type_name = _normalise_type(cur)
        if type_name is None:
            raise InterfaceError("void is not a parameter type")
        name = ""
        if cur.peek() not in (",", ")"):
            name = cur.next()
        if direction != "in" and name:
            name = f"{direction}_{name}"
        params.append(Parameter(type_name=type_name, name=name))
        token = cur.next()
        if token == ")":
            return tuple(params)
        if token != ",":
            raise InterfaceError(f"expected ',' or ')', got {token!r}")


def _attribute_signatures(cur: _Cursor, readonly: bool) -> List[MethodSignature]:
    type_name = _normalise_type(cur)
    if type_name is None:
        raise InterfaceError("void is not an attribute type")
    name = cur.next()
    accessor = "Get" + name[0].upper() + name[1:]
    out = [MethodSignature(name=accessor, parameters=(), returns=type_name)]
    if not readonly:
        mutator = "Set" + name[0].upper() + name[1:]
        out.append(
            MethodSignature(
                name=mutator,
                parameters=(Parameter(type_name=type_name, name=name),),
                returns=None,
            )
        )
    return out


def parse_corba_interface(text: str) -> Interface:
    """Parse a CORBA IDL ``interface`` block into an Interface."""
    cur = _Cursor(_tokenize(text))
    cur.expect("interface")
    name = cur.next()
    cur.expect("{")
    signatures: List[MethodSignature] = []
    while cur.peek() != "}":
        if cur.peek() == "readonly":
            cur.next()
            cur.expect("attribute")
            signatures.extend(_attribute_signatures(cur, readonly=True))
        elif cur.peek() == "attribute":
            cur.next()
            signatures.extend(_attribute_signatures(cur, readonly=False))
        else:
            returns = _normalise_type(cur)
            method = cur.next()
            signatures.append(
                MethodSignature(
                    name=method, parameters=_parse_params(cur), returns=returns
                )
            )
        cur.expect(";")
    cur.expect("}")
    if not cur.done() and cur.peek() == ";":
        cur.next()
    if not cur.done():
        raise InterfaceError(f"trailing tokens: {cur.tokens[cur.i:]}")
    return Interface(signatures, name=name)
