"""Method signatures: the unit an interface is made of (paper section 2).

A signature is a return type, a method name, and an ordered parameter
list.  Legion methods are invoked by name across the network; overloading
by arity is allowed (the paper itself overloads ``GetBinding(LOID)`` /
``GetBinding(binding)`` and ``Activate(LOID)`` / ``Activate(LOID,LOID)``),
so a signature's identity is the ``(name, parameter types)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import InterfaceError

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _check_ident(name: str, what: str) -> None:
    if not name or name[0].isdigit() or any(c not in _IDENT_OK for c in name):
        raise InterfaceError(f"invalid {what} {name!r}")


@dataclass(frozen=True, order=True)
class Parameter:
    """One formal parameter: a type name and an optional parameter name."""

    type_name: str
    name: str = ""

    def __post_init__(self) -> None:
        _check_ident(self.type_name, "parameter type")
        if self.name:
            _check_ident(self.name, "parameter name")

    def __str__(self) -> str:
        return f"{self.type_name} {self.name}".strip()


@dataclass(frozen=True, order=True)
class MethodSignature:
    """A single method signature.

    ``returns`` may be None for methods with no return value (the paper
    writes these with no return type, e.g. ``Deactivate(LOID)``).
    """

    name: str
    parameters: Tuple[Parameter, ...] = ()
    returns: Optional[str] = None

    def __post_init__(self) -> None:
        _check_ident(self.name, "method name")
        if self.returns is not None:
            _check_ident(self.returns, "return type")
        if not isinstance(self.parameters, tuple):
            object.__setattr__(self, "parameters", tuple(self.parameters))

    @property
    def key(self) -> Tuple[str, Tuple[str, ...]]:
        """Identity under overloading: name + parameter type names."""
        return (self.name, tuple(p.type_name for p in self.parameters))

    @property
    def arity(self) -> int:
        """Number of formal parameters."""
        return len(self.parameters)

    def compatible_with(self, other: "MethodSignature") -> bool:
        """Same key AND same return type: substitutable implementations."""
        return self.key == other.key and self.returns == other.returns

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        prefix = f"{self.returns} " if self.returns else ""
        return f"{prefix}{self.name}({params})"

    @classmethod
    def simple(cls, name: str, *param_types: str, returns: Optional[str] = None) -> "MethodSignature":
        """Shorthand: ``MethodSignature.simple("GetBinding", "LOID", returns="binding")``."""
        return cls(
            name=name,
            parameters=tuple(Parameter(t) for t in param_types),
            returns=returns,
        )
