"""Interfaces: named sets of method signatures, with merge and conformance.

An object's interface "fully describes" it (paper section 2) and is
inherited from its class.  Two operations matter for the object model:

* **merge** -- InheritFrom() "causes B's member functions to be added to
  C's interface" (section 2.1.1); merging rejects *conflicts* (same name
  and parameter types but different return type), which is the only
  ambiguity our overload-by-arity dispatch cannot tolerate.
* **conformance** -- a clone of a hot class must expose the same interface
  "without changing the interface in any way" (section 5.2.2); replica
  groups likewise require member interfaces to conform.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import InterfaceError
from repro.idl.signature import MethodSignature


class Interface:
    """An immutable-by-convention set of method signatures.

    Signatures are keyed by ``(name, parameter types)`` so overloads
    coexist; lookup helpers support dispatch by name + arity, which is how
    the runtime routes an incoming MethodInvocation.
    """

    def __init__(self, signatures: Iterable[MethodSignature] = (), name: str = "") -> None:
        self.name = name
        self._by_key: Dict[Tuple[str, Tuple[str, ...]], MethodSignature] = {}
        for sig in signatures:
            self._add(sig)

    def _add(self, sig: MethodSignature) -> None:
        existing = self._by_key.get(sig.key)
        if existing is not None and existing.returns != sig.returns:
            raise InterfaceError(
                f"conflicting signatures for {sig.name}: "
                f"{existing} vs {sig} (same parameters, different return)"
            )
        self._by_key[sig.key] = sig

    # -- queries -----------------------------------------------------------

    def methods(self) -> Tuple[MethodSignature, ...]:
        """All signatures, sorted for deterministic iteration."""
        return tuple(sorted(self._by_key.values()))

    def names(self) -> Tuple[str, ...]:
        """Distinct method names, sorted."""
        return tuple(sorted({s.name for s in self._by_key.values()}))

    def has_method(self, name: str, arity: Optional[int] = None) -> bool:
        """Whether any overload of ``name`` (optionally of ``arity``) exists.

        Unlike :meth:`find`, multiple matching overloads are fine here --
        the question is existence, not dispatch.
        """
        return any(
            s.name == name and (arity is None or s.arity == arity)
            for s in self._by_key.values()
        )

    def find(self, name: str, arity: Optional[int] = None) -> Optional[MethodSignature]:
        """The unique signature for ``name`` (and ``arity`` if given).

        Returns None if absent; raises :class:`InterfaceError` when the
        request is ambiguous (multiple overloads match), since dispatch
        would be undefined.
        """
        matches = [
            s
            for s in self._by_key.values()
            if s.name == name and (arity is None or s.arity == arity)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            raise InterfaceError(
                f"ambiguous lookup {name}/{arity if arity is not None else '*'}: "
                + "; ".join(str(m) for m in sorted(matches))
            )
        return matches[0]

    # -- set algebra -----------------------------------------------------------

    def merged_with(self, other: "Interface", name: str = "") -> "Interface":
        """A new interface containing both sets of signatures.

        This is the InheritFrom() operation on interfaces.  Identical
        signatures coalesce; same-key different-return conflicts raise.
        """
        out = Interface(name=name or self.name)
        for sig in self._by_key.values():
            out._add(sig)
        for sig in other._by_key.values():
            out._add(sig)
        return out

    def restricted_to(self, names: Iterable[str], name: str = "") -> "Interface":
        """A new interface keeping only the given method names.

        Supports the paper's footnote that "Legion may allow a class to
        select the components that it wishes to inherit".
        """
        keep = set(names)
        return Interface(
            (s for s in self._by_key.values() if s.name in keep),
            name=name or self.name,
        )

    def conforms_to(self, other: "Interface") -> bool:
        """True when this interface offers *at least* everything in ``other``.

        Every signature of ``other`` must be present here with a compatible
        return type; extra methods are allowed (a subclass conforms to its
        superclass's interface).
        """
        for key, sig in other._by_key.items():
            mine = self._by_key.get(key)
            if mine is None or not mine.compatible_with(sig):
                return False
        return True

    def equivalent_to(self, other: "Interface") -> bool:
        """Mutual conformance: identical method sets (names may differ)."""
        return self.conforms_to(other) and other.conforms_to(self)

    def missing_from(self, other: "Interface") -> List[MethodSignature]:
        """Signatures of ``other`` that this interface lacks (diagnostics)."""
        return sorted(
            sig
            for key, sig in other._by_key.items()
            if key not in self._by_key
            or not self._by_key[key].compatible_with(sig)
        )

    # -- protocol -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[MethodSignature]:
        return iter(self.methods())

    def __contains__(self, name: str) -> bool:
        return any(s.name == name for s in self._by_key.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interface):
            return NotImplemented
        return self._by_key == other._by_key

    def __hash__(self) -> int:
        return hash(frozenset(self._by_key.items()))

    def describe(self) -> str:
        """IDL text for this interface (re-parseable by the parser)."""
        header = f"interface {self.name or 'Anonymous'} {{"
        body = "".join(f"\n  {sig};" for sig in self.methods())
        return header + body + "\n}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interface {self.name or '?'} methods={len(self)}>"
