"""Interface description: signatures, interfaces, and a small IDL parser.

"Each method has a signature that describes the parameters and return
value, if any, of the method.  The complete set of method signatures for an
object fully describes that object's interface, which is inherited from its
class.  Legion class interfaces can be described in an Interface
Description Language." (paper section 2)

The paper says Legion will support at least two IDLs (CORBA IDL and MPL);
this reproduction ships one small C-flavoured IDL whose grammar covers the
signatures the paper itself writes, e.g. ``binding GetBinding(LOID)`` and
``binding Activate(LOID, LOID)``.  Interfaces are value objects supporting
the *merge* operation that InheritFrom() needs and the *conformance* check
that lets a clone replace a hot class "without changing the interface in
any way" (section 5.2.2).
"""

from repro.idl.signature import MethodSignature, Parameter
from repro.idl.interface import Interface
from repro.idl.parser import parse_interface, parse_signature
from repro.idl.corba import parse_corba_interface

__all__ = [
    "MethodSignature",
    "Parameter",
    "Interface",
    "parse_interface",
    "parse_signature",
    "parse_corba_interface",
]
