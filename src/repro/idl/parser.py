"""A small IDL parser for the signatures the paper writes.

Grammar (whitespace-insensitive, ``//`` line comments)::

    interface  := "interface" IDENT "{" (signature ";")* "}"
    signature  := [IDENT] IDENT "(" [param ("," param)*] ")"
    param      := IDENT [IDENT]

i.e. an optional return type, a method name, and a parenthesised parameter
list of ``type [name]`` pairs -- exactly the style of the paper's own
member-function lists: ``binding GetBinding(LOID)``, ``Deactivate(LOID)``,
``binding Activate(LOID, LOID)``.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import InterfaceError
from repro.idl.interface import Interface
from repro.idl.signature import MethodSignature, Parameter

_TOKEN = re.compile(r"\s*(?:(//[^\n]*)|([A-Za-z_][A-Za-z0-9_]*)|([{}();,]))")


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise InterfaceError(f"IDL syntax error near {remainder[:20]!r}")
        comment, ident, punct = match.groups()
        if ident:
            tokens.append(ident)
        elif punct:
            tokens.append(punct)
        # comments are skipped
        pos = match.end()
    return tokens


class _Cursor:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.i = 0

    def peek(self) -> str:
        if self.i >= len(self.tokens):
            raise InterfaceError("unexpected end of IDL input")
        return self.tokens[self.i]

    def next(self) -> str:
        tok = self.peek()
        self.i += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise InterfaceError(f"expected {tok!r}, got {got!r}")

    def done(self) -> bool:
        return self.i >= len(self.tokens)


def _parse_params(cur: _Cursor) -> Tuple[Parameter, ...]:
    cur.expect("(")
    params: List[Parameter] = []
    if cur.peek() == ")":
        cur.next()
        return tuple(params)
    while True:
        type_name = cur.next()
        name = ""
        if cur.peek() not in (",", ")"):
            name = cur.next()
        params.append(Parameter(type_name=type_name, name=name))
        tok = cur.next()
        if tok == ")":
            return tuple(params)
        if tok != ",":
            raise InterfaceError(f"expected ',' or ')' in parameter list, got {tok!r}")


def _parse_signature(cur: _Cursor) -> MethodSignature:
    first = cur.next()
    if cur.peek() == "(":
        # No return type: `Deactivate(LOID)`.
        return MethodSignature(name=first, parameters=_parse_params(cur), returns=None)
    name = cur.next()
    return MethodSignature(name=name, parameters=_parse_params(cur), returns=first)


def parse_signature(text: str) -> MethodSignature:
    """Parse one signature, e.g. ``"binding GetBinding(LOID)"``."""
    cur = _Cursor(_tokenize(text))
    sig = _parse_signature(cur)
    if not cur.done() and cur.peek() == ";":
        cur.next()
    if not cur.done():
        raise InterfaceError(f"trailing tokens after signature: {cur.tokens[cur.i:]}")
    return sig


def parse_interface(text: str) -> Interface:
    """Parse an ``interface Name { ... }`` block into an :class:`Interface`."""
    cur = _Cursor(_tokenize(text))
    cur.expect("interface")
    name = cur.next()
    cur.expect("{")
    signatures: List[MethodSignature] = []
    while cur.peek() != "}":
        signatures.append(_parse_signature(cur))
        cur.expect(";")
    cur.expect("}")
    if not cur.done():
        raise InterfaceError(f"trailing tokens after interface: {cur.tokens[cur.i:]}")
    return Interface(signatures, name=name)
