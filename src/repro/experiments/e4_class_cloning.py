"""E4 -- cloning relieves hot class objects (section 5.2.2).

Claim: "the problem of popular class objects becoming bottlenecks can be
alleviated by 'cloning' class objects when they become heavily used.  The
cloned class is derived from the heavily used class without changing the
interface in any way.  New instantiation and derivation requests are
passed to the cloned object, making it responsible for the new objects.
Further, several clones can exist simultaneously, with the different
clones residing in different domains."

Two client behaviours are measured:

* **naive** -- clients keep calling the original class; it forwards
  Create() to clones round-robin.  Correctness is preserved and the
  *work* moves, but the original still sees every request envelope.
* **clone-aware** -- clients fetch GetClones() once and spread their own
  requests over {original} ∪ clones, the paper's "different clones in
  different domains" model.  The hot object's request load drops by
  ~(clones+1)×.

The table reports the max per-class-object request count for each clone
count under both behaviours, plus interface identity checks.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, uniform_sites
from repro.metrics.counters import ComponentKind
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


def _creation_burst(n_clones: int, n_creates: int, clone_aware: bool, seed: int):
    system = LegionSystem.build(uniform_sites(2, hosts_per_site=3), seed=seed)
    hot = system.create_class("HotClass", factory=CounterImpl)

    clone_bindings = []
    for _i in range(n_clones):
        clone_bindings.append(system.call(hot.loid, "Clone"))

    hot_iface = system.call(hot.loid, "GetInstanceInterface")
    identical = all(
        system.call(c.loid, "GetInstanceInterface").equivalent_to(hot_iface)
        for c in clone_bindings
    )

    # Clone-aware clients learn the pool once, then go direct.
    pool = [hot] + (system.call(hot.loid, "GetClones") if clone_aware else [])

    system.reset_measurements()
    for i in range(n_creates):
        if clone_aware:
            target = pool[i % len(pool)]
            system.call(target.loid, "Create", {"no_delegate": True})
        else:
            system.call(hot.loid, "Create", {})

    max_load = system.services.metrics.max_by_kind(ComponentKind.CLASS_OBJECT)
    return max_load, identical


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Compare hot-class request load across clone counts and behaviours."""
    recorder = SeriesRecorder(x_label="clones")
    result = ExperimentResult(
        experiment="E4",
        title="class cloning relieves hot classes (5.2.2)",
        claim=(
            "with clients spread over interface-identical clones, the max "
            "per-class-object load drops by ~(clones+1)x"
        ),
        recorder=recorder,
    )
    n_creates = 24 if quick else 60
    aware_loads = {}
    for n_clones in (0, 1, 3):
        naive_load, identical = _creation_burst(n_clones, n_creates, False, seed)
        aware_load, _ = _creation_burst(n_clones, n_creates, True, seed)
        aware_loads[n_clones] = aware_load
        recorder.add(n_clones, naive=naive_load, clone_aware=aware_load)
        if n_clones > 0:
            result.check(
                f"{n_clones} clone(s): instance interface unchanged", identical
            )

    result.check(
        "1 clone roughly halves the hottest class load",
        aware_loads[1] <= 0.7 * aware_loads[0],
        f"{aware_loads[1]} vs {aware_loads[0]}",
    )
    result.check(
        "3 clones cut the hottest class load to ~1/4",
        aware_loads[3] <= 0.45 * aware_loads[0],
        f"{aware_loads[3]} vs {aware_loads[0]}",
    )
    result.notes = (
        "naive clients still funnel request envelopes through the original "
        "(it forwards the work); the claim's full effect needs clone-aware "
        "request spreading, as the paper's 'different domains' implies."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
