"""E8 -- the relation machinery of Figs. 2-8 and the class types (2.1).

Claims reproduced:

* Create()/Derive()/InheritFrom() establish is-a / kind-of /
  inherits-from exactly as Figs. 3-6 depict, at run time;
* multiple inheritance is the two-step Derive-then-InheritFrom process,
  and instances created afterwards *compose* the base implementations;
* Abstract / Private / Fixed classes refuse the respective operations
  (section 2.1.2);
* "the class object for LegionObject is the only sink in the graph that
  is implied by the union of the kind-of and is-a relations" (2.1.3).

The table reports the cost (simulated ms and messages) of each operation;
the checks are behavioural.
"""

from __future__ import annotations

from repro import errors
from repro.core.class_types import ClassFlavor
from repro.core.object_base import LegionObjectImpl, legion_method
from repro.experiments.common import ExperimentResult, count_messages, uniform_sites
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem


class NamedImpl(LegionObjectImpl):
    """Base-class implementation contributing a Name() method."""

    def __init__(self, name: str = "anonymous") -> None:
        self.name = name

    def persistent_attributes(self):
        return ["name"]

    @legion_method("string Name()")
    def get_name(self) -> str:
        return self.name


class GreeterImpl(LegionObjectImpl):
    """Another base: contributes Greet()."""

    def __init__(self, greeting: str = "hello") -> None:
        self.greeting = greeting

    def persistent_attributes(self):
        return ["greeting"]

    @legion_method("string Greet()")
    def greet(self) -> str:
        return self.greeting


class PoliteImpl(LegionObjectImpl):
    """The deriving class's own implementation: uses both bases' methods
    being present on the same object (same LOID, composed dispatch)."""

    @legion_method("string Introduce()")
    def introduce(self) -> str:
        return "I am composed"

    @legion_method("string Greet()")
    def greet(self) -> str:
        # Overrides GreeterImpl.Greet: own-class methods win.
        return "polite hello"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Exercise the full inheritance machinery; verify every Fig. 2 rule."""
    recorder = SeriesRecorder(x_label="op")
    result = ExperimentResult(
        experiment="E8",
        title="Create/Derive/InheritFrom and class types (2.1, Figs. 2-8)",
        claim=(
            "run-time inheritance composes future instances; class types "
            "gate the class-mandatory functions; LegionObject is the only "
            "kind-of/is-a sink"
        ),
        recorder=recorder,
    )
    system = LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=seed)
    relations = system.services.relations
    legion_object = system.core.loid("LegionObject")

    system.services.impls.register("e8.named", NamedImpl)
    system.services.impls.register("e8.greeter", GreeterImpl)
    system.services.impls.register("e8.polite", PoliteImpl)

    # -- Derive (Fig. 4): kind-of edges, one superclass each.
    t0 = system.kernel.now
    named_cls, derive_msgs = count_messages(
        system, lambda: system.create_class("Named", instance_factory="e8.named")
    )
    recorder.add(1, derive_msgs=derive_msgs, derive_ms=system.kernel.now - t0)
    greeter_cls = system.create_class("Greeter", instance_factory="e8.greeter")
    polite_cls = system.create_class("Polite", instance_factory="e8.polite")

    result.check(
        "Derive(): kind-of recorded, exactly one superclass",
        relations.superclass_of(named_cls.loid) == legion_object
        and relations.superclass_of(polite_cls.loid) == legion_object,
    )

    # -- InheritFrom (Figs. 5/6): two-step multiple inheritance.
    t0 = system.kernel.now
    _, inherit_msgs = count_messages(
        system, lambda: system.call(polite_cls.loid, "InheritFrom", named_cls.loid)
    )
    recorder.add(2, inherit_msgs=inherit_msgs, inherit_ms=system.kernel.now - t0)
    system.call(polite_cls.loid, "InheritFrom", greeter_cls.loid)
    result.check(
        "InheritFrom(): a class can inherit from many bases",
        set(map(str, relations.bases_of(polite_cls.loid)))
        == {str(named_cls.loid), str(greeter_cls.loid)},
    )
    iface = system.call(polite_cls.loid, "GetInstanceInterface")
    result.check(
        "InheritFrom(): bases' member functions joined the interface",
        iface.has_method("Name") and iface.has_method("Greet")
        and iface.has_method("Introduce"),
    )

    # -- Create (Fig. 3): is-a; instance composition reflects inheritance.
    t0 = system.kernel.now
    inst, create_msgs = count_messages(
        system, lambda: system.create_instance(polite_cls.loid)
    )
    recorder.add(3, create_msgs=create_msgs, create_ms=system.kernel.now - t0)
    result.check(
        "Create(): is-a recorded, object belongs to exactly one class",
        relations.class_of(inst.loid) == polite_cls.loid,
    )
    result.check(
        "instance composition: own + inherited methods on one LOID",
        system.call(inst.loid, "Introduce") == "I am composed"
        and system.call(inst.loid, "Name") == "anonymous",
    )
    result.check(
        "override: the deriving class's Greet() beats the base's",
        system.call(inst.loid, "Greet") == "polite hello",
    )

    # -- instances created BEFORE an InheritFrom are not retrofitted
    #    ("the composition of *future* instances").
    plain_cls = system.create_class("Plain", instance_factory="e8.named")
    before = system.create_instance(plain_cls.loid)
    system.call(plain_cls.loid, "InheritFrom", greeter_cls.loid)
    after = system.create_instance(plain_cls.loid)
    got_new = system.call(after.loid, "Greet") == "hello"
    try:
        system.call(before.loid, "Greet")
        old_unchanged = False
    except errors.MethodNotFound:
        old_unchanged = True
    result.check(
        "inheritance is active: affects future instances only",
        got_new and old_unchanged,
    )

    # -- class types (2.1.2).
    abstract_cls = system.create_class(
        "AbstractThing", instance_factory="e8.named", flavor=ClassFlavor.ABSTRACT
    )
    try:
        system.call(abstract_cls.loid, "Create", {})
        abstract_ok = False
    except errors.AbstractClassError:
        abstract_ok = True
    result.check("Abstract class: Create() is empty", abstract_ok)

    private_cls = system.create_class(
        "PrivateThing", instance_factory="e8.named", flavor=ClassFlavor.PRIVATE
    )
    try:
        system.call(private_cls.loid, "Derive", "Sub", {})
        private_ok = False
    except errors.PrivateClassError:
        private_ok = True
    result.check("Private class: Derive() is empty", private_ok)
    system.call(private_cls.loid, "Create", {})  # instances still fine

    fixed_cls = system.create_class(
        "FixedThing", instance_factory="e8.named", flavor=ClassFlavor.FIXED
    )
    try:
        system.call(fixed_cls.loid, "InheritFrom", greeter_cls.loid)
        fixed_ok = False
    except errors.FixedClassError:
        fixed_ok = True
    result.check("Fixed class: InheritFrom() is empty", fixed_ok)

    # -- the sink invariant (2.1.3).
    sinks = relations.sinks()
    result.check(
        "LegionObject is the only kind-of/is-a sink",
        sinks == [legion_object],
        f"sinks={[str(s) for s in sinks]}",
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
