"""Run the reproduction's experiment suite from the command line.

Usage::

    python -m repro.experiments                 # all, quick mode
    python -m repro.experiments --full          # full-size sweeps
    python -m repro.experiments e3 e9 a1        # a subset
    python -m repro.experiments --seed 7 --list

Exit status is non-zero if any claim check fails.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablation_caching,
    ablation_propagation,
    e1_binding_path,
    e2_agent_load,
    e3_combining_tree,
    e4_class_cloning,
    e5_lifecycle,
    e6_stale_bindings,
    e7_replication,
    e8_inheritance,
    e9_scaling,
    e10_bootstrap,
    e11_autonomy,
    e12_loids,
)
from repro.experiments.ablation_ttl_locality import run_locality, run_ttl

RUNNERS = {
    "e1": e1_binding_path.run,
    "e2": e2_agent_load.run,
    "e3": e3_combining_tree.run,
    "e4": e4_class_cloning.run,
    "e5": e5_lifecycle.run,
    "e6": e6_stale_bindings.run,
    "e7": e7_replication.run,
    "e8": e8_inheritance.run,
    "e9": e9_scaling.run,
    "e10": e10_bootstrap.run,
    "e11": e11_autonomy.run,
    "e12": e12_loids.run,
    "a1": ablation_propagation.run,
    "a2": ablation_caching.run,
    "a3": run_ttl,
    "a4": run_locality,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the Legion paper's claims (E1-E12, A1-A4).",
    )
    parser.add_argument("names", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true", help="full-size sweeps")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    args = parser.parse_args(argv)

    if args.list:
        for name in RUNNERS:
            print(name)
        return 0

    names = [n.lower() for n in (args.names or list(RUNNERS))]
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    all_passed = True
    summary = []
    for name in names:
        started = time.perf_counter()
        result = RUNNERS[name](quick=not args.full, seed=args.seed)
        elapsed = time.perf_counter() - started
        print(result.render())
        print()
        passed = result.passed
        all_passed &= passed
        summary.append((name, result.experiment, passed, elapsed))

    print("=" * 60)
    for name, experiment, passed, elapsed in summary:
        status = "PASS" if passed else "FAIL"
        print(f"  {status}  {experiment:<4} ({name})  {elapsed:6.1f}s")
    print("=" * 60)
    print("all claims hold" if all_passed else "SOME CLAIMS FAILED")
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
