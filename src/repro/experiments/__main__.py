"""Run the reproduction's experiment suite from the command line.

Usage::

    python -m repro.experiments                 # all, quick mode
    python -m repro.experiments --full          # full-size sweeps
    python -m repro.experiments e3 e9 a1        # a subset
    python -m repro.experiments --jobs 4        # parallel sweep
    python -m repro.experiments --seeds 0 1 2   # one sweep per seed
    python -m repro.experiments --seed 7 --list

Exit status is non-zero if any claim check fails.  The implementation
lives in :mod:`repro.experiments.runner`; this module keeps the
``python -m`` entry point and the historical import surface.
"""

from __future__ import annotations

import sys

from repro.experiments.runner import RUNNERS, main

__all__ = ["RUNNERS", "main"]

if __name__ == "__main__":
    sys.exit(main())
