"""The experiment runner: registry, parallel fan-out, and the CLI.

The full sweep (E1-E18 plus the A1-A4 ablations) is embarrassingly
parallel: every experiment builds its own :class:`LegionSystem` from a
seed and shares nothing with the others.  ``run_many`` therefore fans the
sweep across a :class:`concurrent.futures.ProcessPoolExecutor` when asked
(``--jobs N``), while keeping the *printed output* byte-identical to the
sequential run: workers return rendered reports, and the parent prints
them in submission order.  Simulated-time results are deterministic per
(experiment, quick, seed) regardless of scheduling, so parallelism is
purely a wall-clock optimisation.

``python -m repro.experiments`` dispatches here; see :func:`main`.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments import (
    ablation_caching,
    ablation_propagation,
    e1_binding_path,
    e2_agent_load,
    e3_combining_tree,
    e4_class_cloning,
    e5_lifecycle,
    e6_stale_bindings,
    e7_replication,
    e8_inheritance,
    e9_scaling,
    e10_bootstrap,
    e11_autonomy,
    e12_loids,
    e13_availability,
    e14_autoscale,
    e15_overload,
    e16_georeplication,
    e17_governor,
    e18_scenarios,
)
from repro.experiments.ablation_ttl_locality import run_locality, run_ttl

#: Experiments refactored onto the shard protocol: a module exposing
#: ``shard_units(...)`` (the picklable independent work units, each its
#: own seeded system), ``shard_measure(unit, ...)`` (run one unit in any
#: process; returns a picklable partial), and ``shard_finish(partials,
#: ...)`` (merge in deterministic unit order; returns the
#: ExperimentResult).  ``run_one(..., shards=N)`` fans the units of
#: these experiments across worker processes; everything else ignores
#: ``shards``.  The merge consumes partials in unit order, so reports
#: are byte-identical at any shard count.
SHARDED = {
    "e9": e9_scaling,
    "e13": e13_availability,
    "e15": e15_overload,
    "e16": e16_georeplication,
    "e17": e17_governor,
    "e18": e18_scenarios,
}

RUNNERS = {
    "e1": e1_binding_path.run,
    "e2": e2_agent_load.run,
    "e3": e3_combining_tree.run,
    "e4": e4_class_cloning.run,
    "e5": e5_lifecycle.run,
    "e6": e6_stale_bindings.run,
    "e7": e7_replication.run,
    "e8": e8_inheritance.run,
    "e9": e9_scaling.run,
    "e10": e10_bootstrap.run,
    "e11": e11_autonomy.run,
    "e12": e12_loids.run,
    "e13": e13_availability.run,
    "e14": e14_autoscale.run,
    "e15": e15_overload.run,
    "e16": e16_georeplication.run,
    "e17": e17_governor.run,
    "e18": e18_scenarios.run,
    "a1": ablation_propagation.run,
    "a2": ablation_caching.run,
    "a3": run_ttl,
    "a4": run_locality,
}


@dataclass
class RunOutcome:
    """One experiment run, reduced to picklable primitives.

    Workers in the process pool return these instead of
    :class:`~repro.experiments.common.ExperimentResult` (whose recorder
    holds arbitrary objects); the parent only needs the rendered report
    and the verdict.
    """

    name: str
    experiment: str
    passed: bool
    report: str
    elapsed: float
    seed: int


def _accepts(runner, keyword: str) -> bool:
    """Whether an experiment runner takes ``keyword`` as a parameter."""
    try:
        return keyword in inspect.signature(runner).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False


def _accepts_trace(runner) -> bool:
    """Whether an experiment runner takes the ``trace`` keyword."""
    return _accepts(runner, "trace")


def _filter_kwargs(fn, kwargs: dict) -> dict:
    """The subset of ``kwargs`` that ``fn``'s signature declares."""
    return {k: v for k, v in kwargs.items() if _accepts(fn, k)}


def _run_sharded(module, shards: int, kwargs: dict):
    """Fan one experiment's units across ``shards`` worker processes.

    Units are independent by the shard contract (each builds its own
    seeded system), so scheduling is purely a wall-clock optimisation:
    partials are collected in submission (= unit) order and merged by
    the module's ``shard_finish``, which produces the same
    ExperimentResult as the sequential run byte-for-byte.
    """
    units = module.shard_units(**_filter_kwargs(module.shard_units, kwargs))
    measure_kwargs = _filter_kwargs(module.shard_measure, kwargs)
    if shards <= 1 or len(units) <= 1:
        partials = [module.shard_measure(unit, **measure_kwargs) for unit in units]
    else:
        with ProcessPoolExecutor(max_workers=min(shards, len(units))) as pool:
            # Submit in reverse unit order: sweeps list units smallest
            # first, so reverse submission approximates longest-first
            # scheduling and keeps the expensive tail unit off the end
            # of the critical path.  Merge order is unaffected -- the
            # partials list is rebuilt in unit order.
            futures = {
                index: pool.submit(module.shard_measure, units[index], **measure_kwargs)
                for index in reversed(range(len(units)))
            }
            partials = [futures[index].result() for index in range(len(units))]
    return module.shard_finish(
        partials, **_filter_kwargs(module.shard_finish, kwargs)
    )


def run_one(
    name: str,
    quick: bool,
    seed: int,
    trace: Optional[str] = None,
    faults: Optional[float] = None,
    report: Optional[str] = None,
    autoscale: Optional[float] = None,
    overload: Optional[float] = None,
    replicas: Optional[int] = None,
    governor: Optional[float] = None,
    mega: Optional[int] = None,
    shards: int = 1,
) -> RunOutcome:
    """Execute one experiment; never raises (a crash is a failed outcome).

    The optional keywords are forwarded only to runners that declare them:
    ``trace`` (an output directory) to trace-aware experiments, ``faults``
    (a chaos intensity) and ``report`` (an artifact directory) to
    fault-aware ones, ``autoscale`` (a max load multiplier) to e14,
    ``overload`` (a top offered-load multiplier) to e15/e16, ``replicas``
    (a top replica count) to e16, ``mega`` (a columnar population size)
    to the mega-scale-aware experiments (e9/e14/e15).  The rest run
    exactly as without the flags.

    ``shards`` > 1 runs the independent units (jurisdictions) of
    :data:`SHARDED` experiments on separate worker processes with a
    deterministic cross-shard merge; non-sharded experiments ignore it.
    """
    started = time.perf_counter()
    try:
        runner = RUNNERS[name]
        kwargs = {"quick": quick, "seed": seed}
        for keyword, value in (
            ("trace", trace),
            ("faults", faults),
            ("report", report),
            ("autoscale", autoscale),
            ("overload", overload),
            ("replicas", replicas),
            ("governor", governor),
            ("mega", mega),
        ):
            if value is not None and _accepts(runner, keyword):
                kwargs[keyword] = value
        module = SHARDED.get(name)
        if shards > 1 and module is not None:
            result = _run_sharded(module, shards, kwargs)
        else:
            result = runner(**kwargs)
        report = result.render()
        experiment = result.experiment
        passed = result.passed
    except Exception:  # noqa: BLE001 - a crashed experiment is a FAIL, not an abort
        report = f"== {name}: CRASHED ==\n{traceback.format_exc().rstrip()}"
        experiment = name.upper()
        passed = False
    return RunOutcome(
        name=name,
        experiment=experiment,
        passed=passed,
        report=report,
        elapsed=time.perf_counter() - started,
        seed=seed,
    )


def run_many(
    names: Sequence[str],
    quick: bool = True,
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    trace: Optional[str] = None,
    faults: Optional[float] = None,
    report: Optional[str] = None,
    autoscale: Optional[float] = None,
    overload: Optional[float] = None,
    replicas: Optional[int] = None,
    governor: Optional[float] = None,
    mega: Optional[int] = None,
    shards: int = 1,
) -> List[RunOutcome]:
    """Run ``names`` x ``seeds``, ``jobs`` at a time; outcomes in input order.

    ``jobs=1`` runs inline (no pool, no fork) -- this is the reference
    path whose output the parallel path reproduces byte-for-byte.  Traced
    and fault-injected runs keep that contract: span ids, timestamps, and
    chaos schedules are functions of the per-experiment kernel's
    deterministic seed, so reports and exported artifacts are identical
    at any ``jobs``.

    ``shards`` fans each SHARDED experiment's units across worker
    processes *inside* its run; combine with ``jobs=1`` (nesting a shard
    pool inside a job pool multiplies processes).
    """
    tasks = [
        (
            name, quick, seed, trace, faults, report,
            autoscale, overload, replicas, governor, mega, shards,
        )
        for seed in seeds
        for name in names
    ]
    if jobs <= 1 or len(tasks) <= 1:
        return [run_one(*task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = [pool.submit(run_one, *task) for task in tasks]
        return [f.result() for f in futures]


def render_summary(outcomes: Sequence[RunOutcome], multi_seed: bool) -> str:
    """The trailing PASS/FAIL table plus the one-line verdict."""
    lines = ["=" * 60]
    for o in outcomes:
        status = "PASS" if o.passed else "FAIL"
        tag = f"({o.name}, seed {o.seed})" if multi_seed else f"({o.name})"
        lines.append(f"  {status}  {o.experiment:<4} {tag}  {o.elapsed:6.1f}s")
    lines.append("=" * 60)
    all_passed = all(o.passed for o in outcomes)
    lines.append("all claims hold" if all_passed else "SOME CLAIMS FAILED")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the Legion paper's claims (E1-E18, A1-A4).",
    )
    parser.add_argument("names", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true", help="full-size sweeps")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="quick-size sweeps (the default; explicit for scripts)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        metavar="SEED",
        help="run the sweep once per seed (overrides --seed)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="run up to N experiments in parallel processes (default 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run each sharded experiment's independent units (e9/e13/e15/"
            "e16/e17/e18 sweeps) on up to N worker processes; reports "
            "are byte-identical at any N (default 1)"
        ),
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="traces",
        default=None,
        metavar="DIR",
        help=(
            "record causal traces: trace-aware experiments audit their "
            "span trees and write Chrome trace_event JSON under DIR "
            "(default: traces/)"
        ),
    )
    parser.add_argument(
        "--faults",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "chaos intensity (fault events per 1000 simulated time units) "
            "for fault-aware experiments: e13 then sweeps [0, RATE] "
            "instead of its default levels"
        ),
    )
    parser.add_argument(
        "--report",
        nargs="?",
        const="reports",
        default=None,
        metavar="DIR",
        help=(
            "write machine-readable result artifacts (availability/FaultLog "
            "JSON) under DIR (default: reports/) for experiments that "
            "support them"
        ),
    )
    parser.add_argument(
        "--autoscale",
        type=float,
        default=None,
        metavar="MULT",
        help=(
            "top offered-load multiplier for autoscale-aware experiments: "
            "e14 then sweeps powers of two up to MULT instead of its "
            "default 8x"
        ),
    )
    parser.add_argument(
        "--overload",
        type=float,
        default=None,
        metavar="MULT",
        help=(
            "top offered-load multiplier for overload-aware experiments: "
            "e15 then sweeps offered load up to MULT x capacity instead "
            "of its default 10x"
        ),
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help=(
            "top replica count for replication-aware experiments: e16 "
            "then sweeps replica groups up to N members instead of its "
            "default 3 (one per jurisdiction)"
        ),
    )
    parser.add_argument(
        "--governor",
        type=float,
        default=None,
        metavar="MULT",
        help=(
            "storm offered-load multiplier for governor-aware experiments: "
            "e17 then drives its storm phase at MULT x capacity instead of "
            "its default 8x"
        ),
    )
    parser.add_argument(
        "--mega",
        type=int,
        default=None,
        metavar="N",
        help=(
            "columnar mega-scale population for mega-aware experiments: "
            "e9 appends a frame-at-once size ladder up to N objects, "
            "e14/e15 run their sweeps over an N-object columnar "
            "population (requires the numpy 'mega' extra)"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the scenario catalog (the workloads e18 sweeps)",
    )
    args = parser.parse_args(argv)

    if args.full and args.quick:
        parser.error("--full and --quick are mutually exclusive")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")

    if args.list:
        for name in RUNNERS:
            print(name)
        return 0

    if args.list_scenarios:
        from repro.scenarios import catalog

        specs = catalog()
        width = max(len(name) for name in specs)
        for name, spec in specs.items():
            print(f"{name:<{width}}  {spec.description}")
        return 0

    names = [n.lower() for n in (args.names or list(RUNNERS))]
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    seeds = args.seeds if args.seeds else [args.seed]
    outcomes = run_many(
        names,
        quick=not args.full,
        seeds=seeds,
        jobs=args.jobs,
        trace=args.trace,
        faults=args.faults,
        report=args.report,
        autoscale=args.autoscale,
        overload=args.overload,
        replicas=args.replicas,
        governor=args.governor,
        mega=args.mega,
        shards=args.shards,
    )

    for outcome in outcomes:
        print(outcome.report)
        print()
    print(render_summary(outcomes, multi_seed=len(seeds) > 1))
    return 0 if all(o.passed for o in outcomes) else 1


if __name__ == "__main__":
    sys.exit(main())
