"""E14 -- load-adaptive class cloning bounds the hot-class load (5.2.2).

Claim: the paper's clones "arbitrarily reduce the load" on a hot class,
but leaves *when* to clone to the administrator.  With the loop closed --
LoadMonitor rates feeding a CloneController that spawns clones through
the scheduling agent above a high-water mark and drains/retires them
below a low-water mark -- the maximum per-class-object request count
stays bounded (log-log slope ~ 0) as the offered load grows 8x, while a
static one-clone baseline saturates linearly.

Method: per load level L in {1, 2, 4, 8}, build a fresh 2-site testbed
with one hot class, and drive open-loop traffic (rate proportional to L,
independent of service latency) from clone-aware clients that route over
GetClonePool() round-robin: mostly cheap class-method calls plus a
Create() every CREATE_EVERY-th call, so both instantiation and method
traffic spread.  The autoscaled arm runs a CloneController (placement
through LeastLoadedPlacementAgent); the static arm keeps one hand-placed
clone.  Each level warms up until the controller converges, resets the
counters, and measures a fixed window; at the top level the autoscaled
arm also demonstrates scale-down (the pool drains back to min_clones
after the traffic stops).  Everything runs on simulated time from seeded
state: byte-identical across --jobs 1 and --jobs N.
"""

from __future__ import annotations

import json
import math
import os
from typing import Optional

from repro.autoscale import (
    AutoscaleConfig,
    CloneController,
    ClonePoolRouter,
    build_placement_agent,
)
from repro.experiments.common import ExperimentResult
from repro.metrics.counters import ComponentKind
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl
from repro.workloads.generators import OpenLoopDriver

#: Offered load per level: N_CLIENTS clients each firing one call every
#: BASE_INTERVAL / level simulated ms.
N_CLIENTS = 3
BASE_INTERVAL = 5.0
#: Every CREATE_EVERY-th call is a Create() on the chosen pool member
#: (instantiation traffic); the rest are CloneEpoch() (method traffic).
CREATE_EVERY = 16
#: Process slots per host: the sweep creates hundreds of instances at the
#: top level, and a full host would turn a load experiment into a
#: capacity one.
MAX_PROCESSES = 1_024
#: Controller thresholds (requests per simulated ms per pool member).
HIGH_WATER = 0.7
LOW_WATER = 0.12
COOLDOWN = 30.0
TICK = 8.0
MAX_CLONES = 8
#: Per-level spawn budget: each clone spawn costs a placement probe plus
#: a Derive (~0.5 simulated s); warm up long enough for the controller to
#: converge before the measured window opens.
WARMUP_BASE = 400.0
WARMUP_PER_CLONE = 550.0


def _expected_members(level: int) -> int:
    total_rate = N_CLIENTS * level / BASE_INTERVAL
    return min(MAX_CLONES + 1, max(1, math.ceil(total_rate / HIGH_WATER)))


def _run_level(level: int, seed: int, quick: bool, autoscaled: bool):
    measure = 500.0 if quick else 1_200.0
    system = LegionSystem.build(
        [
            SiteSpec("east", hosts=3, max_processes=MAX_PROCESSES),
            SiteSpec("west", hosts=3, max_processes=MAX_PROCESSES),
        ],
        seed=seed,
    )
    hot = system.create_class("HotClass", factory=CounterImpl)

    controller = None
    if autoscaled:
        placement = build_placement_agent(system)
        controller = CloneController(
            system,
            hot,
            AutoscaleConfig(
                high_water=HIGH_WATER,
                low_water=LOW_WATER,
                cooldown=COOLDOWN,
                tick=TICK,
                max_clones=MAX_CLONES,
            ),
            placement=placement,
        )
        controller.start()
    else:
        system.call(hot.loid, "Clone")  # the hand-placed static baseline

    clients = [
        system.new_client(f"e14-{i}", site=system.sites[i % len(system.sites)].name)
        for i in range(N_CLIENTS)
    ]
    routers = [ClonePoolRouter(client, hot, refresh=20.0) for client in clients]
    by_client = {id(c): r for c, r in zip(clients, routers, strict=True)}
    for router in routers:
        router.start()

    calls = {"n": 0}

    def choose_call(client):
        calls["n"] += 1
        target = by_client[id(client)].choose()
        if calls["n"] % CREATE_EVERY == 0:
            return (target, "Create", ({"no_delegate": True},))
        return (target, "CloneEpoch", ())

    interval = BASE_INTERVAL / level
    warmup = WARMUP_BASE + (
        WARMUP_PER_CLONE * (_expected_members(level) - 1) if autoscaled else 0.0
    )
    # One continuous open-loop driver across warm-up and measurement: a
    # driver handoff would leave an offered-load trough while the old
    # backlog drains, and the controller would (correctly!) scale down
    # right inside the measured window.  Counters reset mid-flight at the
    # phase boundary instead; the LoadMonitor re-baselines on the reset.
    driver = OpenLoopDriver(
        system.kernel, clients, choose_call, interval, warmup + measure, timeout=400.0
    )
    stats_fut = driver.start()
    phase_start = system.kernel.now
    system.kernel.run(until=phase_start + warmup)
    system.reset_measurements()
    system.kernel.run(until=phase_start + warmup + measure)
    # Sample the bottleneck metric *now*, before scale-down admin traffic
    # (drain polls, Deactivates) lands on the survivors.
    max_load = system.services.metrics.max_by_kind(ComponentKind.CLASS_OBJECT)
    measure_end = system.kernel.now
    stats = system.kernel.run_until_complete(stats_fut, max_events=20_000_000)
    clone_count = system.call(hot.loid, "CloneCount")

    drained_to_min = None
    if autoscaled:
        # Scale-down: with the traffic gone the pool must drain back.
        # Each retirement costs a drain (up to RETIRE_DRAIN_BUDGET) plus a
        # Deactivate, one per controller tick.
        deadline = system.kernel.now + 6_000.0
        while system.kernel.now < deadline and system.call(hot.loid, "CloneCount") > 0:
            system.kernel.run(until=system.kernel.now + 100.0)
        drained_to_min = system.call(hot.loid, "CloneCount") == 0
        controller.stop()
    for router in routers:
        router.stop()
    system.kernel.run()

    actions = list(controller.actions) if controller else []
    # Peak concurrent clones up to the end of the measured window: the
    # instantaneous count is noisy right at the scale thresholds (a pool
    # hovering on a watermark may have just grown or shrunk), the peak is
    # the capacity the controller actually provisioned for this level.
    peak = live = 0
    for when, what, _loid in actions:
        if when > measure_end:
            break
        live += 1 if what == "spawn" else -1
        peak = max(peak, live)
    return {
        "stats": stats,
        "max_load": max_load,
        "clone_count": clone_count,
        "peak_clones": peak,
        "drained_to_min": drained_to_min,
        "actions": actions,
        "sim_clock": system.kernel.now,
        "sim_events": system.kernel.events_executed,
    }


def _run_mega(
    quick: bool, seed: int, levels: list, mega: int
) -> ExperimentResult:
    """The mega-scale arm: columnar callers driving the real controller.

    The caller population lives in a frame (its ``cache_epoch`` column is
    the binding cache); each tick's demand lands on the live pool
    members' CLASS_OBJECT counters, so the LoadMonitor → CloneController
    loop reacts to mega-population demand exactly as it would to
    ordinary clients, including lazy rebinds when the pool epoch moves.
    """
    from repro.megascale.adapters import run_mega_autoscale

    recorder = SeriesRecorder(x_label="load_multiplier")
    result = ExperimentResult(
        experiment="E14",
        title=f"load-adaptive cloning (columnar mega callers, N={mega})",
        claim=(
            "a mega-scale columnar caller population's demand, injected "
            "into the pool's counters with lazy per-caller cache rebinds, "
            "drives the real CloneController to provision for the load "
            "and drain back after it"
        ),
        recorder=recorder,
    )
    result.sim_clock = 0.0
    result.sim_events = 0
    peaks = []
    for level in levels:
        out = run_mega_autoscale(level, seed=seed, quick=quick, population=mega)
        result.sim_clock += out["sim_clock"]
        result.sim_events += out["sim_events"]
        peaks.append(out["peak_members"])
        recorder.add(
            level,
            peak_members=out["peak_members"],
            final_members=out["final_members_at_load"],
            rebinds=out["rebinds"],
            demand=out["issued"],
        )
        result.check(
            f"L={level}: pool provisioned for the injected demand",
            out["final_members_at_load"] >= out["expected_members"],
            f"members={out['final_members_at_load']} "
            f"expected>={out['expected_members']}",
        )
        result.check(
            f"L={level}: every routed call is accounted for",
            out["issued"] == out["routed"]
            and out["caller_calls_total"] == out["issued"],
            f"issued={out['issued']} routed={out['routed']}",
        )
        result.check(
            f"L={level}: stale caches rebind lazily on epoch bumps",
            0 < out["rebinds"] <= out["issued"] and out["fresh_members_valid"],
            f"rebinds={out['rebinds']} of {out['issued']} calls",
        )
        result.check(
            f"L={level}: pool drains back after the demand stops",
            out["drained_to_min"],
        )
        result.check(
            f"L={level}: caller ids stay monotone (no recycling)",
            out["allocator_high_water"] == mega,
            f"high_water={out['allocator_high_water']}",
        )
    result.check(
        "peak pool size grows monotonically with offered load",
        all(a <= b for a, b in zip(peaks, peaks[1:], strict=False))
        and peaks[-1] > peaks[0],
        f"peaks={peaks}",
    )
    return result


def run(
    quick: bool = True,
    seed: int = 0,
    autoscale: Optional[float] = None,
    report: Optional[str] = None,
    mega: Optional[int] = None,
) -> ExperimentResult:
    """Sweep offered load 8x; autoscaled max load must stay bounded.

    ``autoscale`` (the runner's ``--autoscale`` flag) overrides the top
    load multiplier: levels become powers of two up to that value.
    ``report`` names a directory for the JSON load-slope artifact.
    ``mega`` (the ``--mega N`` flag) swaps the live client fleet for a
    columnar caller population of N: same levels, same controller, with
    demand injected frame-at-once and binding caches as a column.
    """
    recorder = SeriesRecorder(x_label="load_multiplier")
    result = ExperimentResult(
        experiment="E14",
        title="load-adaptive class cloning (closed-loop autoscaler)",
        claim=(
            "a CloneController keeps the max per-class-object load bounded "
            "(log-log slope ~ 0) across an 8x offered-load sweep, while a "
            "static one-clone baseline saturates"
        ),
        recorder=recorder,
    )
    top = int(autoscale) if autoscale else 8
    levels, level = [], 1
    while level <= max(2, top):
        levels.append(level)
        level *= 2
    if mega:
        return _run_mega(quick, seed, levels, int(mega))
    total_clock, total_events = 0.0, 0
    report_rows = []
    clone_counts = []
    top_loads = {}
    for level in levels:
        auto = _run_level(level, seed, quick, autoscaled=True)
        static = _run_level(level, seed, quick, autoscaled=False)
        total_clock += auto["sim_clock"] + static["sim_clock"]
        total_events += auto["sim_events"] + static["sim_events"]
        clone_counts.append(auto["peak_clones"])
        top_loads = {"auto": auto["max_load"], "static": static["max_load"]}
        recorder.add(
            level,
            autoscale_max_load=auto["max_load"],
            static_max_load=static["max_load"],
            peak_clones=auto["peak_clones"],
            spawns=sum(1 for a in auto["actions"] if a[1] == "spawn"),
        )
        for arm, out in (("autoscale", auto), ("static", static)):
            stats = out["stats"]
            result.check(
                f"L={level} {arm}: zero lost requests",
                stats.calls_failed == 0,
                f"{stats.calls_succeeded}/{stats.calls_issued}"
                + (f"; first error: {stats.errors[0]}" if stats.errors else ""),
            )
        if auto["drained_to_min"] is not None:
            result.check(
                f"L={level}: pool drains back to min_clones after the burst",
                auto["drained_to_min"],
            )
        report_rows.append(
            {
                "level": level,
                "autoscale_max_load": auto["max_load"],
                "static_max_load": static["max_load"],
                "clones": auto["clone_count"],
                "peak_clones": auto["peak_clones"],
                "actions": auto["actions"],
            }
        )
    auto_slope = recorder.slope("autoscale_max_load", log_log=True)
    static_slope = recorder.slope("static_max_load", log_log=True)
    result.check(
        "autoscaled max per-class-object load is bounded (log-log slope <= 0.15)",
        auto_slope <= 0.15,
        f"slope={auto_slope:.3f}",
    )
    result.check(
        "static baseline saturates (log-log slope >= 0.5)",
        static_slope >= 0.5,
        f"slope={static_slope:.3f}",
    )
    result.check(
        "at top load the autoscaled hot spot carries <= half the static one",
        top_loads["auto"] <= 0.5 * top_loads["static"],
        f"auto={top_loads['auto']} static={top_loads['static']}",
    )
    result.check(
        "peak clone count grows monotonically with offered load",
        all(a <= b for a, b in zip(clone_counts, clone_counts[1:], strict=False))
        and clone_counts[-1] > clone_counts[0],
        f"counts={clone_counts}",
    )
    result.sim_clock = total_clock
    result.sim_events = total_events
    if report is not None:
        os.makedirs(report, exist_ok=True)
        path = os.path.join(report, f"e14-autoscale-seed{seed}.json")
        with open(path, "w") as fh:
            json.dump(
                {
                    "seed": seed,
                    "quick": quick,
                    "autoscale_slope": auto_slope,
                    "static_slope": static_slope,
                    "levels": report_rows,
                },
                fh,
                indent=2,
                sort_keys=True,
            )
        result.notes = f"report: {path}"
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
