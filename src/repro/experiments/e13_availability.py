"""E13 -- availability under scheduled chaos (sections 3.1, 4.1.4).

Claim: failures cost repair traffic, never wrong answers.  With the
self-healing stack in place -- patient retry/rebind in the runtime,
checkpointing magistrates, RecoverObject on the stale-binding path, and
periodic recovery sweeps -- every call succeeds at every fault intensity
for which a recovery path exists (here: each site's first host, carrying
the site infrastructure, stays up), and every lost object comes back with
its checkpointed state intact.

Method: build a 2-site testbed, create counters with distinct state,
checkpoint them, then run read traffic while a seeded ChaosDriver crashes
hosts and objects, degrades links, and partitions sites.  Sweep the fault
intensity; report call success rate, time-to-recover distributions, and
the repair-traffic overhead versus the fault-free control.  Runs are
bit-identical per seed.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.core.runtime import RetryPolicy
from repro.experiments.common import ExperimentResult, uniform_sites
from repro.faults.driver import ChaosDriver, eligible_hosts
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoverySweeper
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl
from repro.workloads.generators import TrafficDriver

#: The patient policy chaos clients run: wide attempt budget, exponential
#: backoff with seeded jitter, and both transient-failure modes retried --
#: partitions (wait out the heal) and resolution failures (recovery may
#: still be in flight).
CHAOS_RETRY_POLICY = RetryPolicy(
    max_attempts=12,
    base_backoff=10.0,
    backoff_factor=2.0,
    max_backoff=300.0,
    jitter=0.5,
    budget=10_000.0,
    retry_partitions=True,
    retry_resolution_failures=True,
)


def _run_level(intensity: float, seed: int, quick: bool):
    n_objects = 8 if quick else 12
    calls_per_client = 30 if quick else 80
    horizon = 1_500.0 if quick else 4_000.0
    system = LegionSystem.build(uniform_sites(2, hosts_per_site=3), seed=seed)
    # The class object is infrastructure: pin it to a protected host (each
    # site's first host stays up, like the magistrates and agents it needs).
    site0 = system.sites[0].name
    cls = system.create_class(
        "Counter",
        factory=CounterImpl,
        magistrate=system.magistrates[site0].loid,
        host=system.host_servers[system.site_hosts[site0][0]].loid,
    )
    objects = [system.create_instance(cls.loid) for _ in range(n_objects)]
    loids = [b.loid for b in objects]

    # Distinct state per object, checkpointed so a crash cannot lose it.
    for i, binding in enumerate(objects):
        system.call(binding.loid, "Increment", i + 1)
    for binding in objects:
        row = system.call(cls.loid, "GetRow", binding.loid)
        system.call(row.current_magistrates[0], "Checkpoint", binding.loid)

    clients = [
        system.new_client(f"e13-{i}", site=system.sites[i % len(system.sites)].name)
        for i in range(4)
    ]
    for client in clients:
        client.runtime.retry_policy = CHAOS_RETRY_POLICY
    rng = system.services.rng.stream("e13")

    system.reset_measurements()
    log = FaultLog()
    plan = FaultPlan.generate(
        system.services.rng.stream("e13-faults"),
        horizon=horizon,
        intensity=intensity,
        hosts=eligible_hosts(system),
        sites=[s.name for s in system.sites],
        objects=[str(loid) for loid in loids],
    )
    driver = ChaosDriver(system, plan, log)
    sweeper = RecoverySweeper(system, interval=100.0)
    traffic = TrafficDriver(
        system.kernel,
        clients,
        choose_target=lambda _client: loids[rng.randrange(len(loids))],
        method="Get",
        args=(),
        calls_per_client=calls_per_client,
        think_time=10.0,
        timeout=250.0,
    )
    driver.start()
    sweeper.start()
    stats_fut = traffic.start()
    stats = system.kernel.run_until_complete(stats_fut, max_events=20_000_000)
    sweeper.stop()
    system.kernel.run()  # late chaos events, heals, and restores drain here
    repair_messages = system.network.stats.messages_sent

    # One final sweep per magistrate so losses after the traffic window are
    # also repaired (and logged) before reconciliation.
    for site in sorted(system.magistrates):
        fut = system.spawn(system.magistrates[site].impl.sweep_hosts())
        system.kernel.run_until_complete(fut)

    # Verification: every object answers with its checkpointed state.  A
    # still-lost object is recovered by this very call (the reactive path),
    # so reconciliation below sees it too.
    state_intact = True
    for i, binding in enumerate(objects):
        value = system.call(binding.loid, "Get")
        if value != i + 1:
            state_intact = False
    return {
        "system": system,
        "stats": stats,
        "log": log,
        "plan": plan,
        "state_intact": state_intact,
        "repair_messages": repair_messages,
        "sim_clock": system.kernel.now,
        "sim_events": system.kernel.events_executed,
    }


def shard_units(quick: bool = True, faults: Optional[float] = None) -> list:
    """The independent work units of one E13 sweep (one per intensity).

    Every level builds its own system, chaos plan, and fault log from
    the seed, so levels may run in separate worker processes
    (``--shards N``) in any order; only the *merge* -- the repair-traffic
    overhead against the level-0 control -- is cross-level, and that
    happens in :func:`shard_finish`.
    """
    if faults is not None:
        return [0.0, float(faults)]
    return [0.0, 1.0, 3.0] if quick else [0.0, 0.5, 1.0, 2.0, 4.0]


def shard_measure(
    intensity: float,
    quick: bool = True,
    seed: int = 0,
    faults: Optional[float] = None,
) -> dict:
    """Run one intensity; reduce the live system to a picklable partial."""
    out = _run_level(intensity, seed, quick)
    log = out["log"]
    return {
        "intensity": intensity,
        "stats": out["stats"],
        "summary": log.summary(),
        "lost": sorted(set(log.lost_objects())),
        "recovered": sorted(set(log.recovered_objects())),
        "fault_log_json": log.to_json(),
        "state_intact": out["state_intact"],
        "repair_messages": out["repair_messages"],
        "sim_clock": out["sim_clock"],
        "sim_events": out["sim_events"],
    }


def shard_finish(
    partials,
    quick: bool = True,
    seed: int = 0,
    faults: Optional[float] = None,
    report: Optional[str] = None,
) -> ExperimentResult:
    """Merge level partials into the E13 result, in level order.

    Partials are consumed in :func:`shard_units` order regardless of
    worker completion order, so recorder rows, checks, the overhead
    denominator (level 0's message count), and the report artifact are
    byte-identical to the sequential run.
    """
    by_level = {p["intensity"]: p for p in partials}
    recorder = SeriesRecorder(x_label="fault_intensity")
    result = ExperimentResult(
        experiment="E13",
        title="availability under scheduled chaos (self-healing runtime)",
        claim=(
            "with retry/rebind and class-manager recovery, scheduled host "
            "and object crashes cost repair traffic but no failed calls "
            "and no lost state"
        ),
        recorder=recorder,
    )
    levels = shard_units(quick=quick, faults=faults)
    baseline_messages = None
    total_clock = 0.0
    total_events = 0
    report_rows = []
    saw_chaos = False
    for intensity in levels:
        out = by_level[intensity]
        stats = out["stats"]
        summary = out["summary"]
        total_clock += out["sim_clock"]
        total_events += out["sim_events"]
        if intensity == 0.0 and baseline_messages is None:
            baseline_messages = out["repair_messages"]
        overhead = (
            out["repair_messages"] / baseline_messages
            if baseline_messages
            else 0.0
        )
        recorder.add(
            intensity,
            injected=summary["injected"],
            lost=summary["objects_lost"],
            recovered=summary["objects_recovered"],
            success_rate=stats.success_rate,
            recovery_ms_mean=round(summary["recovery_time_mean"], 3),
            recovery_ms_max=round(summary["recovery_time_max"], 3),
            repair_overhead=round(overhead, 3),
        )
        result.check(
            f"intensity={intensity:g}: all calls succeeded",
            stats.success_rate == 1.0,
            f"{stats.calls_succeeded}/{stats.calls_issued}"
            + (f"; first error: {stats.errors[0]}" if stats.errors else ""),
        )
        result.check(
            f"intensity={intensity:g}: state preserved through recovery",
            out["state_intact"],
        )
        lost = set(out["lost"])
        recovered = set(out["recovered"])
        result.check(
            f"intensity={intensity:g}: every lost object was recovered",
            lost <= recovered,
            f"lost={len(lost)} recovered={len(recovered & lost)}",
        )
        if intensity > 0.0 and summary["injected"] > 0:
            saw_chaos = True
        report_rows.append(
            {
                "intensity": intensity,
                "calls_issued": stats.calls_issued,
                "calls_succeeded": stats.calls_succeeded,
                "success_rate": stats.success_rate,
                "repair_overhead": round(overhead, 6),
                "fault_log": out["fault_log_json"],
            }
        )
    result.check(
        "chaos plan injected faults at non-zero intensity (mechanism exercised)",
        saw_chaos,
    )
    result.sim_clock = total_clock
    result.sim_events = total_events
    if report is not None:
        os.makedirs(report, exist_ok=True)
        path = os.path.join(report, f"e13-availability-seed{seed}.json")
        with open(path, "w") as fh:
            json.dump(
                {"seed": seed, "quick": quick, "levels": report_rows},
                fh,
                indent=2,
                sort_keys=True,
            )
        result.notes = f"report: {path}"
    return result


def run(
    quick: bool = True,
    seed: int = 0,
    faults: Optional[float] = None,
    report: Optional[str] = None,
) -> ExperimentResult:
    """Sweep fault intensity; verify availability stays at 100%.

    ``faults`` (the runner's ``--faults`` flag) replaces the sweep with
    [0, faults]: a control level plus one chosen intensity.  ``report``
    names a directory for the JSON availability/FaultLog artifact.

    Composed from the shard protocol, so the sequential run IS the
    ``--shards 1`` reference the sharded runner reproduces.
    """
    partials = [
        shard_measure(intensity, quick=quick, seed=seed, faults=faults)
        for intensity in shard_units(quick=quick, faults=faults)
    ]
    return shard_finish(partials, quick=quick, seed=seed, faults=faults, report=report)


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
