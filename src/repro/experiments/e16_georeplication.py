"""E16 -- geo-replication: local reads stay flat, WAN traffic drops,
repair yields to foreground load.

Claim (section 4.3 + the section-5 locality story): replicating an
object is "a matter of creating an Object Address with multiple
physical addresses in its list" -- and once the binding/call path orders
those addresses by link class, replication buys *locality*: as the
replica count grows toward one-per-jurisdiction, same-jurisdiction read
latency stays flat (every site reads its own copy), cross-jurisdiction
wire traffic falls measurably, and a regional partition stops mattering
to readers whose site holds a replica.  Meanwhile the background repair
service restores crashed group members without taxing the foreground:
its negative-priority traffic is shed first by admission control, so
foreground goodput under overload is within 5% of a no-repair run --
and the group still comes back to full strength with all its state.

Method, phase A (locality): a 3-jurisdiction system with an immutable
read-any ``GeoStore`` replicated at r = 1..3.  One patient client per
site reads in a paced loop; mid-window a timed partition cuts the
primary replica's site off from a neighbour.  Per r: mean local /
overall latency, WAN messages per read (``NetworkStats.by_class``),
and mean latency of reads issued during the partition window.

Method, phase B (repair yields): a replicated serial store (2 ms
exclusive service per read) under admission control takes open-loop
foreground reads at ``mult`` x capacity from one site.  A remote
replica crashes mid-window in BOTH arms; only the *on* arm runs
:class:`~repro.replication.repair.ReplicaRepairService`.  Goodput is
compared across arms; the on arm must also end with the group regrown
to 3 live members each holding every key.  Every runtime must settle
the flow-era identity (requests == replies + timeouts + failures +
cancelled + shed).  All simulated time from seeded state:
byte-identical across ``--jobs`` and ``--shards``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.errors import LegionError, Overloaded
from repro.experiments.common import ExperimentResult, uniform_sites
from repro.flow import FlowConfig
from repro.metrics.counters import ComponentKind
from repro.metrics.recorder import SeriesRecorder
from repro.net.latency import LinkClass
from repro.core.runtime import RetryPolicy
from repro.replication import ReplicaRepairService, ReplicaSession, enable_replication
from repro.replication.store import ReplicatedStoreImpl
from repro.security.environment import CallEnvironment
from repro.simkernel.futures import gather
from repro.simkernel.kernel import Timeout
from repro.system.legion import LegionSystem

N_SITES = 3
HOSTS_PER_SITE = 2
#: The immutable dataset every replica is seeded with (then frozen).
KEYS = [f"k{i}" for i in range(6)]

# -- phase A (locality) knobs -------------------------------------------------
READ_PACE = 4.0
READ_TIMEOUT = 400.0
#: Partition window, relative to the measurement start: long enough that
#: every sweep point issues reads inside it (the r=3 run finishes in
#: ~170 ms), short enough that patient retries ride it out.
PART_AT = 30.0
PART_LEN = 100.0
#: Readers ride out the timed partition instead of failing: wide backoff,
#: ``retry_partitions``, zero jitter for byte-identical schedules.
PATIENT = RetryPolicy(
    max_attempts=12,
    base_backoff=10.0,
    backoff_factor=2.0,
    max_backoff=200.0,
    jitter=0.0,
    budget=5_000.0,
    retry_partitions=True,
    retry_resolution_failures=True,
)

# -- phase B (repair yields) knobs --------------------------------------------
SERVICE_TIME = 2.0
CAPACITY = 1.0 / SERVICE_TIME
FG_CLIENTS = 4
FG_TIMEOUT = 60.0
#: Same regime as E15: serial admission, bounded queue, pushback sheds,
#: caller credit windows; infrastructure is never shed.
FLOW = FlowConfig(
    capacity=1,
    queue_limit=14,
    service_estimate=SERVICE_TIME,
    admit_kinds=frozenset({ComponentKind.APPLICATION}),
    credit_window=8,
)
#: The remote replica dies this long after the measured window opens.
CRASH_AT = 40.0
REPAIR_INTERVAL = 60.0
REPAIR_STAGGER = 7.0


def _build_store(seed: int, replicas: int, flow, service_time: float):
    """A 3-site system with replication enabled and one seeded read-any
    GeoStore group of ``replicas`` members; returns (system, directory,
    class binding, group binding)."""
    system = LegionSystem.build(
        uniform_sites(N_SITES, HOSTS_PER_SITE), seed=seed, flow=flow
    )
    directory = enable_replication(system)
    cls = system.create_class(
        "GeoStore",
        factory=lambda: ReplicatedStoreImpl(service_time=service_time),
        consistency="read-any",
    )
    binding = system.call(cls.loid, "CreateReplicated", replicas, "first", 1)
    session = ReplicaSession(system.console.runtime, binding, "read-any")
    system.kernel.run_until_complete(
        system.spawn(
            session.seed((key, f"value:{key}") for key in KEYS), name="e16-seed"
        )
    )
    return system, directory, cls, binding


def _all_runtimes(system, clients):
    servers = (
        list(system.host_servers.values())
        + list(system.magistrates.values())
        + list(system.agents.values())
        + [system.console]
        + list(clients)
    )
    for host_server in system.host_servers.values():
        for entry in host_server.impl.processes.running():
            servers.append(entry.server)
    return [s.runtime for s in servers]


def _settles(runtime) -> bool:
    """The RuntimeStats settlement identity, shed included."""
    s = runtime.stats
    settled = (
        s.replies_received
        + s.timeouts
        + s.delivery_failures
        + s.cancelled
        + s.shed
    )
    return s.requests_sent == settled and not runtime._pending


# ---------------------------------------------------------------- phase A


def _measure_locality(replicas: int, seed: int, quick: bool) -> Dict[str, Any]:
    """One locality sweep point: paced reads from every site at ``r``
    replicas, with a timed regional partition mid-window."""
    reads = 40 if quick else 120
    system, _directory, _cls, binding = _build_store(
        seed, replicas, flow=None, service_time=0.0
    )
    kernel = system.kernel
    latency = system.network.latency
    replica_sites = sorted(
        {latency.site_of(e.host) for e in binding.address.elements}
    )

    clients = []
    for spec in system.sites:
        client = system.new_client(f"e16-{spec.name}", site=spec.name)
        client.runtime.retry_policy = PATIENT
        clients.append(client)
    for client in clients:  # warm bindings: resolution traffic is not a read
        system.call(binding.loid, "Get", KEYS[0], client=client)
    system.reset_measurements()

    records: List[Dict[str, Any]] = []

    def reader(client, site_name):
        for i in range(reads):
            rec: Dict[str, Any] = {
                "site": site_name,
                "issue": kernel.now,
                "done": None,
                "ok": False,
            }
            records.append(rec)
            try:
                yield from client.runtime.invoke(
                    binding.loid, "Get", KEYS[i % len(KEYS)], timeout=READ_TIMEOUT
                )
                rec["ok"] = True
            except LegionError as exc:
                rec["error"] = type(exc).__name__
            rec["done"] = kernel.now
            yield Timeout(READ_PACE)

    # The partition that should hurt r=1 and not r=3: cut the primary
    # replica's site off from the next site in ring order.
    primary_site = latency.site_of(binding.address.elements[0].host)
    names = [spec.name for spec in system.sites]
    neighbour = names[(names.index(primary_site) + 1) % len(names)]

    def chaos():
        yield Timeout(PART_AT)
        system.network.partition(primary_site, neighbour)
        yield Timeout(PART_LEN)
        system.network.heal(primary_site, neighbour)

    start = kernel.now
    futures = [
        system.spawn(reader(client, spec.name), name=f"e16-read-{spec.name}")
        for client, spec in zip(clients, system.sites)
    ]
    futures.append(system.spawn(chaos(), name="e16-partition"))
    kernel.run_until_complete(gather(futures), max_events=50_000_000)
    kernel.run()  # late bounces and timers

    def mean(rows):
        return (
            sum(r["done"] - r["issue"] for r in rows) / len(rows)
            if rows
            else 0.0
        )

    local = [r for r in records if r["site"] in replica_sites]
    w0, w1 = start + PART_AT, start + PART_AT + PART_LEN
    in_part = [r for r in records if w0 <= r["issue"] <= w1]
    wan = system.network.stats.by_class[LinkClass.WIDE_AREA]
    return {
        "replicas": replicas,
        "replica_sites": replica_sites,
        "reads": len(records),
        "failed": sum(1 for r in records if not r["ok"]),
        "local_mean": mean(local),
        "overall_mean": mean(records),
        "partition_mean": mean(in_part),
        "partition_reads": len(in_part),
        "wan_msgs": wan,
        "wan_per_read": wan / len(records) if records else 0.0,
        "settled": all(_settles(rt) for rt in _all_runtimes(system, clients)),
        "sim_clock": kernel.now,
        "sim_events": kernel.events_executed,
    }


# ---------------------------------------------------------------- phase B


def _drive(system, clients, target, interval: float, duration: float):
    """Open-loop Get() traffic with per-call outcome records (E15 shape)."""
    kernel = system.kernel
    records: List[Dict[str, Any]] = []

    def one_call(client, rec, key):
        try:
            yield from client.runtime.invoke(target, "Get", key, timeout=FG_TIMEOUT)
            rec["outcome"] = "ok"
        except Overloaded:
            rec["outcome"] = "shed"
        except LegionError as exc:
            rec["outcome"] = "failed"
            rec["error"] = type(exc).__name__
        rec["done"] = kernel.now

    def loop(client, offset):
        if offset > 0.0:
            yield Timeout(offset)
        end = kernel.now + duration
        calls = []
        n = 0
        while kernel.now < end:
            rec: Dict[str, Any] = {
                "issue": kernel.now,
                "done": None,
                "outcome": "pending",
            }
            records.append(rec)
            calls.append(
                kernel.spawn(
                    one_call(client, rec, KEYS[n % len(KEYS)]),
                    name=f"e16-call-{client.loid}",
                )
            )
            n += 1
            yield Timeout(interval)
        for fut in calls:  # drain: every fired call must settle
            yield fut

    futures = [
        kernel.spawn(
            loop(client, i * interval / len(clients)),
            name=f"e16-loop-{client.loid}",
        )
        for i, client in enumerate(clients)
    ]
    return gather(futures), records


def _measure_repair(arm: str, seed: int, quick: bool, mult: int) -> Dict[str, Any]:
    """One repair arm: overloaded foreground reads plus a mid-window
    remote-replica crash; ``arm == "on"`` also runs the repair service."""
    measure = 300.0 if quick else 600.0
    warmup = 100.0
    system, directory, cls, binding = _build_store(
        seed, N_SITES, flow=FLOW, service_time=SERVICE_TIME
    )
    kernel = system.kernel
    latency = system.network.latency
    fg_site = system.sites[0].name
    clients = [
        system.new_client(f"e16-fg-{i}", site=fg_site) for i in range(FG_CLIENTS)
    ]
    for client in clients:  # warm bindings before the measured window
        system.call(binding.loid, "Get", KEYS[0], client=client)

    service = None
    if arm == "on":
        service = ReplicaRepairService(
            system, interval=REPAIR_INTERVAL, stagger=REPAIR_STAGGER
        )
        service.start()
    system.reset_measurements()

    # The victim: the replica one site over from the foreground -- remote
    # to every foreground read, so both arms' foreground paths only differ
    # by the repair traffic itself.
    victim_site = system.sites[1].name
    victim = next(
        e
        for e in binding.address.elements
        if latency.site_of(e.host) == victim_site
    )

    def chaos():
        yield Timeout(warmup + CRASH_AT)
        system.host_servers[victim.host].impl.crash_object(
            binding.loid, "e16: replica crash"
        )

    interval = FG_CLIENTS / (mult * CAPACITY)
    start = kernel.now
    done, records = _drive(system, clients, binding.loid, interval, warmup + measure)
    chaos_fut = system.spawn(chaos(), name="e16-crash")
    kernel.run_until_complete(gather([done, chaos_fut]), max_events=50_000_000)
    if service is not None:
        service.stop()  # the sweep loops never exit; stop before draining
    kernel.run()  # drain the backlog and late replies

    repair_clients: List[Any] = []
    regrows = 0
    restored = False
    replica_keys: List[int] = []
    if service is not None:
        # Deterministic final passes: whatever the in-window sweeps left
        # undone (the measured window may end mid-sweep) completes here.
        for site in directory.sites():
            kernel.run_until_complete(
                system.spawn(service.sweep_site(site), name=f"e16-final-{site}")
            )
        kernel.run()
        repair_clients = list(service._clients.values())
        final = system.call(cls.loid, "GetBinding", binding.loid)
        # Count regrown members from group membership, not the service's
        # action log: a sweep killed at window end mid-AddReplica still
        # completes the (seeded) grow server-side, with no client left
        # to record the action.
        original = set(binding.address.elements)
        regrows = sum(1 for e in final.address.elements if e not in original)
        restored = len(final.address.elements) == N_SITES

        def audit():
            runtime = system.console.runtime
            env = CallEnvironment.originating(runtime.loid)
            for element in final.address.elements:
                # READ_TIMEOUT, not FG_TIMEOUT: a wide-area round trip
                # (80 ms) alone exceeds the foreground deadline.
                count = yield from runtime.call_element(
                    element, binding.loid, "Size", (), env, READ_TIMEOUT, 0
                )
                replica_keys.append(count)

        kernel.run_until_complete(system.spawn(audit(), name="e16-audit"))

    w0, w1 = start + warmup, start + warmup + measure
    goodput = (
        sum(
            1
            for r in records
            if r["outcome"] == "ok" and w0 <= r["done"] <= w1
        )
        / measure
    )
    outcomes = {"ok": 0, "shed": 0, "failed": 0}
    for rec in records:
        outcomes[rec["outcome"]] += 1
    runtimes = _all_runtimes(system, clients + repair_clients)
    return {
        "arm": arm,
        "mult": mult,
        "goodput": goodput,
        "outcomes": outcomes,
        "issued": len(records),
        "regrows": regrows,
        "restored": restored,
        "replica_keys": replica_keys,
        "settled": all(_settles(rt) for rt in runtimes),
        "sim_clock": kernel.now,
        "sim_events": kernel.events_executed,
    }


# ---------------------------------------------------------- shard protocol


def shard_units(
    quick: bool = True,
    replicas: Optional[int] = None,
    overload: Optional[float] = None,
) -> list:
    """The independent work units of one E16 sweep.

    Phase A is one unit per replica count (1, 2, top); phase B is one
    unit per repair arm.  Each unit builds its own 3-site system from
    the seed and shares nothing, so units may run in separate worker
    processes (``--shards N``) in any order.
    """
    top = min(N_SITES * HOSTS_PER_SITE, max(2, int(replicas))) if replicas else N_SITES
    units = [("locality", r) for r in sorted({1, 2, top})]
    units += [("repair", "off"), ("repair", "on")]
    return units


def shard_measure(
    unit,
    quick: bool = True,
    seed: int = 0,
    replicas: Optional[int] = None,
    overload: Optional[float] = None,
) -> Dict[str, Any]:
    """Run one unit; the returned dict is picklable."""
    kind, param = unit
    if kind == "locality":
        out = _measure_locality(param, seed, quick)
    else:
        mult = max(2, int(overload)) if overload else 4
        out = _measure_repair(param, seed, quick, mult)
    out["kind"] = kind
    out["param"] = param
    return out


def shard_finish(
    partials,
    quick: bool = True,
    seed: int = 0,
    replicas: Optional[int] = None,
    overload: Optional[float] = None,
    report: Optional[str] = None,
) -> ExperimentResult:
    """Merge unit partials into the E16 result, in deterministic unit
    order, so reports are byte-identical at any shard count."""
    by_unit = {(p["kind"], p["param"]): p for p in partials}
    recorder = SeriesRecorder(x_label="r_or_x")
    result = ExperimentResult(
        experiment="E16",
        title="geo-replication: locality, WAN traffic, repair that yields",
        claim=(
            "as replicas approach one-per-jurisdiction, same-jurisdiction "
            "read latency stays flat, cross-jurisdiction traffic drops, and "
            "a regional partition stops mattering to local readers; "
            "background repair restores a crashed replica with all state "
            "while costing foreground goodput under overload no more than 5%"
        ),
        recorder=recorder,
    )
    counts = [p for k, p in shard_units(quick=quick, replicas=replicas) if k == "locality"]
    top = counts[-1]

    total_clock, total_events = 0.0, 0
    report_rows = []
    for r in counts:
        out = by_unit[("locality", r)]
        total_clock += out["sim_clock"]
        total_events += out["sim_events"]
        recorder.add(
            r,
            local_ms=round(out["local_mean"], 2),
            all_ms=round(out["overall_mean"], 2),
            part_ms=round(out["partition_mean"], 2),
            wan_per_read=round(out["wan_per_read"], 2),
        )
        result.check(
            f"r={r}: every read succeeds through the partition",
            out["failed"] == 0 and out["reads"] > 0,
            f"{out['reads'] - out['failed']}/{out['reads']} ok",
        )
        result.check(
            f"r={r}: every runtime settles",
            out["settled"],
        )
        result.check(
            f"r={r}: partition window saw reads",
            out["partition_reads"] > 0,
            f"{out['partition_reads']} reads issued in window",
        )
        report_rows.append(
            {
                "unit": f"locality-r{r}",
                "replicas": r,
                "replica_sites": out["replica_sites"],
                "reads": out["reads"],
                "local_mean": out["local_mean"],
                "overall_mean": out["overall_mean"],
                "partition_mean": out["partition_mean"],
                "wan_msgs": out["wan_msgs"],
                "wan_per_read": out["wan_per_read"],
            }
        )

    one, best = by_unit[("locality", 1)], by_unit[("locality", top)]
    result.check(
        f"r={top}: same-jurisdiction latency flat vs r=1 (<= 1.05x + 0.05 ms)",
        best["local_mean"] <= one["local_mean"] * 1.05 + 0.05,
        f"{best['local_mean']:.2f} ms vs {one['local_mean']:.2f} ms",
    )
    result.check(
        f"r={top}: overall read latency improves vs r=1",
        best["overall_mean"] < one["overall_mean"],
        f"{best['overall_mean']:.2f} ms vs {one['overall_mean']:.2f} ms",
    )
    result.check(
        f"r={top}: cross-jurisdiction traffic < 50% of r=1 (per read)",
        best["wan_per_read"] < 0.5 * one["wan_per_read"],
        f"{best['wan_per_read']:.2f} vs {one['wan_per_read']:.2f} WAN msgs/read",
    )
    result.check(
        f"r={top}: partition-window latency < 50% of r=1",
        best["partition_mean"] < 0.5 * one["partition_mean"],
        f"{best['partition_mean']:.2f} ms vs {one['partition_mean']:.2f} ms",
    )

    off, on = by_unit[("repair", "off")], by_unit[("repair", "on")]
    mult = off["mult"]
    total_clock += off["sim_clock"] + on["sim_clock"]
    total_events += off["sim_events"] + on["sim_events"]
    recorder.add(
        mult,
        goodput_off=round(off["goodput"] / CAPACITY, 3),
        goodput_on=round(on["goodput"] / CAPACITY, 3),
        regrows=on["regrows"],
    )
    for arm, out in (("off", off), ("on", on)):
        result.check(
            f"x{mult} repair-{arm}: every request settles (shed included)",
            out["settled"],
            f"outcomes={out['outcomes']}",
        )
    result.check(
        f"x{mult} repair-off: foreground keeps >= 80% of capacity",
        off["goodput"] >= 0.8 * CAPACITY,
        f"{off['goodput'] / CAPACITY:.2f}x capacity",
    )
    result.check(
        f"x{mult} repair-on: goodput within 5% of the no-repair run",
        on["goodput"] >= 0.95 * off["goodput"],
        f"{on['goodput']:.3f} vs {off['goodput']:.3f} ok/ms",
    )
    result.check(
        "repair-on: crashed replica regrown (>= 1 regrow action)",
        on["regrows"] >= 1,
        f"{on['regrows']} regrows",
    )
    result.check(
        f"repair-on: group restored to {N_SITES} live members",
        on["restored"],
    )
    result.check(
        "repair-on: every member holds the full dataset",
        len(on["replica_keys"]) == N_SITES
        and all(count == len(KEYS) for count in on["replica_keys"]),
        f"key counts {on['replica_keys']} (want {len(KEYS)} each)",
    )
    report_rows.append(
        {
            "unit": "repair",
            "mult": mult,
            "goodput_off": off["goodput"],
            "goodput_on": on["goodput"],
            "outcomes_off": off["outcomes"],
            "outcomes_on": on["outcomes"],
            "regrows": on["regrows"],
            "replica_keys": on["replica_keys"],
        }
    )
    result.sim_clock = total_clock
    result.sim_events = total_events

    if report is not None:
        os.makedirs(report, exist_ok=True)
        path = os.path.join(report, f"e16-georeplication-seed{seed}.json")
        with open(path, "w") as fh:
            json.dump(
                {"seed": seed, "quick": quick, "units": report_rows},
                fh,
                indent=2,
                sort_keys=True,
            )
        result.notes = f"report: {path}"
    return result


def run(
    quick: bool = True,
    seed: int = 0,
    replicas: Optional[int] = None,
    overload: Optional[float] = None,
    report: Optional[str] = None,
) -> ExperimentResult:
    """Sweep replica counts (phase A) and repair arms (phase B).

    ``replicas`` (the runner's ``--replicas`` flag) overrides the top
    replica count; ``overload`` sets the phase-B offered-load multiplier;
    ``report`` names a directory for the JSON artifact.

    Composed from the shard protocol, so the sequential run IS the
    ``--shards 1`` reference the sharded runner reproduces.
    """
    units = shard_units(quick=quick, replicas=replicas)
    partials = [
        shard_measure(
            unit, quick=quick, seed=seed, replicas=replicas, overload=overload
        )
        for unit in units
    ]
    return shard_finish(
        partials,
        quick=quick,
        seed=seed,
        replicas=replicas,
        overload=overload,
        report=report,
    )


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
