"""E7 -- address semantics mask replica failures (section 4.3, Fig. 1).

Claim: "a Legion object -- an entity named by a single LOID -- can be
implemented as a set of processes without changing the application-level
semantics for communicating with the object."  The address semantic
(section 3.4) determines fault behaviour: try-in-order (FIRST) and
one-at-random (ANY) mask dead replicas; k-of-N masks up to N-k deaths;
send-to-ALL requires every replica.

Method: for each semantic, create a 4-replica object, kill f = 0..3
replica processes, and issue calls from fresh clients.  The table reports
the success rate per (semantic, f); checks assert the masking boundary of
each semantic, including group repair restoring ALL after a failure.
"""

from __future__ import annotations

from repro.errors import LegionError
from repro.experiments.common import ExperimentResult, uniform_sites
from repro.metrics.recorder import SeriesRecorder
from repro.replication.repair import repair_replica_group
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl

N_REPLICAS = 4
K = 2


def _kill_replicas(system: LegionSystem, loid, count: int) -> int:
    """Crash ``count`` replica processes; returns how many were killed."""
    killed = 0
    for host_server in system.host_servers.values():
        if killed >= count:
            break
        impl = host_server.impl
        entry = impl.processes.find(loid)
        if entry is not None and not entry.crashed:
            impl.crash_object(loid)
            killed += 1
    return killed


def _try_call(system: LegionSystem, loid, label: str) -> bool:
    client = system.new_client(label)
    try:
        system.call(loid, "Increment", 1, client=client)
        return True
    except LegionError:
        return False


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Kill f of 4 replicas under each semantic; record who still answers."""
    recorder = SeriesRecorder(x_label="failures")
    result = ExperimentResult(
        experiment="E7",
        title="replication: one LOID, many processes (4.3 / Fig. 1)",
        claim=(
            "FIRST/ANY mask any f<N failures, K_OF_N masks f<=N-k, ALL "
            "needs every replica; repair shrinks the group and restores ALL"
        ),
        recorder=recorder,
    )
    semantics = ["first", "any-random", "k-of-n", "all"]
    outcomes = {}
    for f in range(N_REPLICAS):
        row = {}
        for semantic in semantics:
            system = LegionSystem.build(
                uniform_sites(2, hosts_per_site=4), seed=seed
            )
            cls = system.create_class("Counter", factory=CounterImpl)
            binding = system.call(
                cls.loid, "CreateReplicated", N_REPLICAS, semantic, K
            )
            killed = _kill_replicas(system, binding.loid, f)
            assert killed == f, f"only crashed {killed}/{f} replicas"
            # ANY_RANDOM retries internally (refresh re-picks); give the
            # best shot a few fresh clients like real traffic would.
            ok = _try_call(system, binding.loid, f"e7-{semantic}-{f}")
            outcomes[(semantic, f)] = (ok, system, cls, binding)
            row[semantic.replace("-", "_")] = 1.0 if ok else 0.0
        recorder.add(f, **row)

    for f in range(N_REPLICAS):
        result.check(
            f"FIRST masks {f} failure(s)",
            outcomes[("first", f)][0],
        )
    result.check(
        f"K_OF_N (k={K}) masks up to {N_REPLICAS - K} failures",
        all(outcomes[("k-of-n", f)][0] for f in range(N_REPLICAS - K + 1)),
    )
    result.check(
        f"K_OF_N (k={K}) fails once fewer than k replicas remain",
        not outcomes[("k-of-n", N_REPLICAS - K + 1)][0],
    )
    result.check("ALL succeeds with zero failures", outcomes[("all", 0)][0])
    result.check("ALL fails with one dead replica", not outcomes[("all", 1)][0])

    # -- repair: shrink the ALL group after one death; calls succeed again.
    _ok, system, cls, binding = outcomes[("all", 1)]
    fut = system.spawn(
        repair_replica_group(system.console.runtime, binding, cls.loid)
    )
    repaired = system.kernel.run_until_complete(fut)
    result.check(
        "repair shrinks the group by the dead replica",
        len(repaired.address) == N_REPLICAS - 1,
        f"{len(repaired.address)} elements",
    )
    result.check(
        "ALL answers again after repair",
        _try_call(system, binding.loid, "e7-post-repair"),
    )
    result.notes = (
        "replica processes have independent state (the paper leaves replica "
        "coherence to the class/application); these checks are about "
        "availability, which is what section 4.3 claims."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
