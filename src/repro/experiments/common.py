"""Shared experiment machinery: results, checks, and testbed helpers."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics.recorder import SeriesRecorder
from repro.naming.binding import Binding
from repro.naming.loid import LOID
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl


@dataclass
class Check:
    """One pass/fail assertion about a claimed shape."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.name}{detail}"


@dataclass
class ExperimentResult:
    """One experiment's outcome: the table, the checks, the claim."""

    experiment: str
    title: str
    claim: str
    recorder: SeriesRecorder
    checks: List[Check] = field(default_factory=list)
    notes: str = ""
    #: Optional determinism fingerprints (not rendered): the final
    #: simulated clock and total events executed by the experiment's
    #: kernel(s).  Two runs with the same (quick, seed) must agree on
    #: these bit-for-bit -- the determinism regression test relies on it.
    sim_clock: Optional[float] = None
    sim_events: Optional[int] = None

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one assertion."""
        self.checks.append(Check(name, bool(passed), detail))

    @property
    def passed(self) -> bool:
        """True when every recorded check passed."""
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        """The printable report: claim, table, checks."""
        lines = [
            f"== {self.experiment}: {self.title} ==",
            f"claim: {self.claim}",
            "",
            self.recorder.to_table(),
            "",
        ]
        lines.extend(str(c) for c in self.checks)
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)


def trace_recorder(system: LegionSystem, trace: Optional[str]):
    """Install causal tracing on ``system`` when ``trace`` names an output
    directory (the ``--trace`` flag); returns the recorder, or None.

    Experiments call this once per built system and slice
    ``recorder.spans`` around their phases; the audits and the exported
    Chrome trace add *checks and artifacts* without perturbing any counted
    metric (spans live outside the message plane).
    """
    if trace is None:
        return None
    return system.enable_tracing()


def export_trace(recorder, trace: str, experiment: str, seed: int) -> str:
    """Write spans (a recorder, or a plain span list) as Chrome trace JSON.

    Returns the path (``traces/e1-seed0.trace.json`` style), which the
    experiment appends to its notes so the report says where to look.
    """
    from repro.trace.export import write_chrome_trace

    os.makedirs(trace, exist_ok=True)
    path = os.path.join(trace, f"{experiment.lower()}-seed{seed}.trace.json")
    write_chrome_trace(getattr(recorder, "spans", recorder), path)
    return path


def count_messages(system: LegionSystem, fn: Callable[[], Any]) -> Tuple[Any, int]:
    """Run ``fn`` and return (its result, network messages it generated)."""
    before = system.network.stats.messages_sent
    result = fn()
    return result, system.network.stats.messages_sent - before


def uniform_sites(n_sites: int, hosts_per_site: int, prefix: str = "site") -> List[SiteSpec]:
    """N identical workstation sites."""
    return [
        SiteSpec(name=f"{prefix}{i}", hosts=hosts_per_site) for i in range(n_sites)
    ]


def populate(
    system: LegionSystem,
    n_classes: int,
    instances_per_class: int,
    name_prefix: str = "app",
) -> Dict[LOID, List[Binding]]:
    """Create ``n_classes`` Counter classes × ``instances_per_class`` each.

    Returns class LOID → list of instance bindings.  Instances spread over
    magistrates round-robin via the classes' inherited candidate lists.
    """
    out: Dict[LOID, List[Binding]] = {}
    for c in range(n_classes):
        cls = system.create_class(
            f"{name_prefix}{c}",
            instance_factory="app.counter",
            factory=CounterImpl if c == 0 else None,
        )
        instances = [
            system.create_instance(cls.loid) for _ in range(instances_per_class)
        ]
        out[cls.loid] = instances
    return out


def site_of_binding(system: LegionSystem, binding: Binding) -> Optional[str]:
    """The site of a binding's primary element (None if unassigned)."""
    return system.network.latency.site_of(binding.address.primary().host)
