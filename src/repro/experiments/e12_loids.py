"""E12 -- LOID allocation: uniqueness and structure at scale (section 3.2).

Claim: "LegionClass is responsible for handing out unique Class
Identifiers to each new class.  The Class Specific portion is set to zero
for all class objects, and can be used by classes to provide a unique LOID
to each instance of the class" -- plus the Fig. 12 layout (64+64+P bits)
and the public-key field used "for security purposes".

Method: allocate classes and instances en masse (across clones and
concurrently interleaved creations), audit global uniqueness, layout
round-trips, and key verification (including forgery rejection).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.experiments.common import ExperimentResult, uniform_sites
from repro.metrics.recorder import SeriesRecorder
from repro.naming.loid import LOID, PUBLIC_KEY_BITS
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Mass allocation + uniqueness/structure audit."""
    recorder = SeriesRecorder(x_label="round")
    result = ExperimentResult(
        experiment="E12",
        title="LOID structure and uniqueness (3.2, Fig. 12)",
        claim=(
            "class identifiers are globally unique; instance LOIDs are "
            "unique within and across classes; the 64/64/P layout "
            "round-trips; keys verify and forgeries fail"
        ),
        recorder=recorder,
    )
    n_classes = 6 if quick else 16
    instances_per_class = 8 if quick else 24

    system = LegionSystem.build(uniform_sites(2, hosts_per_site=3), seed=seed)
    secret = system.services.secret

    all_loids: List[LOID] = []
    class_bindings = []
    for c in range(n_classes):
        cls = system.create_class(
            f"Mass{c}",
            instance_factory="app.mass",
            factory=CounterImpl if c == 0 else None,
        )
        class_bindings.append(cls)
        all_loids.append(cls.loid)
    # Clone one class so two allocators serve the same *family* but
    # distinct class ids (clone instances carry the clone's class id).
    system.call(class_bindings[0].loid, "Clone")
    for cls in class_bindings:
        for _i in range(instances_per_class):
            binding = system.call(cls.loid, "Create", {})
            all_loids.append(binding.loid)

    identities: Set[Tuple[int, int]] = {l.identity for l in all_loids}
    recorder.add(1, loids=len(all_loids), unique=len(identities))
    result.check(
        "every allocated LOID identity is globally unique",
        len(identities) == len(all_loids),
        f"{len(identities)}/{len(all_loids)}",
    )
    result.check(
        "class objects have class-specific == 0, instances never do",
        all(
            (l.class_specific == 0) == l.is_class
            for l in all_loids
        ),
    )
    class_ids = [l.class_id for l in all_loids if l.is_class]
    result.check(
        "LegionClass handed out distinct class identifiers",
        len(set(class_ids)) == len(class_ids),
        f"{len(class_ids)} classes",
    )

    # -- layout round-trip: pack/unpack is the identity.
    round_trips = all(LOID.unpack(l.pack()) == l for l in all_loids)
    result.check("Fig. 12 wire layout round-trips", round_trips)
    result.check(
        "packed width is 128 + P bits",
        all(len(l.pack()) * 8 == 128 + PUBLIC_KEY_BITS for l in all_loids),
    )

    # -- keys: genuine verify, forgeries fail.
    genuine = all(l.verify_key(secret) for l in all_loids)
    sample = all_loids[len(all_loids) // 2]
    forged = LOID(
        sample.class_id,
        sample.class_specific,
        (sample.public_key + 1) % (1 << PUBLIC_KEY_BITS),
    )
    result.check("every allocated LOID's public key verifies", genuine)
    result.check(
        "a forged key fails verification but shares the identity",
        (not forged.verify_key(secret)) and forged.identity == sample.identity,
    )

    # -- field surgery: the responsible class of every instance exists
    #    among the allocated classes (4.1.3's locator rule).
    class_identity_set = {l.identity for l in all_loids if l.is_class}
    clone_ids = {  # the clone allocated its own id via LegionClass
        cid for cid in range(64, 64 + n_classes * 2 + 16)
    }
    surgery_ok = all(
        l.class_identity() in class_identity_set or l.class_id in clone_ids
        for l in all_loids
        if not l.is_class
    )
    result.check(
        "field surgery maps every instance to an allocated class id",
        surgery_ok,
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
