"""E11 -- site autonomy: jurisdictions enforce their own trust (2.2, Fig. 9).

Claim: "sites can offer their resources to Legion, and can insist that
they be managed only by objects that the sites trust ...  The DOE can
write its own Magistrate, and insist via the class mechanism that all
objects that the DOE owns execute only on Magistrates that it trusts.
Further, it can ensure that their Magistrates only use Host Objects that
have been certified."

Method: a three-site system where the "doe" site runs a magistrate
subclass admitting only certified implementations and trusted principals.
Untrusted creations are refused at the boundary; the same requests succeed
at the open site; the refusals are invisible to other traffic.
"""

from __future__ import annotations

from typing import Set

from repro import errors
from repro.experiments.common import ExperimentResult, uniform_sites
from repro.jurisdiction.magistrate import MagistrateImpl
from repro.metrics.recorder import SeriesRecorder
from repro.persistence.opr import OPRecord
from repro.security.mayi import TrustSetPolicy
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


class DOEMagistrateImpl(MagistrateImpl):
    """Fig. 9's DOEMagistrate: certified implementations only, and a
    responsible-agent trust set enforced through MayI."""

    def __init__(self, jurisdiction, certified: Set[str], **kwargs) -> None:
        super().__init__(jurisdiction, **kwargs)
        self.certified = set(certified)
        self.trust = TrustSetPolicy()
        self.mayi_policy = self.trust

    def admit_opr(self, opr: OPRecord) -> bool:
        return all(factory in self.certified for factory, _init in opr.factory_chain)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Swap in a DOE magistrate; verify boundary enforcement."""
    recorder = SeriesRecorder(x_label="case")
    result = ExperimentResult(
        experiment="E11",
        title="site autonomy via magistrates and hosts (2.2, Fig. 9)",
        claim=(
            "a site's own magistrate refuses untrusted principals and "
            "uncertified implementations; open sites are unaffected"
        ),
        recorder=recorder,
    )
    system = LegionSystem.build(uniform_sites(3, hosts_per_site=2), seed=seed)

    # Replace the 'site1' magistrate implementation with a DOE-style one.
    doe_site = system.sites[1].name
    doe_server = system.magistrates[doe_site]
    old_impl: MagistrateImpl = doe_server.impl
    doe_impl = DOEMagistrateImpl(
        old_impl.jurisdiction, certified={"app.certified"}, placement="round-robin"
    )
    doe_impl.hosts = list(old_impl.hosts)
    # Hot-swap the implementation behind the same LOID/endpoint (a site
    # re-deploying its magistrate binary in place).
    doe_impl.loid = doe_server.loid
    doe_impl.runtime = doe_server.runtime
    doe_impl.services = doe_server.services
    doe_server.impl = doe_impl

    # User class objects are placed at the open site -- the DOE magistrate
    # (correctly) refuses to host other organisations' class objects too.
    doe_loid = doe_server.loid
    open_magistrate = system.magistrates[system.sites[0].name].loid
    certified_cls = system.create_class(
        "Certified",
        instance_factory="app.certified",
        factory=CounterImpl,
        magistrate=open_magistrate,
    )
    plain_cls = system.create_class(
        "Plain",
        instance_factory="app.plain",
        factory=CounterImpl,
        magistrate=open_magistrate,
    )

    # -- untrusted principal: refused by MayI at the DOE boundary.
    refused_untrusted = False
    try:
        system.call(certified_cls.loid, "Create", {"magistrate": doe_loid})
    except errors.SecurityDenied:
        refused_untrusted = True
    recorder.add(1, untrusted_refused=int(refused_untrusted))
    result.check("untrusted principal refused by DOE magistrate", refused_untrusted)

    # -- trust the console; certified implementation is admitted.
    doe_impl.trust.trust(system.console.loid)
    created = system.call(certified_cls.loid, "Create", {"magistrate": doe_loid})
    ok_certified = system.call(created.loid, "Increment", 1) == 1
    recorder.add(2, certified_admitted=int(ok_certified))
    result.check("trusted principal + certified impl admitted", ok_certified)

    # -- uncertified implementation: refused even for trusted principals.
    refused_uncertified = False
    try:
        system.call(plain_cls.loid, "Create", {"magistrate": doe_loid})
    except errors.RequestRefused:
        refused_uncertified = True
    recorder.add(3, uncertified_refused=int(refused_uncertified))
    result.check(
        "uncertified implementation refused (admit_opr)", refused_uncertified
    )

    # -- the same uncertified creation succeeds at the open site.
    open_obj = system.call(plain_cls.loid, "Create", {"magistrate": open_magistrate})
    ok_open = system.call(open_obj.loid, "Increment", 1) == 1
    recorder.add(4, open_site_ok=int(ok_open))
    result.check("open site accepts what DOE refuses (autonomy is local)", ok_open)

    # -- migration INTO the DOE jurisdiction is also policed.
    refused_import = False
    try:
        system.call(open_magistrate, "Move", open_obj.loid, doe_loid)
    except (errors.RequestRefused, errors.SecurityDenied):
        refused_import = True
    recorder.add(5, import_refused=int(refused_import))
    result.check(
        "DOE refuses migration of uncertified objects into its jurisdiction",
        refused_import,
    )

    # -- host-level refusal: a drained host refuses activations.
    host_loid = system.jurisdictions[system.sites[0].name].host_objects[0]
    system.call(host_loid, "SetAccepting", False)
    refused_host = False
    try:
        system.call(
            plain_cls.loid,
            "Create",
            {"magistrate": open_magistrate, "host": host_loid},
        )
    except errors.RequestRefused:
        refused_host = True
    recorder.add(6, host_refusal=int(refused_host))
    result.check(
        "Host Objects can refuse objects (SetAccepting)", refused_host
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
