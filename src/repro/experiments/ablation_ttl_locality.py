"""Ablations A3 and A4 -- binding TTLs and the locality assumption.

**A3 (binding TTL).**  Bindings carry "a field that specifies the time
that the binding becomes invalid" (section 3.5), which "may be set to some
value that indicates that the binding will never become explicitly
invalid".  The design choice: eager expiry (short TTL) trades refresh
traffic for fewer stale encounters; lazy expiry (no TTL) relies purely on
delivery-failure detection.  We sweep the class's handed-out TTL under a
*static* workload, where every expiry is pure overhead -- measuring the
cost side of the trade.

**A4 (locality).**  Section 5.2's first assumption: "most accesses will be
local".  We sweep the fraction of same-site accesses and measure wide-area
message share -- quantifying how much of the system's cheapness the
assumption is carrying.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, uniform_sites
from repro.metrics.recorder import SeriesRecorder
from repro.net.latency import LinkClass
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl
from repro.workloads.generators import LocalityMix, TrafficDriver


def _run_ttl(ttl, seed: int, quick: bool):
    calls = 40 if quick else 120
    system = LegionSystem.build(
        uniform_sites(2, hosts_per_site=2), seed=seed, binding_ttl=ttl
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    target = system.create_instance(cls.loid)
    client = system.new_client("a3")
    system.call(target.loid, "Ping", client=client)  # warm
    system.reset_measurements()
    client.runtime.stats.reset()
    client.runtime.cache.stats.reset()
    traffic = TrafficDriver(
        system.kernel,
        [client],
        choose_target=lambda _c: target.loid,
        method="Increment",
        args=(1,),
        calls_per_client=calls,
        think_time=20.0,  # spread over time so TTLs actually expire
    )
    stats = system.kernel.run_until_complete(traffic.start())
    assert stats.success_rate == 1.0
    expired = client.runtime.cache.stats.expired
    agent_lookups = client.runtime.stats.agent_lookups
    return expired, agent_lookups


def run_ttl(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """A3: refresh overhead vs TTL under a static (no-churn) workload."""
    recorder = SeriesRecorder(x_label="ttl_ms")
    result = ExperimentResult(
        experiment="A3",
        title="ablation: binding TTLs (3.5)",
        claim=(
            "short TTLs buy nothing under a static workload and cost "
            "re-resolutions; the paper's never-expires default is free"
        ),
        recorder=recorder,
    )
    loads = {}
    for ttl in (50.0, 400.0, None):
        expired, agent_lookups = _run_ttl(ttl, seed, quick)
        label = 0 if ttl is None else ttl
        loads[label] = agent_lookups
        recorder.add(label, expired=expired, agent_lookups=agent_lookups)
    result.check(
        "never-expires does zero re-resolution in steady state",
        loads[0] == 0,
        f"{loads[0]} lookups",
    )
    result.check(
        "shorter TTLs cost strictly more re-resolutions",
        loads[50.0] > loads[400.0] > loads[0],
        f"{loads}",
    )
    result.notes = "x = 0 encodes the never-expires default."
    return result


def _run_locality(local_fraction: float, seed: int, quick: bool):
    calls = 20 if quick else 60
    system = LegionSystem.build(uniform_sites(4, hosts_per_site=2), seed=seed)
    cls = system.create_class("Counter", factory=CounterImpl)
    targets_by_site = {}
    for spec in system.sites:
        magistrate = system.magistrates[spec.name].loid
        targets_by_site[spec.name] = [
            system.create_instance(cls.loid, magistrate=magistrate).loid
            for _ in range(3)
        ]
    clients, sites = [], {}
    for spec in system.sites:
        client = system.new_client(f"a4-{spec.name}", site=spec.name)
        clients.append(client)
        sites[client.loid.identity] = spec.name
    mix = LocalityMix(
        targets_by_site, local_fraction, system.services.rng.stream("a4")
    )
    # Warm-up so measurement is steady-state data traffic, not cache fill.
    for client in clients:
        for pool in targets_by_site.values():
            for loid in pool:
                system.call(loid, "Ping", client=client)
    system.reset_measurements()
    traffic = TrafficDriver(
        system.kernel,
        clients,
        choose_target=lambda c: mix.choose(sites[c.loid.identity]),
        method="Increment",
        args=(1,),
        calls_per_client=calls,
        think_time=1.0,
    )
    stats = system.kernel.run_until_complete(traffic.start())
    assert stats.success_rate == 1.0
    by_class = system.network.stats.by_class
    total = sum(by_class.values())
    return by_class[LinkClass.WIDE_AREA] / total if total else 0.0


def run_locality(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """A4: wide-area traffic share vs the locality assumption."""
    recorder = SeriesRecorder(x_label="local_fraction")
    result = ExperimentResult(
        experiment="A4",
        title="ablation: the locality assumption (5.2)",
        claim=(
            "wide-area traffic share falls monotonically as accesses "
            "localise; at 100% locality it vanishes"
        ),
        recorder=recorder,
    )
    shares = {}
    for fraction in (0.0, 0.5, 0.9, 1.0):
        share = _run_locality(fraction, seed, quick)
        shares[fraction] = share
        recorder.add(fraction, wan_share=round(share, 3))
    result.check(
        "wan share decreases monotonically with locality",
        shares[0.0] > shares[0.5] > shares[0.9] >= shares[1.0],
        f"{ {k: round(v, 3) for k, v in shares.items()} }",
    )
    result.check(
        "full locality eliminates wide-area data traffic",
        shares[1.0] == 0.0,
        f"{shares[1.0]:.3f}",
    )
    return result


def run(quick: bool = True, seed: int = 0):
    """Run both ablations; returns (A3, A4)."""
    return run_ttl(quick, seed), run_locality(quick, seed)


if __name__ == "__main__":  # pragma: no cover - manual runner
    a3, a4 = run()
    print(a3.render())
    print()
    print(a4.render())
