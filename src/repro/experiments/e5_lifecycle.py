"""E5 -- the object lifecycle of Fig. 11: activate / deactivate / migrate.

Claim (sections 3.1, 3.8): magistrates move objects between Active and
Inert states through Object Persistent Representations without losing
state; Copy() replicates an OPR to another magistrate; Move() -- "Copy()
then Delete()" -- transfers management across jurisdictions, after which
the object continues from exactly where it left off.

The table reports, per operation, the simulated latency and the number of
network messages, plus state-integrity verdicts across repeated cycles.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, count_messages, uniform_sites
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Cycle an object through every lifecycle edge; verify state."""
    recorder = SeriesRecorder(x_label="op")
    result = ExperimentResult(
        experiment="E5",
        title="activation / deactivation / migration (Fig. 11)",
        claim=(
            "objects survive Active→Inert→Active cycles and Copy/Move "
            "between jurisdictions with state intact"
        ),
        recorder=recorder,
    )
    cycles = 3 if quick else 10
    system = LegionSystem.build(
        uniform_sites(3, hosts_per_site=2), seed=seed
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    obj = system.create_instance(cls.loid, context_name="e5/obj")
    loid = obj.loid

    expected = 0
    op_index = 0

    def record(op: str, messages: int, elapsed: float) -> None:
        nonlocal op_index
        op_index += 1
        recorder.add(op_index, **{f"{op}_msgs": messages, f"{op}_ms": elapsed})

    state_ok = True
    for cycle in range(cycles):
        expected = system.call(loid, "Increment", 10)

        row = system.call(cls.loid, "GetRow", loid)
        magistrate = row.current_magistrates[0]

        t0 = system.kernel.now
        _, deact_msgs = count_messages(
            system, lambda: system.call(magistrate, "Deactivate", loid)
        )
        if cycle == 0:
            record("deactivate", deact_msgs, system.kernel.now - t0)

        t0 = system.kernel.now
        _, react_msgs = count_messages(
            system, lambda: system.call(magistrate, "Activate", loid)
        )
        if cycle == 0:
            record("activate", react_msgs, system.kernel.now - t0)

        value = system.call(loid, "Get")
        state_ok = state_ok and (value == expected)

    result.check(
        f"state preserved across {cycles} deactivate/activate cycles",
        state_ok,
        f"final value {expected}",
    )

    # -- Copy: a second magistrate gains an OPR; both appear in the row.
    row = system.call(cls.loid, "GetRow", loid)
    source = row.current_magistrates[0]
    others = [m.loid for m in system.magistrates.values() if m.loid != source]
    copy_target = others[0]
    t0 = system.kernel.now
    _, copy_msgs = count_messages(
        system, lambda: system.call(source, "Copy", loid, copy_target)
    )
    record("copy", copy_msgs, system.kernel.now - t0)
    row = system.call(cls.loid, "GetRow", loid)
    result.check(
        "Copy(): target magistrate joins the Current Magistrate List",
        copy_target in row.current_magistrates,
        f"list={[str(m) for m in row.current_magistrates]}",
    )

    # -- Move: management transfers entirely; object answers afterwards.
    move_target = others[1]
    t0 = system.kernel.now
    _, move_msgs = count_messages(
        system, lambda: system.call(source, "Move", loid, move_target)
    )
    record("move", move_msgs, system.kernel.now - t0)
    value = system.call(loid, "Increment", 1)
    result.check(
        "Move(): object continues with prior state at the new jurisdiction",
        value == expected + 1,
        f"value {value}",
    )
    row = system.call(cls.loid, "GetRow", loid)
    result.check(
        "Move(): source magistrate left the Current Magistrate List",
        source not in row.current_magistrates,
    )
    result.check(
        "vault accounting: exactly the copy-target holds a residual OPR",
        sum(
            j.vault.holds(loid) for j in system.jurisdictions.values()
        ) == 1,
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
