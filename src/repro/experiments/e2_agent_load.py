"""E2 -- object→Binding-Agent traffic stays bounded per agent (5.2.1).

Claim: "each Binding Agent can be set up to service a bounded number of
clients" -- because agents are added along with load, the *per-agent*
request count does not grow with system size, even though total binding
traffic does.

Method: sweep the number of sites (one Binding Agent per site, fixed
clients and objects per site).  Every client resolves fresh objects
through its site agent.  The table reports total agent requests and the
maximum seen by any single agent; the claim holds if the per-agent maximum
is flat (log-log slope ≈ 0) while the total grows linearly.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, uniform_sites
from repro.metrics.counters import ComponentKind
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


def _run_scale(n_sites: int, clients_per_site: int, objects_per_site: int, seed: int):
    system = LegionSystem.build(uniform_sites(n_sites, hosts_per_site=2), seed=seed)
    cls = system.create_class("Counter", factory=CounterImpl)

    # Objects pinned to each site's magistrate so locality is real.
    objects_by_site = {}
    for spec in system.sites:
        magistrate = system.magistrates[spec.name].loid
        objects_by_site[spec.name] = [
            system.create_instance(cls.loid, magistrate=magistrate)
            for _ in range(objects_per_site)
        ]

    system.reset_measurements()

    # Fresh clients at every site resolve (cold caches → agent consulted)
    # all of their own site's objects.
    for spec in system.sites:
        for c in range(clients_per_site):
            client = system.new_client(f"e2-{spec.name}-{c}", site=spec.name)
            for binding in objects_by_site[spec.name]:
                system.call(binding.loid, "Ping", client=client)

    metrics = system.services.metrics
    total = metrics.totals_by_kind().get(ComponentKind.BINDING_AGENT, 0)
    per_agent_max = metrics.max_by_kind(ComponentKind.BINDING_AGENT)
    return total, per_agent_max


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Sweep site count; report total vs max-per-agent binding traffic."""
    recorder = SeriesRecorder(x_label="sites")
    result = ExperimentResult(
        experiment="E2",
        title="per-agent binding load stays bounded (5.2.1)",
        claim=(
            "as sites (and agents) grow with fixed clients/site, total agent "
            "traffic grows but the max load on any one agent stays flat"
        ),
        recorder=recorder,
    )
    sweep = [2, 4, 8] if quick else [2, 4, 8, 16, 32]
    clients_per_site = 2
    objects_per_site = 4 if quick else 8

    for n_sites in sweep:
        total, per_agent_max = _run_scale(
            n_sites, clients_per_site, objects_per_site, seed
        )
        recorder.add(n_sites, total_agent_requests=total, max_per_agent=per_agent_max)

    flat_slope = recorder.slope("max_per_agent", log_log=True)
    growth_slope = recorder.slope("total_agent_requests", log_log=True)
    result.check(
        "max per-agent load is flat in system size",
        abs(flat_slope) < 0.2,
        f"log-log slope {flat_slope:.3f}",
    )
    result.check(
        "total agent traffic grows with the system",
        growth_slope > 0.8,
        f"log-log slope {growth_slope:.3f}",
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
