"""E15 -- flow control turns overload collapse into a goodput plateau.

Claim: without flow control, offered load past a serial service's
capacity triggers the classic congestion-collapse spiral -- queues grow
without bound, every reply arrives after the caller's timeout, and the
timeout path's invalidate/refresh/retry machinery *multiplies* the
offered load (each logical call costs up to max_attempts wire requests),
so goodput falls toward zero.  With the repro.flow subsystem -- bounded
admission queues that shed with a server-computed ``retry_after``
pushback, caller-side credit windows, and shed replies exempted from the
stale-binding machinery -- the same service under the same overload keeps
a goodput plateau at >= 80% of its capacity with bounded latency for the
requests it does admit.

Method: one strictly serial service (``SerialServiceImpl``,
``service_time`` = 2 simulated ms, so capacity is exactly 0.5 requests
per ms) takes open-loop traffic from 4 clients at offered load x1..x10
capacity.  Two arms per level, identical except for the installed
FlowConfig: the *flow* arm runs admission control (capacity 1, queue 14,
application objects only) plus credit windows; the *baseline* arm runs
the historical no-flow path.  Every call's issue/settle times and outcome
(ok, shed, failed) are recorded; goodput is in-window successes per
simulated ms.  After each run every runtime must settle exactly --
``requests_sent == replies + timeouts + delivery_failures + cancelled +
shed`` with nothing pending -- and the three shed ledgers (metrics
counters, FaultLog observations, client-side wire sheds) must agree.
With ``--trace``, a TraceAudit additionally proves from the span record
that admitted concurrency never exceeded the configured capacity.
Everything runs on simulated time from seeded state: byte-identical
across ``--jobs 1`` and ``--jobs N``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import LegionError, Overloaded
from repro.experiments.common import ExperimentResult, export_trace, trace_recorder
from repro.faults.log import FaultLog
from repro.flow import FlowConfig
from repro.metrics.counters import ComponentKind, MetricsRegistry
from repro.metrics.recorder import SeriesRecorder
from repro.simkernel.futures import gather
from repro.simkernel.kernel import Timeout
from repro.system.legion import LegionSystem, SiteSpec
from repro.trace.audit import TraceAudit
from repro.workloads.apps import SerialServiceImpl

#: Exclusive service per Work() call; capacity is its reciprocal.
SERVICE_TIME = 2.0
CAPACITY = 1.0 / SERVICE_TIME
N_CLIENTS = 4
#: Per-call deadline: generous against the ~30 ms worst admitted wait,
#: hopeless against an unbounded baseline backlog -- which is the point.
TIMEOUT = 60.0
#: Admitted-latency bound for the flow arm's in-window successes: queue
#: wait (<= 15 slots x 2 ms) + service + a few shed/pushback round trips.
P99_BOUND = 200.0

#: The flow arm's regime: serial admission (capacity 1 matches the
#: service's own discipline), a bounded queue, pushback-capable shedding,
#: and caller credit windows.  Application objects only -- infrastructure
#: (agents, magistrates, hosts) is never shed.
FLOW = FlowConfig(
    capacity=1,
    queue_limit=14,
    service_estimate=SERVICE_TIME,
    admit_kinds=frozenset({ComponentKind.APPLICATION}),
    credit_window=8,
)


def _all_runtimes(system, clients):
    servers = (
        list(system.host_servers.values())
        + list(system.magistrates.values())
        + list(system.agents.values())
        + list(clients)
    )
    for host_server in system.host_servers.values():
        for entry in host_server.impl.processes.running():
            servers.append(entry.server)
    return [s.runtime for s in servers]


def _settles(runtime) -> bool:
    """The RuntimeStats settlement identity, shed included."""
    s = runtime.stats
    settled = (
        s.replies_received
        + s.timeouts
        + s.delivery_failures
        + s.cancelled
        + s.shed
    )
    return s.requests_sent == settled and not runtime._pending


def _drive(system, clients, target, interval: float, duration: float):
    """Open-loop Work() traffic with a per-call outcome record.

    Unlike :class:`~repro.workloads.generators.OpenLoopDriver` this keeps
    (issue, settle, outcome) per call, because goodput and latency
    percentiles need the raw samples, not just success counts.  Client
    start phases are staggered across one interval so the offered load is
    smooth rather than N-synchronised bursts.
    """
    kernel = system.kernel
    records: List[Dict[str, Any]] = []

    def one_call(client, rec):
        try:
            yield from client.runtime.invoke(target, "Work", timeout=TIMEOUT)
            rec["outcome"] = "ok"
        except Overloaded:
            rec["outcome"] = "shed"
        except LegionError as exc:
            rec["outcome"] = "failed"
            rec["error"] = type(exc).__name__
        rec["done"] = kernel.now

    def loop(client, offset):
        if offset > 0.0:
            yield Timeout(offset)
        end = kernel.now + duration
        calls = []
        while kernel.now < end:
            rec: Dict[str, Any] = {
                "issue": kernel.now,
                "done": None,
                "outcome": "pending",
            }
            records.append(rec)
            calls.append(
                kernel.spawn(one_call(client, rec), name=f"e15-call-{client.loid}")
            )
            yield Timeout(interval)
        for fut in calls:  # drain: every fired call must settle
            yield fut

    futures = [
        kernel.spawn(
            loop(client, i * interval / len(clients)),
            name=f"e15-loop-{client.loid}",
        )
        for i, client in enumerate(clients)
    ]
    return gather(futures), records


def _run_level(
    level: int,
    seed: int,
    quick: bool,
    flow: bool,
    trace: Optional[str],
) -> Dict[str, Any]:
    measure = 300.0 if quick else 1_000.0
    warmup = 100.0
    system = LegionSystem.build(
        [SiteSpec("main", hosts=2)], seed=seed, flow=FLOW if flow else None
    )
    # The shed observation ledger: _shed_reply reports every shed logical
    # request here, so the experiment can reconcile it against the
    # metrics counters and the clients' wire-level shed replies.
    system.services.fault_log = FaultLog()
    recorder = trace_recorder(system, trace) if flow else None
    cls = system.create_class(
        "SerialService", factory=lambda: SerialServiceImpl(service_time=SERVICE_TIME)
    )
    instance = system.create_instance(cls.loid)
    clients = [system.new_client(f"e15-{i}") for i in range(N_CLIENTS)]

    interval = N_CLIENTS / (level * CAPACITY)
    start = system.kernel.now
    done, records = _drive(system, clients, instance.loid, interval, warmup + measure)
    system.kernel.run_until_complete(done, max_events=50_000_000)
    system.kernel.run()  # drain the service backlog and late replies

    w0, w1 = start + warmup, start + warmup + measure
    ok_latencies = sorted(
        r["done"] - r["issue"]
        for r in records
        if r["outcome"] == "ok" and w0 <= r["done"] <= w1
    )
    outcomes = {"ok": 0, "shed": 0, "failed": 0}
    for rec in records:
        outcomes[rec["outcome"]] += 1

    metrics = system.services.metrics
    metrics_shed = sum(metrics.snapshot(None, MetricsRegistry.SHED).values())
    faultlog_shed = sum(
        1 for i in system.services.fault_log.observed if i.kind == "request-shed"
    )
    runtimes = _all_runtimes(system, clients)
    wire_shed = sum(rt.stats.shed for rt in runtimes)

    audits: List[Any] = []
    trace_path = None
    if recorder is not None:
        audit = TraceAudit(recorder.spans)
        audits.append(audit.admitted_load_bound(FLOW.capacity, prefix="application:"))
        audits.append(
            audit.shed_reconciles_with(
                metrics.labelled_counts(MetricsRegistry.SHED),
                prefix="application:",
            )
        )
        trace_path = export_trace(recorder, trace, f"e15-x{level}", seed)

    return {
        "goodput": len(ok_latencies) / measure,
        "p99": (
            ok_latencies[int(0.99 * (len(ok_latencies) - 1))]
            if ok_latencies
            else float("inf")
        ),
        "outcomes": outcomes,
        "issued": len(records),
        "metrics_shed": metrics_shed,
        "faultlog_shed": faultlog_shed,
        "wire_shed": wire_shed,
        "settled": all(_settles(rt) for rt in runtimes),
        "audits": audits,
        "trace_path": trace_path,
        "sim_clock": system.kernel.now,
        "sim_events": system.kernel.events_executed,
    }


def shard_units(
    quick: bool = True,
    overload: Optional[float] = None,
    mega: Optional[int] = None,
) -> list:
    """The independent work units of one E15 sweep.

    Each unit is one (offered-load level, arm) pair; every unit builds
    its own single-site system from the seed and shares nothing with the
    others, so units may run in separate worker processes
    (``--shards N``) in any order.  The unit *shape* is the same with
    ``--mega N`` -- the measure step then runs the columnar overload
    kernel over an N-object frame instead of the live testbed.
    """
    top = max(2, int(overload)) if overload else 10
    base = [1, 2, 4] if quick else [1, 2, 3, 4, 6, 8]
    levels = [lvl for lvl in base if lvl < top] + [top]
    return [(level, arm) for level in levels for arm in ("flow", "baseline")]


def shard_measure(
    unit,
    quick: bool = True,
    seed: int = 0,
    overload: Optional[float] = None,
    trace: Optional[str] = None,
    mega: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one (level, arm) unit; the returned dict is picklable.

    The trace export (when tracing) happens worker-side; only its path
    travels back.  ``audits`` are :class:`AuditFinding` dataclasses --
    plain picklable records.
    """
    level, arm = unit
    if mega:
        from repro.megascale.adapters import run_mega_overload

        return run_mega_overload(level, arm, seed=seed, quick=quick, population=mega)
    flow = arm == "flow"
    out = _run_level(level, seed, quick, flow=flow, trace=trace if flow else None)
    out["level"] = level
    out["arm"] = arm
    return out


def shard_finish(
    partials,
    quick: bool = True,
    seed: int = 0,
    overload: Optional[float] = None,
    trace: Optional[str] = None,
    report: Optional[str] = None,
    mega: Optional[int] = None,
) -> ExperimentResult:
    """Merge unit partials into the E15 result, in deterministic unit order.

    Partials are consumed in :func:`shard_units` order regardless of
    worker completion order, so recorder rows, checks, float
    accumulation, and the report artifact are byte-identical to the
    sequential run.
    """
    if mega:
        return _finish_mega(partials, quick=quick, overload=overload, mega=mega)
    by_unit = {(p["level"], p["arm"]): p for p in partials}
    recorder = SeriesRecorder(x_label="offered_x")
    result = ExperimentResult(
        experiment="E15",
        title="goodput under overload (admission control + backpressure)",
        claim=(
            "with admission control, credit windows, and retry pushback, a "
            "serial service under 10x offered load keeps >= 80% of its "
            "capacity as goodput with bounded latency, while the no-flow "
            "baseline collapses through timeout-driven retry amplification"
        ),
        recorder=recorder,
    )
    levels = sorted({level for level, _arm in shard_units(quick=quick, overload=overload)})
    top = levels[-1]
    mid = 4 if 4 in levels else levels[len(levels) // 2]

    total_clock, total_events = 0.0, 0
    ratios: Dict[Tuple[int, str], float] = {}
    report_rows = []
    top_flow: Dict[str, Any] = {}
    mid_p99 = float("inf")
    for level in levels:
        fl = by_unit[(level, "flow")]
        bl = by_unit[(level, "baseline")]
        total_clock += fl["sim_clock"] + bl["sim_clock"]
        total_events += fl["sim_events"] + bl["sim_events"]
        ratios[(level, "flow")] = fl["goodput"] / CAPACITY
        ratios[(level, "base")] = bl["goodput"] / CAPACITY
        if level == mid:
            mid_p99 = fl["p99"]
        if level == top:
            top_flow = fl
        recorder.add(
            level,
            flow_goodput=round(fl["goodput"] / CAPACITY, 3),
            baseline_goodput=round(bl["goodput"] / CAPACITY, 3),
            flow_p99=round(fl["p99"], 1),
            sheds=fl["metrics_shed"],
        )
        for arm, out in (("flow", fl), ("baseline", bl)):
            result.check(
                f"x{level} {arm}: every request settles (shed included)",
                out["settled"],
                f"outcomes={out['outcomes']}",
            )
        result.check(
            f"x{level} flow: shed ledgers reconcile (metrics == FaultLog == wire)",
            fl["metrics_shed"] == fl["faultlog_shed"] == fl["wire_shed"],
            f"metrics={fl['metrics_shed']} faultlog={fl['faultlog_shed']} "
            f"wire={fl['wire_shed']}",
        )
        for finding in fl["audits"]:
            result.check(f"x{level} {finding.name}", finding.passed, finding.detail)
        report_rows.append(
            {
                "level": level,
                "flow_goodput": fl["goodput"],
                "baseline_goodput": bl["goodput"],
                "flow_p99": fl["p99"],
                "flow_outcomes": fl["outcomes"],
                "baseline_outcomes": bl["outcomes"],
                "sheds": fl["metrics_shed"],
            }
        )

    for level in (mid, top):
        result.check(
            f"x{level} flow: goodput plateau >= 80% of capacity",
            ratios[(level, "flow")] >= 0.8,
            f"{ratios[(level, 'flow')]:.2f}x capacity",
        )
    result.check(
        f"x{top} baseline: goodput collapses (<= 50% of capacity)",
        ratios[(top, "base")] <= 0.5,
        f"{ratios[(top, 'base')]:.2f}x capacity",
    )
    result.check(
        f"x{top} flow: p99 admitted latency bounded (<= {P99_BOUND:.0f} ms)",
        top_flow["p99"] <= P99_BOUND,
        f"p99={top_flow['p99']:.1f} ms over {top_flow['outcomes']['ok']} successes",
    )
    result.check(
        f"x{mid} flow: p99 admitted latency bounded (<= {P99_BOUND:.0f} ms)",
        mid_p99 <= P99_BOUND,
        f"p99={mid_p99:.1f} ms",
    )
    result.check(
        f"x{top} flow: admission sheds the excess (> 0 sheds)",
        top_flow["metrics_shed"] > 0,
        f"{top_flow['metrics_shed']} sheds of {top_flow['issued']} issued",
    )
    result.sim_clock = total_clock
    result.sim_events = total_events

    notes = []
    if top_flow["trace_path"]:
        notes.append(f"trace: {top_flow['trace_path']}")
    if report is not None:
        os.makedirs(report, exist_ok=True)
        path = os.path.join(report, f"e15-overload-seed{seed}.json")
        with open(path, "w") as fh:
            json.dump(
                {"seed": seed, "quick": quick, "levels": report_rows},
                fh,
                indent=2,
                sort_keys=True,
            )
        notes.append(f"report: {path}")
    result.notes = "\n".join(notes)
    return result


def _finish_mega(
    partials, quick: bool, overload: Optional[float], mega: int
) -> ExperimentResult:
    """The mega-scale merge: plateau vs collapse over the columnar kernel.

    The same claim shape as the live sweep -- admission keeps goodput at
    the capacity plateau with bounded queues while the baseline's
    unbounded queues turn every serve late -- proven at 10^6-10^7
    objects with per-host carryover queues over the frame.
    """
    by_unit = {(p["level"], p["arm"]): p for p in partials}
    recorder = SeriesRecorder(x_label="offered_x")
    result = ExperimentResult(
        experiment="E15",
        title=f"goodput under overload (columnar mega-scale, N={mega})",
        claim=(
            "over a columnar mega-population with per-host carryover "
            "queues, shedding at the queue cap holds goodput at the "
            "capacity plateau with bounded delay, while the unbounded "
            "baseline serves ever later and its goodput collapses"
        ),
        recorder=recorder,
    )
    levels = sorted({level for level, _arm in by_unit})
    top = levels[-1]
    mid = 4 if 4 in levels else levels[len(levels) // 2]
    result.sim_clock = 0.0
    result.sim_events = 0
    for level in levels:
        fl = by_unit[(level, "flow")]
        bl = by_unit[(level, "baseline")]
        result.sim_clock += fl["sim_clock"] + bl["sim_clock"]
        result.sim_events += fl["sim_events"] + bl["sim_events"]
        recorder.add(
            level,
            flow_goodput=fl["goodput_x"],
            baseline_goodput=bl["goodput_x"],
            sheds=fl["shed"],
            flow_max_queue=fl["max_queue"],
            baseline_max_queue=bl["max_queue"],
        )
        for arm, out in (("flow", fl), ("baseline", bl)):
            result.check(
                f"x{level} {arm}: every call settles "
                "(admitted + shed, admitted == served + queued)",
                out["settled"],
                f"issued={out['issued']} admitted={out['admitted']} "
                f"shed={out['shed']} served={out['served']} "
                f"queued_end={out['queued_end']}",
            )
        result.check(
            f"x{level} flow: per-host queue bounded by the cap",
            fl["max_queue"] <= fl["qcap"],
            f"max_queue={fl['max_queue']} qcap={fl['qcap']}",
        )
        result.check(
            f"x{level}: per-class tallies account for every admitted call",
            fl["class_calls_total"] == fl["admitted"],
            f"class_calls={fl['class_calls_total']} admitted={fl['admitted']}",
        )
    for level in (mid, top):
        result.check(
            f"x{level} flow: goodput plateau >= 80% of capacity",
            by_unit[(level, "flow")]["goodput_x"] >= 0.8,
            f"{by_unit[(level, 'flow')]['goodput_x']:.2f}x capacity",
        )
    result.check(
        f"x{top} baseline: goodput collapses (<= 50% of capacity)",
        by_unit[(top, "baseline")]["goodput_x"] <= 0.5,
        f"{by_unit[(top, 'baseline')]['goodput_x']:.2f}x capacity",
    )
    result.check(
        f"x{top} flow: admission sheds the excess (> 0 sheds)",
        by_unit[(top, "flow")]["shed"] > 0,
        f"{by_unit[(top, 'flow')]['shed']} sheds "
        f"of {by_unit[(top, 'flow')]['issued']} issued",
    )
    result.notes = (
        f"columnar backend: {mega} objects, "
        f"value checksum at top flow level: "
        f"{by_unit[(top, 'flow')]['checksum']}"
    )
    return result


def run(
    quick: bool = True,
    seed: int = 0,
    overload: Optional[float] = None,
    trace: Optional[str] = None,
    report: Optional[str] = None,
    mega: Optional[int] = None,
) -> ExperimentResult:
    """Sweep offered load x1..x10 capacity with and without flow control.

    ``overload`` (the runner's ``--overload`` flag) overrides the top
    offered-load multiplier; ``trace`` enables the span-level admission
    audit; ``report`` names a directory for the JSON goodput artifact.
    ``mega`` (the ``--mega N`` flag) swaps the live testbed for the
    columnar kernel over an N-object frame -- same levels, same claim
    shape, three to four orders of magnitude more objects.

    Composed from the shard protocol, so the sequential run IS the
    ``--shards 1`` reference the sharded runner reproduces.
    """
    partials = [
        shard_measure(
            unit, quick=quick, seed=seed, overload=overload, trace=trace, mega=mega
        )
        for unit in shard_units(quick=quick, overload=overload, mega=mega)
    ]
    return shard_finish(
        partials,
        quick=quick,
        seed=seed,
        overload=overload,
        trace=trace,
        report=report,
        mega=mega,
    )


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
