"""E6 -- stale-binding detection and repair under churn (section 4.1.4).

Claim: "Legion expects the presence of stale bindings ...  When an object
attempts to communicate with an invalid Object Address, the Legion
communication layer of the object is expected to detect that it has become
invalid.  When it does, it will likely request that the binding be
refreshed."  Stale bindings cost repair traffic but never wrong answers.

Method: traffic runs against a pool of objects while a churn driver
deactivates and migrates them.  Sweep churn intensity; report the stale
encounters, the refreshes issued, and -- the correctness half of the
claim -- a 100% call success rate at every churn level.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, uniform_sites
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl
from repro.workloads.generators import ChurnDriver, TrafficDriver


def _run_level(churn_interval: float, seed: int, quick: bool):
    n_objects = 6 if quick else 12
    calls_per_client = 20 if quick else 50
    system = LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=seed)
    cls = system.create_class("Counter", factory=CounterImpl)
    objects = [system.create_instance(cls.loid) for _ in range(n_objects)]
    loids = [b.loid for b in objects]

    clients = [system.new_client(f"e6-{i}") for i in range(3)]
    rng = system.services.rng.stream("e6")

    system.reset_measurements()
    traffic = TrafficDriver(
        system.kernel,
        clients,
        choose_target=lambda _client: loids[rng.randrange(len(loids))],
        method="Increment",
        args=(1,),
        calls_per_client=calls_per_client,
        think_time=5.0,
    )
    churn = None
    if churn_interval > 0:
        churn = ChurnDriver(
            system.kernel,
            system.new_client("e6-churn"),
            loids,
            [m.loid for m in system.magistrates.values()],
            cls.loid,
            rng=system.services.rng.stream("e6-churn"),
            interval=churn_interval,
            rounds=10**6,  # bounded by traffic finishing first
        )
        churn_proc = system.kernel.spawn_process(churn._loop(), name="churn")
    stats_fut = traffic.start()
    stats = system.kernel.run_until_complete(stats_fut, max_events=5_000_000)
    if churn_interval > 0:
        churn_proc.kill()
        system.kernel.run()

    stale = sum(c.runtime.stats.stale_detected for c in clients)
    refreshes = sum(c.runtime.stats.refreshes for c in clients)
    return stats, stale, refreshes, churn.churn_events if churn else 0


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Sweep churn intensity; verify repairs keep success at 100%."""
    recorder = SeriesRecorder(x_label="churn_interval_ms")
    result = ExperimentResult(
        experiment="E6",
        title="stale bindings: detect, refresh, retry (4.1.4)",
        claim=(
            "churn creates stale bindings that cost refresh traffic but "
            "never failed or wrong calls"
        ),
        recorder=recorder,
    )
    # Smaller interval == more churn; 0 == no churn (control).
    levels = [0, 200, 50] if quick else [0, 400, 200, 100, 50]
    saw_stale_under_churn = False
    for interval in levels:
        stats, stale, refreshes, churn_events = _run_level(interval, seed, quick)
        recorder.add(
            interval,
            churn_events=churn_events,
            stale_detected=stale,
            refreshes=refreshes,
            success_rate=stats.success_rate,
        )
        result.check(
            f"interval={interval}: all calls succeeded",
            stats.success_rate == 1.0,
            f"{stats.calls_succeeded}/{stats.calls_issued}"
            + (f"; first error: {stats.errors[0]}" if stats.errors else ""),
        )
        if interval > 0 and stale > 0:
            saw_stale_under_churn = True
        if interval == 0:
            result.check(
                "control (no churn): no stale bindings encountered",
                stale == 0,
                f"{stale}",
            )
    result.check(
        "churn does manufacture stale bindings (the mechanism is exercised)",
        saw_stale_under_churn,
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
