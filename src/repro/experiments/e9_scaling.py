"""E9 -- the distributed systems principle, end to end (section 5.2).

Claim: "the number of requests to any particular system component must
not be an increasing function of the number of hosts in the system.  Our
claim is that as the number of Legion hosts and objects increases, no
component will become a bottleneck that limits performance and restricts
growth" -- *given* the paper's two assumptions (most accesses are local;
class objects are long-lived) and its mitigations (per-object caches,
per-site binding agents).

Method: sweep system size (sites × hosts, with objects and clients scaled
proportionally).  Workload: each site's clients call objects with 90%
site-locality.  Two configurations:

* **mitigated** -- per-site agents, normal caches: the paper's design;
* **strawman** -- one global binding agent and (effectively) no client
  caching: what the paper says would NOT scale.

The table reports, for each size, the *maximum* request count over every
component of each infrastructure kind.  Pass condition: mitigated maxima
are flat (log-log slope ≈ 0) while the strawman's bottleneck grows
~linearly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentResult, export_trace, uniform_sites
from repro.metrics.counters import ComponentKind
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl
from repro.workloads.generators import LocalityMix, TrafficDriver


def _run_config(
    n_sites: int,
    mitigated: bool,
    seed: int,
    quick: bool,
    traced: bool = False,
):
    """One configuration; returns (maxima dict, measurement spans, counts).

    ``traced`` records causal spans for the *measurement* phase only: the
    tracer is installed before warm-up, and the ``reset_measurements``
    between the phases clears warm-up spans together with the counters.
    The spans feed the trace-side E9 audit (load slope recomputed from
    the span ledger + reconciliation against these very counters).
    """
    hosts_per_site = 2
    objects_per_site = 4 if quick else 6
    clients_per_site = 2
    calls_per_client = 10 if quick else 20

    system = LegionSystem.build(
        uniform_sites(n_sites, hosts_per_site=hosts_per_site), seed=seed
    )
    cls = system.create_class("Counter", factory=CounterImpl)

    targets_by_site: Dict[str, list] = {}
    for spec in system.sites:
        magistrate = system.magistrates[spec.name].loid
        targets_by_site[spec.name] = [
            system.create_instance(cls.loid, magistrate=magistrate).loid
            for _ in range(objects_per_site)
        ]

    clients = []
    client_sites = {}
    global_agent = system.agents[system.sites[0].name]
    for spec in system.sites:
        for c in range(clients_per_site):
            client = system.new_client(f"e9-{spec.name}-{c}", site=spec.name)
            if not mitigated:
                # Strawman: everyone shares one agent, and client caches
                # are crippled to a single entry.
                client.runtime.set_binding_agent(global_agent.binding())
                client.runtime.cache.capacity = 1
            clients.append(client)
            client_sites[client.loid.identity] = spec.name

    mix = LocalityMix(
        targets_by_site,
        local_fraction=0.9,
        rng=system.services.rng.stream("e9-mix"),
    )

    def run_traffic() -> None:
        traffic = TrafficDriver(
            system.kernel,
            clients,
            choose_target=lambda client: mix.choose(client_sites[client.loid.identity]),
            method="Increment",
            args=(1,),
            calls_per_client=calls_per_client,
            think_time=2.0,
        )
        stats = system.kernel.run_until_complete(
            traffic.start(), max_events=10_000_000
        )
        assert stats.success_rate == 1.0, stats.errors[:3]

    tracer = system.enable_tracing() if traced else None

    # Warm-up: the one-time cold misses (each agent learning the class and
    # object bindings) are a fixed per-site cost, not steady-state load --
    # the paper's claim is about the latter ("class bindings change very
    # slowly and Binding Agents cache class object bindings").
    run_traffic()
    system.reset_measurements()
    run_traffic()

    metrics = system.services.metrics
    maxima = {
        "legion_class": metrics.max_by_kind(ComponentKind.LEGION_CLASS),
        "class_objects": metrics.max_by_kind(ComponentKind.CLASS_OBJECT),
        "agents": metrics.max_by_kind(ComponentKind.BINDING_AGENT),
        "magistrates": metrics.max_by_kind(ComponentKind.MAGISTRATE),
        "sim_clock": system.kernel.now,
        "sim_events": float(system.kernel.events_executed),
    }
    spans = list(tracer.spans) if tracer is not None else None
    counts = metrics.labelled_counts() if traced else None
    return maxima, spans, counts


def shard_units(quick: bool = True, mega: Optional[int] = None) -> list:
    """The independent work units of one E9 sweep.

    Each unit is one (configuration arm, system size) pair: every unit
    builds its own :class:`LegionSystem` from the seed and shares
    nothing with the others, so units may run in separate worker
    processes (``--shards N``) in any order.

    With ``mega`` (the ``--mega N`` flag), the columnar size ladder rides
    along: one extra ``("mega", population)`` unit per rung, each running
    the whole population through the frame-at-once backend with a live
    escalation boundary (see :mod:`repro.megascale.adapters`).
    """
    sweep = [2, 4, 8] if quick else [2, 4, 8, 16, 32]
    units = [
        (arm, n_sites) for n_sites in sweep for arm in ("mitigated", "strawman")
    ]
    if mega:
        from repro.megascale.adapters import e9_mega_sizes

        units.extend(("mega", size) for size in e9_mega_sizes(mega, quick))
    return units


def shard_measure(
    unit,
    quick: bool = True,
    seed: int = 0,
    trace: Optional[str] = None,
    mega: Optional[int] = None,
) -> dict:
    """Run one unit; returns a picklable partial for :func:`shard_finish`."""
    arm, n_sites = unit
    if arm == "mega":
        from repro.megascale.adapters import run_e9_mega_unit

        partial = run_e9_mega_unit(n_sites, seed=seed, quick=quick)
        partial["arm"] = "mega"
        return partial
    mitigated = arm == "mitigated"
    maxima, spans, counts = _run_config(
        n_sites,
        mitigated=mitigated,
        seed=seed,
        quick=quick,
        traced=mitigated and trace is not None,
    )
    return {
        "arm": arm,
        "n_sites": n_sites,
        "maxima": maxima,
        "spans": spans,
        "counts": counts,
    }


def shard_finish(
    partials,
    quick: bool = True,
    seed: int = 0,
    trace: Optional[str] = None,
    mega: Optional[int] = None,
) -> ExperimentResult:
    """Merge unit partials into the E9 result, in deterministic unit order.

    Partials are consumed in :func:`shard_units` order regardless of the
    order workers finished in, so the recorder rows, the check list, and
    the float accumulation of ``sim_clock`` are byte-identical to the
    sequential run.
    """
    mega_partials = [p for p in partials if p.get("arm") == "mega"]
    partials = [p for p in partials if p.get("arm") != "mega"]
    by_unit = {(p["arm"], p["n_sites"]): p for p in partials}
    recorder = SeriesRecorder(x_label="sites")
    result = ExperimentResult(
        experiment="E9",
        title="the distributed systems principle (5.2)",
        claim=(
            "with caches + per-site agents, max per-component load is not "
            "an increasing function of system size; without them, the "
            "shared agent's load grows linearly"
        ),
        recorder=recorder,
    )
    sweep = [2, 4, 8] if quick else [2, 4, 8, 16, 32]
    result.sim_clock = 0.0
    result.sim_events = 0
    ledger_points = []
    reconciliations = []
    last_spans = None
    for n_sites in sweep:
        mit = by_unit[("mitigated", n_sites)]
        mitigated, spans, counts = mit["maxima"], mit["spans"], mit["counts"]
        strawman = by_unit[("strawman", n_sites)]["maxima"]
        result.sim_clock += mitigated["sim_clock"] + strawman["sim_clock"]
        result.sim_events += int(mitigated["sim_events"] + strawman["sim_events"])
        if spans is not None:
            from repro.trace.audit import TraceAudit
            from repro.trace.ledger import LoadLedger

            ledger = LoadLedger(spans)
            ledger_points.append((float(n_sites), ledger))
            reconciliations.append(
                TraceAudit(ledger).reconciles_with(counts).passed
            )
            last_spans = spans
        recorder.add(
            n_sites,
            legion_class=mitigated["legion_class"],
            max_class_obj=mitigated["class_objects"],
            max_agent=mitigated["agents"],
            max_magistrate=mitigated["magistrates"],
            strawman_agent=strawman["agents"],
        )

    for series, limit in [
        ("legion_class", 0.35),
        ("max_agent", 0.35),
        ("max_magistrate", 0.35),
    ]:
        values = [v for v in recorder.series(series) if v is not None]
        if all(v <= 1 for v in values):
            result.check(f"{series}: negligible load at every size", True, str(values))
            continue
        slope = recorder.slope(series, log_log=True)
        result.check(
            f"{series}: max load ~flat in system size",
            slope < limit,
            f"log-log slope {slope:.3f}",
        )
    straw_slope = recorder.slope("strawman_agent", log_log=True)
    # Threshold 0.55: clearly growing (vs. the ~0.2 mitigated bound); the
    # quick sweep is short enough that steady-state noise moves the fit.
    result.check(
        "strawman shared agent IS an increasing function of size",
        straw_slope > 0.55,
        f"log-log slope {straw_slope:.3f}",
    )
    result.notes = (
        "class objects see one GetBinding per (cold cache, object) pair; "
        "their load tracks the client population per class, which the "
        "paper addresses separately via cloning (E4)."
    )

    if ledger_points:
        from repro.trace.audit import load_slope_finding

        for prefix, limit in [
            ("legion-class:", 0.35),
            ("binding-agent:", 0.35),
            ("magistrate:", 0.35),
        ]:
            finding = load_slope_finding(ledger_points, prefix, limit)
            result.check(finding.name, finding.passed, finding.detail)
        result.check(
            "trace: span ledger reconciles with counters at every size",
            all(reconciliations),
            f"{sum(reconciliations)}/{len(reconciliations)} sizes agree",
        )
        path = export_trace(last_spans, trace, "e9", seed)
        result.notes += f"\ntrace (largest mitigated config): {path}"

    if mega_partials:
        mega_recorder = SeriesRecorder(x_label="population")
        for p in sorted(mega_partials, key=lambda p: p["size"]):
            result.sim_clock += p["sim_clock"]
            result.sim_events += p["sim_events"]
            mega_recorder.add(
                p["size"],
                max_class_load=p["max_class_load"],
                issued=p["issued"],
                shed=p["shed"],
                promotions=p["promotions"],
                checksum=p["checksum"],
            )
            result.check(
                f"mega N={p['size']}: engine + wire settlement close",
                p["settled"] and p["wire_settled"],
                f"issued={p['issued']} completed={p['completed']} shed={p['shed']}",
            )
            result.check(
                f"mega N={p['size']}: escalation boundary exercised, ids monotone",
                p["promotions"] > 0
                and p["demotions"] == p["promotions"]
                and p["allocator_high_water"] == p["size"],
                f"promotions={p['promotions']} high_water={p['allocator_high_water']}",
            )
        mega_slope = mega_recorder.slope("max_class_load", log_log=True)
        result.check(
            "mega: max per-class load ~flat across the population ladder",
            mega_slope < 0.35,
            f"log-log slope {mega_slope:.3f}",
        )
        result.mega_slope = mega_slope
        result.notes += (
            ("\n" if result.notes else "")
            + mega_recorder.to_table(title="columnar mega-scale ladder:")
        )
    return result


def run(
    quick: bool = True,
    seed: int = 0,
    trace: Optional[str] = None,
    mega: Optional[int] = None,
) -> ExperimentResult:
    """Sweep sites; compare mitigated vs strawman bottleneck growth.

    With ``trace``, every mitigated configuration also records causal
    spans; the claim is then re-checked from the *trace side*: the
    span-ledger's max per-component load must be ~flat in system size,
    and at every size the ledger must reconcile exactly with the request
    counters the table is built from.

    ``mega`` (the runner's ``--mega N`` flag) appends the columnar
    size ladder: the same load-slope claim checked at 10^6-10^7 objects
    through the frame-at-once backend.

    Composed from the shard protocol, so the sequential run IS the
    ``--shards 1`` reference the sharded runner reproduces.
    """
    partials = [
        shard_measure(unit, quick=quick, seed=seed, trace=trace, mega=mega)
        for unit in shard_units(quick=quick, mega=mega)
    ]
    return shard_finish(partials, quick=quick, seed=seed, trace=trace, mega=mega)


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
