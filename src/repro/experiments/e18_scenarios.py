"""E18 -- the scenario catalog swept across the subsystem matrix.

Claim: one declarative scenario spec drives every subsystem.  Each
catalog scenario (diurnal-regional, flash-crowd, multi-tenant,
scientific-batch, repository) compiles once into a backend-neutral event
stream and then replays unchanged through the plain rich-object runtime,
under scheduled chaos with checkpoint/restart (``--faults``), under an
operating-mode governor with flow control at an offered-load multiple
(``--governor``), and through the columnar mega-scale backend at 10^6
callers (``--mega``); ``--overload``, ``--autoscale``, and ``--replicas``
add their arms on request.  Every (scenario, arm) cell is one
independent work unit, so the sweep shards across worker processes and
merges byte-identically.

Method: for each cell, compile the scenario's event stream from the
seed, deploy it (one jurisdiction per scenario site, one application
object per (class, site, slot), one console per (tenant, site), a MayI
ACL over Privileged()), arm the subsystem under test, replay, then
reduce to a picklable partial carrying outcome counts, session
conservation, per-phase goodput/latency, and the arm's own evidence
(fault reconciliation, governor ledger, mega settlement).  The merge
renders the scenario x subsystem matrix and checks the per-scenario
shapes: the multi-tenant contention phase must show MayI denials, the
flash surge must dwarf the calm rate, the diurnal peaks must land at
different ticks per site, the repository must stay reader-heavy.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.core.runtime import RetryPolicy
from repro.experiments.common import ExperimentResult
from repro.faults.driver import ChaosDriver, eligible_hosts
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoverySweeper
from repro.flow import FlowConfig
from repro.health import GovernorConfig, HealthLedger, enable_governor
from repro.metrics.counters import ComponentKind
from repro.metrics.recorder import SeriesRecorder
from repro.scenarios import (
    ReplicaRouting,
    ScenarioDriver,
    compile_events,
    deploy,
    get_scenario,
    per_tick_arrivals,
    scenario_names,
    stream_stats,
)
from repro.scenarios.spec import ScenarioSpec

#: The fault arm's client policy: E13's patient, budgeted retry.
CHAOS_RETRY_POLICY = RetryPolicy(
    max_attempts=12,
    base_backoff=10.0,
    backoff_factor=2.0,
    max_backoff=300.0,
    jitter=0.5,
    budget=10_000.0,
    retry_partitions=True,
    retry_resolution_failures=True,
)
#: Per-call deadline under chaos (rides out a crash + recovery).
CHAOS_TIMEOUT = 600.0
#: The checkpointed sentinel key every instance must answer after chaos.
SENTINEL_KEY = 7

#: Default arm parameters (overridden by the runner flags).
DEFAULT_FAULTS = 1.0
DEFAULT_GOVERNOR_MULT = 3.0
DEFAULT_MEGA = 1_000_000

#: The governed/overload arms' governor: E17's dwells and ladder.
GOVERNOR = GovernorConfig(
    degrade_dwell=30.0,
    recover_dwell=80.0,
    tick=10.0,
    window=40.0,
)

MAX_EVENTS = 50_000_000


def _flow(spec: ScenarioSpec) -> FlowConfig:
    """E15's admission regime sized to the scenario's service time."""
    return FlowConfig(
        capacity=1,
        queue_limit=14,
        service_estimate=spec.service_time,
        admit_kinds=frozenset({ComponentKind.APPLICATION}),
        credit_window=8,
    )


def _sized(spec: ScenarioSpec, quick: bool) -> ScenarioSpec:
    """Catalog durations are the --quick sizes; --full doubles them."""
    if quick:
        return spec
    phases = tuple(replace(p, duration=p.duration * 2.0) for p in spec.phases)
    return replace(spec, phases=phases)


def _all_runtimes(system, clients):
    servers = (
        list(system.host_servers.values())
        + list(system.magistrates.values())
        + list(system.agents.values())
        + [system.console]
        + list(clients)
    )
    for host_server in system.host_servers.values():
        for entry in host_server.impl.processes.running():
            servers.append(entry.server)
    return [s.runtime for s in servers]


def _settles(runtime) -> bool:
    """The RuntimeStats settlement identity, shed included."""
    s = runtime.stats
    settled = (
        s.replies_received
        + s.timeouts
        + s.delivery_failures
        + s.cancelled
        + s.shed
    )
    return s.requests_sent == settled and not runtime._pending


def _phase_outcomes(driver: ScenarioDriver) -> Dict[str, Dict[str, int]]:
    """Per-phase outcome counts (by issue time, like phase_goodput)."""
    out: Dict[str, Dict[str, int]] = {}
    for rec in driver.records:
        bucket = out.setdefault(
            rec["phase"], {"ok": 0, "shed": 0, "denied": 0, "failed": 0, "pending": 0}
        )
        bucket[rec["outcome"]] += 1
    return out


def _shape_stats(spec: ScenarioSpec, plan) -> dict:
    """The compiled stream's scenario-defining shape, for the checks."""
    per_tick = per_tick_arrivals(plan)
    shape: dict = {"per_tick": per_tick}
    # Flash surge ratio: mean arrivals/tick inside vs outside the window.
    t0 = 0.0
    for phase in spec.phases:
        if phase.arrival.kind == "flash":
            lo = t0 + phase.arrival.surge_at
            hi = lo + phase.arrival.surge_duration
            inside, outside = [], []
            for i, n in enumerate(per_tick):
                t = i * spec.tick_ms
                (inside if lo <= t < hi else outside).append(n)
            mean_in = sum(inside) / len(inside) if inside else 0.0
            mean_out = sum(outside) / len(outside) if outside else 0.0
            shape["surge_ratio"] = mean_in / mean_out if mean_out else 0.0
        t0 += phase.duration
    # Diurnal site peaks: the tick index where each site's arrivals peak.
    if any(p.arrival.kind == "diurnal" for p in spec.phases):
        by_site = [[0] * len(plan) for _ in range(spec.sites)]
        for i, tick in enumerate(plan):
            for a in tick.arrivals:
                by_site[a.site][i] += 1
        shape["site_peaks"] = [
            row.index(max(row)) if any(row) else -1 for row in by_site
        ]
    return shape


def _drain(driver: ScenarioDriver, stats_fut):
    system = driver.deployment.system
    system.kernel.run_until_complete(stats_fut, max_events=MAX_EVENTS)
    system.kernel.run()


def _base_partial(driver: ScenarioDriver) -> dict:
    """The fields every rich arm reports."""
    system = driver.deployment.system
    runtimes = _all_runtimes(system, driver.deployment.all_clients())
    return {
        "outcomes": driver.outcome_counts(),
        "sessions": {
            "started": driver.sessions.started,
            "completed": driver.sessions.completed,
            "abandoned": driver.sessions.abandoned,
            "active": driver.sessions.active,
        },
        "phases": driver.phase_goodput(),
        "phase_outcomes": _phase_outcomes(driver),
        "settled": all(_settles(rt) for rt in runtimes),
        "sim_clock": system.kernel.now,
        "sim_events": system.kernel.events_executed,
    }


# ------------------------------------------------------------------- arms


def _measure_plain(spec: ScenarioSpec, seed: int) -> dict:
    plan = compile_events(spec, seed)
    dep = deploy(spec, seed)
    driver = ScenarioDriver(dep, plan)
    _drain(driver, driver.start())
    partial = _base_partial(driver)
    partial["expected_denied"] = stream_stats(plan)["denied"]
    partial["shape"] = _shape_stats(spec, plan)
    partial["kinds"] = _kind_counts(driver)
    return partial


def _kind_counts(driver: ScenarioDriver) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for rec in driver.records:
        counts[rec["kind"]] = counts.get(rec["kind"], 0) + 1
    return counts


def _measure_faults(spec: ScenarioSpec, seed: int, intensity: float) -> dict:
    plan = compile_events(spec, seed)
    # Classes pinned to site 0's first host: chaos spares the protected
    # hosts, so the metadata spine survives (the E13 recipe).
    dep = deploy(spec, seed, pin_classes=True)
    system = dep.system
    # Seed a sentinel write into every instance and checkpoint it, so a
    # crash can only cost repair traffic, never the state.
    instance_loids = [
        loid for key in sorted(dep.instances) for loid in dep.instances[key]
    ]
    for k, cls in enumerate(dep.classes):
        for si in range(spec.sites):
            for loid in dep.instances[(k, si)]:
                system.call(loid, "Write", SENTINEL_KEY)
                row = system.call(cls.loid, "GetRow", loid)
                system.call(row.current_magistrates[0], "Checkpoint", loid)
    for client in dep.all_clients():
        client.runtime.retry_policy = CHAOS_RETRY_POLICY

    log = FaultLog()
    fault_plan = FaultPlan.generate(
        system.services.rng.stream(f"e18-faults-{spec.name}"),
        horizon=spec.duration,
        intensity=intensity,
        hosts=eligible_hosts(system),
        sites=[s.name for s in system.sites],
        objects=[str(loid) for loid in instance_loids],
    )
    chaos = ChaosDriver(system, fault_plan, log)
    sweeper = RecoverySweeper(system, interval=100.0)
    driver = ScenarioDriver(
        dep, plan, use_deadlines=False, timeout=CHAOS_TIMEOUT
    )
    chaos.start()
    sweeper.start()
    stats_fut = driver.start()
    system.kernel.run_until_complete(stats_fut, max_events=MAX_EVENTS)
    sweeper.stop()
    system.kernel.run()  # late chaos events, heals, and restores drain here
    for site in sorted(system.magistrates):
        fut = system.spawn(system.magistrates[site].impl.sweep_hosts())
        system.kernel.run_until_complete(fut)
    # Every instance must still answer with the checkpointed sentinel; a
    # straggler lost on a live host is recovered by this very call.
    state_intact = all(
        system.call(loid, "Read", SENTINEL_KEY) >= 1 for loid in instance_loids
    )
    partial = _base_partial(driver)
    lost = sorted(set(log.lost_objects()))
    recovered = set(log.recovered_objects())
    partial.update(
        {
            "faults": log.summary(),
            "lost": len(lost),
            "unrecovered": [o for o in lost if o not in recovered],
            "state_intact": state_intact,
        }
    )
    return partial


def _measure_governor(spec: ScenarioSpec, seed: int, mult: float) -> dict:
    # The same spec at ``mult`` x its offered load, behind E15's flow
    # admission, with the operating-mode governor watching the consoles.
    plan = compile_events(spec, seed, rate_scale=mult)
    dep = deploy(spec, seed, flow=_flow(spec))
    system = dep.system
    critical = frozenset(
        str(loid) for key in sorted(dep.instances) for loid in dep.instances[key]
    )
    config = replace(GOVERNOR, critical=critical)
    governor = enable_governor(system, config)
    governor.track(*dep.all_clients())
    driver = ScenarioDriver(dep, plan, use_deadlines=False)
    stats_fut = driver.start()
    system.kernel.run_until_complete(stats_fut, max_events=MAX_EVENTS)
    governor.stop_loop()  # endless tick loop would pin the drain below
    system.kernel.run()
    governor.poll()  # observe the drained world once more
    records = governor.ledger.to_json()
    ledger_ok = HealthLedger.verify_records(records) is None
    band = governor.band.label
    governor.stop()
    partial = _base_partial(driver)
    partial.update(
        {
            "ledger_ok": ledger_ok,
            "ledger_records": len(records),
            "band_final": band,
            "bands_seen": sorted({r["to_band"] for r in records}),
        }
    )
    return partial


def _measure_overload(spec: ScenarioSpec, seed: int, mult: float) -> dict:
    """Flow admission alone (no governor) at ``mult`` x offered load."""
    plan = compile_events(spec, seed, rate_scale=mult)
    dep = deploy(spec, seed, flow=_flow(spec))
    driver = ScenarioDriver(dep, plan, use_deadlines=False)
    _drain(driver, driver.start())
    return _base_partial(driver)


def _measure_autoscale(spec: ScenarioSpec, seed: int, high_water: float) -> dict:
    """Class 0 under a CloneController; its sessions ride the clone pool."""
    from repro.autoscale import (
        AutoscaleConfig,
        CloneController,
        ClonePoolRouter,
        build_placement_agent,
    )

    plan = compile_events(spec, seed)
    dep = deploy(spec, seed)
    system = dep.system
    hot = dep.classes[0]
    controller = CloneController(
        system,
        hot,
        AutoscaleConfig(
            high_water=high_water,
            low_water=high_water / 6.0,
            cooldown=40.0,
            tick=8.0,
            max_clones=6,
        ),
        placement=build_placement_agent(system),
    )
    controller.start()
    routers = {
        id(client): ClonePoolRouter(client, hot, refresh=20.0)
        for client in dep.all_clients()
    }
    for router in routers.values():
        router.start()

    def invoke_via(driver, client, a, req, timeout):
        if a.klass == 0:  # the hot class: ride the clone pool
            target = routers[id(client)].choose()
            yield from client.runtime.invoke(
                target, "CloneEpoch", timeout=timeout
            )
        else:
            yield from ScenarioDriver._default_invoke(
                driver, client, a, req, timeout
            )

    driver = ScenarioDriver(dep, plan, invoke_via=invoke_via, timeout=400.0)
    stats_fut = driver.start()
    system.kernel.run_until_complete(stats_fut, max_events=MAX_EVENTS)
    # Scale-down: with the traffic gone the pool must drain back.
    deadline = system.kernel.now + 6_000.0
    while (
        system.kernel.now < deadline
        and system.call(hot.loid, "CloneCount") > 0
    ):
        system.kernel.run(until=system.kernel.now + 100.0)
    drained = system.call(hot.loid, "CloneCount") == 0
    controller.stop()
    for router in routers.values():
        router.stop()
    system.kernel.run()
    peak = live = 0
    for _when, what, _loid in controller.actions:
        live += 1 if what == "spawn" else -1
        peak = max(peak, live)
    partial = _base_partial(driver)
    partial.update(
        {
            "peak_clones": peak,
            "actions": len(controller.actions),
            "drained_to_min": drained,
        }
    )
    return partial


def _measure_replicas(spec: ScenarioSpec, seed: int, replicas: int) -> dict:
    """Reads/writes ride per-class replica groups under the spec policy."""
    from repro.replication import ReplicaSession, enable_replication
    from repro.replication.store import ReplicatedStoreImpl

    plan = compile_events(spec, seed)
    dep = deploy(spec, seed)
    system = dep.system
    enable_replication(system)
    members = min(int(replicas), spec.sites)
    bindings = []
    for k in range(spec.n_classes):
        cls = system.create_class(
            f"ScenarioStore{k}",
            factory=lambda: ReplicatedStoreImpl(service_time=spec.read_time),
            consistency=spec.consistency,
        )
        binding = system.call(cls.loid, "CreateReplicated", members, "first", 1)
        session = ReplicaSession(system.console.runtime, binding, spec.consistency)

        def prime(session=session):
            # ``seed()`` freezes the group (read-any immutability); for
            # mutable policies the keys go in through ordinary writes.
            if spec.consistency == "read-any":
                yield from session.seed((f"k{i}", 0) for i in range(16))
            else:
                for i in range(16):
                    yield from session.write(f"k{i}", 0)

        system.kernel.run_until_complete(
            system.spawn(prime(), name=f"e18-seed-{k}")
        )
        bindings.append(binding)
    routing = ReplicaRouting(bindings=bindings, consistency=spec.consistency)
    driver = ScenarioDriver(dep, plan, invoke_via=routing.invoke_via)
    _drain(driver, driver.start())
    partial = _base_partial(driver)
    partial["replica_members"] = members
    return partial


def _measure_mega(spec: ScenarioSpec, seed: int, population: int) -> dict:
    """The whole scenario through the columnar backend at ``population``."""
    from repro.scenarios.mega import frame_arrivals, run_scenario_mega

    report = run_scenario_mega(spec, seed, population=int(population))
    frames_agree = frame_arrivals(spec, seed) == per_tick_arrivals(
        compile_events(spec, seed)
    )
    return {
        "population": report["population"],
        "scale": report["scale"],
        "issued": report["issued"],
        "denied": report["denied"],
        "shed": report["shed"],
        "served": report["served"],
        "settled": report["settled"],
        "ticks": report["ticks"],
        "drain_ticks": report["drain_ticks"],
        "peak_target_backlog_ms": report["peak_target_backlog_ms"],
        "checksum": report["checksum"],
        "frames_agree": frames_agree,
        # Deterministic stand-ins for the kernel fingerprints.
        "sim_clock": (report["ticks"] + report["drain_ticks"]) * spec.tick_ms,
        "sim_events": report["issued"],
    }


_MEASURES = {
    "plain": _measure_plain,
    "faults": _measure_faults,
    "governor": _measure_governor,
    "overload": _measure_overload,
    "autoscale": _measure_autoscale,
    "replicas": _measure_replicas,
    "mega": _measure_mega,
}


# --------------------------------------------------------- shard protocol


def _arms(
    faults: Optional[float] = None,
    governor: Optional[float] = None,
    overload: Optional[float] = None,
    autoscale: Optional[float] = None,
    replicas: Optional[int] = None,
    mega: Optional[int] = None,
) -> List[Tuple[str, float]]:
    """The (arm, parameter) columns of the matrix, flags applied."""
    arms = [
        ("plain", 0.0),
        ("faults", float(faults) if faults is not None else DEFAULT_FAULTS),
        (
            "governor",
            float(governor) if governor is not None else DEFAULT_GOVERNOR_MULT,
        ),
        ("mega", float(mega) if mega is not None else float(DEFAULT_MEGA)),
    ]
    if overload is not None:
        arms.insert(3, ("overload", float(overload)))
    if autoscale is not None:
        arms.insert(3, ("autoscale", float(autoscale)))
    if replicas is not None:
        arms.insert(3, ("replicas", float(replicas)))
    return arms


def shard_units(
    quick: bool = True,
    faults: Optional[float] = None,
    governor: Optional[float] = None,
    overload: Optional[float] = None,
    autoscale: Optional[float] = None,
    replicas: Optional[int] = None,
    mega: Optional[int] = None,
) -> list:
    """One unit per (scenario, arm) cell of the matrix.

    Every cell builds its own system from the seed, so cells may run in
    separate worker processes (``--shards N``) in any order; the merge in
    :func:`shard_finish` consumes partials in this declaration order, so
    the report is byte-identical however the cells were scheduled.
    """
    arms = _arms(faults, governor, overload, autoscale, replicas, mega)
    return [
        (name, arm, param)
        for name in scenario_names()
        for arm, param in arms
    ]


def shard_measure(
    unit,
    quick: bool = True,
    seed: int = 0,
    faults: Optional[float] = None,
    governor: Optional[float] = None,
    overload: Optional[float] = None,
    autoscale: Optional[float] = None,
    replicas: Optional[int] = None,
    mega: Optional[int] = None,
) -> dict:
    """Run one (scenario, arm) cell; reduce to a picklable partial."""
    name, arm, param = unit
    spec = _sized(get_scenario(name), quick)
    if arm == "plain":
        partial = _measure_plain(spec, seed)
    elif arm == "replicas":
        partial = _measure_replicas(spec, seed, int(param))
    elif arm == "mega":
        partial = _measure_mega(spec, seed, int(param))
    else:
        partial = _MEASURES[arm](spec, seed, param)
    partial.update({"scenario": name, "arm": arm, "param": param})
    return partial


def _matrix_row(by_arm: Dict[str, dict]) -> Dict[str, float]:
    """One scenario's recorder row: the same columns for every row."""
    row: Dict[str, float] = {}
    for arm in by_arm:
        p = by_arm[arm]
        if arm == "mega":
            row["mega_served"] = p["served"]
            row["mega_shed"] = p["shed"]
            continue
        out = p["outcomes"]
        row[f"{arm}_ok"] = out["ok"]
        if arm == "plain":
            row["plain_denied"] = out["denied"]
            goodx = max((ph["goodput_x"] for ph in p["phases"]), default=0.0)
            p99 = max((ph["p99"] for ph in p["phases"]), default=0.0)
            row["plain_goodx"] = goodx
            row["plain_p99"] = p99
        elif arm == "faults":
            row["faults_failed"] = out["failed"]
        elif arm in ("governor", "overload"):
            row[f"{arm}_shed"] = out["shed"]
        elif arm == "autoscale":
            row["auto_peak"] = p["peak_clones"]
        elif arm == "replicas":
            row["repl_failed"] = out["failed"]
    return row


def shard_finish(
    partials,
    quick: bool = True,
    seed: int = 0,
    faults: Optional[float] = None,
    governor: Optional[float] = None,
    overload: Optional[float] = None,
    autoscale: Optional[float] = None,
    replicas: Optional[int] = None,
    mega: Optional[int] = None,
    report: Optional[str] = None,
) -> ExperimentResult:
    """Merge cell partials into the E18 result, in unit order."""
    arms = [a for a, _p in _arms(faults, governor, overload, autoscale, replicas, mega)]
    names = scenario_names()
    cells: Dict[str, Dict[str, dict]] = {n: {} for n in names}
    for p in partials:
        cells[p["scenario"]][p["arm"]] = p

    recorder = SeriesRecorder(x_label="scenario")
    for i, name in enumerate(names):
        by_arm = {arm: cells[name][arm] for arm in arms}
        recorder.add(i, **_matrix_row(by_arm))

    result = ExperimentResult(
        experiment="E18",
        title="scenario catalog x subsystem matrix (declarative workloads)",
        claim=(
            "one declarative scenario spec compiles into both the "
            "rich-object runtime and the columnar mega-scale backend, and "
            "replays unchanged under chaos, flow-governed overload, and "
            "10^6-caller populations"
        ),
        recorder=recorder,
    )

    rich_arms = [a for a in arms if a != "mega"]
    result.check(
        "every rich (scenario, arm) cell settles its request ledger",
        all(cells[n][a]["settled"] for n in names for a in rich_arms),
        f"{len(names) * len(rich_arms)} cells",
    )
    conserved = all(
        cells[n][a]["sessions"]["active"] == 0
        and cells[n][a]["sessions"]["started"]
        == cells[n][a]["sessions"]["completed"]
        + cells[n][a]["sessions"]["abandoned"]
        for n in names
        for a in rich_arms
    )
    result.check(
        "session conservation: started == completed + abandoned, none stuck",
        conserved,
    )
    plain_clean = all(
        cells[n]["plain"]["outcomes"]["failed"] == 0
        and cells[n]["plain"]["outcomes"]["shed"] == 0
        for n in names
    )
    result.check(
        "plain arm: no failed and no shed calls in any scenario",
        plain_clean,
    )
    denial_match = all(
        cells[n]["plain"]["outcomes"]["denied"]
        == cells[n]["plain"]["expected_denied"]
        for n in names
    )
    result.check(
        "MayI denials match the compiled expectation in every scenario",
        denial_match,
    )

    mt = cells["multi-tenant"]["plain"]
    contention = mt["phase_outcomes"].get("contention", {})
    result.check(
        "multi-tenant: MayI denies unprivileged Privileged() probes "
        "under contention",
        contention.get("denied", 0) > 0 and contention.get("ok", 0) > 0,
        f"contention denied={contention.get('denied', 0)} "
        f"ok={contention.get('ok', 0)}",
    )
    surge = cells["flash-crowd"]["plain"]["shape"].get("surge_ratio", 0.0)
    result.check(
        "flash-crowd: surge-window arrival rate >= 3x the calm rate",
        surge >= 3.0,
        f"surge/calm = {surge:.2f}",
    )
    peaks = cells["diurnal-regional"]["plain"]["shape"].get("site_peaks", [])
    result.check(
        "diurnal-regional: per-site load peaks land at different ticks",
        len(peaks) == len(set(peaks)) and len(peaks) >= 2,
        f"peak ticks {peaks}",
    )
    kinds = cells["repository"]["plain"]["kinds"]
    reads, writes = kinds.get("read", 0), kinds.get("write", 0)
    result.check(
        "repository: reader-heavy (reads >= 10x writes)",
        writes >= 0 and reads >= 10 * max(writes, 1),
        f"reads={reads} writes={writes}",
    )

    if "faults" in arms:
        fa = [cells[n]["faults"] for n in names]
        result.check(
            "faults arm: chaos costs repair traffic, never wrong answers "
            "(no failed calls, checkpointed state intact, all losses "
            "recovered)",
            all(
                p["outcomes"]["failed"] == 0
                and p["state_intact"]
                and not p["unrecovered"]
                for p in fa
            ),
            f"lost={sum(p['lost'] for p in fa)} across {len(fa)} scenarios",
        )
    if "governor" in arms:
        ga = [cells[n]["governor"] for n in names]
        result.check(
            "governor arm: hash-chained ledger verifies and goodput "
            "survives the overload in every scenario",
            all(p["ledger_ok"] and p["outcomes"]["ok"] > 0 for p in ga),
            f"bands seen: {sorted(set(b for p in ga for b in p['bands_seen']))}",
        )
    if "overload" in arms:
        oa = [cells[n]["overload"] for n in names]
        result.check(
            "overload arm: flow admission sheds the excess explicitly",
            all(p["outcomes"]["ok"] > 0 for p in oa)
            and any(p["outcomes"]["shed"] > 0 for p in oa),
        )
    if "autoscale" in arms:
        aa = [cells[n]["autoscale"] for n in names]
        result.check(
            "autoscale arm: the clone pool grows under load and drains "
            "back to zero after it",
            all(p["drained_to_min"] for p in aa)
            and any(p["peak_clones"] > 0 for p in aa),
            f"peaks {[p['peak_clones'] for p in aa]}",
        )
    if "replicas" in arms:
        ra = [cells[n]["replicas"] for n in names]
        result.check(
            "replicas arm: every scenario's reads/writes ride the "
            "replica groups without failures",
            all(
                p["outcomes"]["failed"] == 0 and p["outcomes"]["ok"] > 0
                for p in ra
            ),
        )
    ma = [cells[n]["mega"] for n in names]
    result.check(
        "mega arm: every scenario settles issued == denied + shed + "
        "served at >= 10^6 callers",
        all(p["settled"] and p["population"] >= p["param"] for p in ma),
        f"populations {[p['population'] for p in ma]}",
    )
    result.check(
        "rich-vs-mega agreement: identical per-frame session arrivals",
        all(p["frames_agree"] for p in ma),
    )

    notes = ["scenario index: " + ", ".join(f"{i}={n}" for i, n in enumerate(names))]
    for name in names:
        g = cells[name].get("governor")
        if g:
            notes.append(
                f"{name}: governor bands {g['bands_seen']} -> "
                f"{g['band_final']} ({g['ledger_records']} ledger records)"
            )
    result.notes = "\n".join(notes)

    result.sim_clock = sum(
        cells[n][a]["sim_clock"] for n in names for a in arms
    )
    result.sim_events = sum(
        cells[n][a]["sim_events"] for n in names for a in arms
    )

    if report is not None:
        os.makedirs(report, exist_ok=True)
        path = os.path.join(report, f"e18-scenarios-seed{seed}.json")
        payload = {
            "experiment": "E18",
            "seed": seed,
            "quick": quick,
            "arms": arms,
            "scenarios": {
                name: {
                    arm: {
                        k: v
                        for k, v in cells[name][arm].items()
                        if k not in ("shape",)
                    }
                    for arm in arms
                }
                for name in names
            },
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in result.checks
            ],
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        result.notes += f"\nreport: {path}"
    return result


def run(
    quick: bool = True,
    seed: int = 0,
    faults: Optional[float] = None,
    governor: Optional[float] = None,
    overload: Optional[float] = None,
    autoscale: Optional[float] = None,
    replicas: Optional[int] = None,
    mega: Optional[int] = None,
    report: Optional[str] = None,
) -> ExperimentResult:
    """The whole matrix in-process (the --shards path splits the units)."""
    units = shard_units(
        quick,
        faults=faults,
        governor=governor,
        overload=overload,
        autoscale=autoscale,
        replicas=replicas,
        mega=mega,
    )
    partials = [
        shard_measure(
            unit,
            quick=quick,
            seed=seed,
            faults=faults,
            governor=governor,
            overload=overload,
            autoscale=autoscale,
            replicas=replicas,
            mega=mega,
        )
        for unit in units
    ]
    return shard_finish(
        partials,
        quick=quick,
        seed=seed,
        faults=faults,
        governor=governor,
        overload=overload,
        autoscale=autoscale,
        replicas=replicas,
        mega=mega,
        report=report,
    )
