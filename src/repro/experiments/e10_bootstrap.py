"""E10 -- bootstrap: bringing up core objects (section 4.2.1).

Claim: the chicken-and-egg of creation is broken by starting core objects
"from the command line": the Abstract classes exactly once, Host Objects
and Magistrates per resource, each of which then *contacts its class* to
become locatable through the normal binding mechanism.  After bring-up,
ordinary creation works immediately.

The table sweeps site count and reports bring-up cost (events, messages,
simulated ms) and the time to the first user object; checks verify the
registration side-effects the paper requires.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, uniform_sites
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Bring systems up from nothing; verify registrations and first use."""
    recorder = SeriesRecorder(x_label="sites")
    result = ExperimentResult(
        experiment="E10",
        title="bootstrap: core objects started outside Legion (4.2.1)",
        claim=(
            "core classes start exactly once; hosts and magistrates "
            "register with their classes; normal creation works right after"
        ),
        recorder=recorder,
    )
    sweep = [1, 2, 4] if quick else [1, 2, 4, 8, 16]
    last_system = None
    for n_sites in sweep:
        system = LegionSystem.build(
            uniform_sites(n_sites, hosts_per_site=2), seed=seed
        )
        bringup_events = system.kernel.events_executed
        bringup_msgs = system.network.stats.messages_sent
        bringup_ms = system.kernel.now

        t0 = system.kernel.now
        cls = system.create_class("Counter", factory=CounterImpl)
        first = system.create_instance(cls.loid)
        first_object_ms = system.kernel.now - t0
        value = system.call(first.loid, "Increment", 1)
        assert value == 1

        recorder.add(
            n_sites,
            bringup_msgs=bringup_msgs,
            bringup_events=bringup_events,
            bringup_ms=bringup_ms,
            first_object_ms=first_object_ms,
        )
        last_system = system

    system = last_system
    n_sites = sweep[-1]

    # -- every host object registered with its class (UnixHost).
    unix_host_cls = system.standard_classes["UnixHost"].impl
    result.check(
        "every Host Object entered its class's logical table",
        len(unix_host_cls.table.instances()) == n_sites * 2,
        f"{len(unix_host_cls.table.instances())} rows",
    )
    # -- every magistrate registered with StandardMagistrate.
    mag_cls = system.standard_classes["StandardMagistrate"].impl
    result.check(
        "every Magistrate entered its class's logical table",
        len(mag_cls.table.instances()) == n_sites,
        f"{len(mag_cls.table.instances())} rows",
    )
    # -- registered infrastructure is locatable via the normal mechanism.
    a_host = unix_host_cls.table.instances()[0].loid
    state = system.call(a_host, "GetState")
    result.check(
        "a bootstrap-registered Host Object resolves and answers",
        state.process_count >= 0,
    )
    # -- the cores registered with LegionClass (walk termination).
    legion_class = system.core.legion_class
    result.check(
        "all six core classes directly locatable through LegionClass",
        len(legion_class.direct_bindings) == 6,
        f"{len(legion_class.direct_bindings)} direct bindings",
    )
    # -- bring-up cost is linear-ish in sites (no super-linear blow-up).
    slope = recorder.slope("bringup_msgs", log_log=True)
    result.check(
        "bring-up message cost grows ~linearly with sites",
        slope < 1.3,
        f"log-log slope {slope:.3f}",
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
