"""Ablation A2 -- how much of the design's scalability is the caches.

DESIGN.md calls out per-object binding caches as a load-bearing design
choice: Section 5.2.1's whole argument starts from "each Legion object
will maintain a cache of bindings".  This ablation sweeps the client
cache capacity from 1 (effectively no cache) upward and measures, for a
fixed steady-state workload, the client cache hit rate and the binding
traffic pushed onto agents.

Expected shape: agent traffic collapses once the cache covers the working
set, and is maximal with capacity 1 -- the quantitative version of "an
object's Binding Agent will only be consulted on a local cache miss".
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, uniform_sites
from repro.metrics.counters import ComponentKind
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl
from repro.workloads.generators import TrafficDriver, ZipfPopularity


def _run_capacity(capacity: int, seed: int, quick: bool):
    n_objects = 12 if quick else 24
    calls = 100 if quick else 250
    system = LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=seed)
    cls = system.create_class("Counter", factory=CounterImpl)
    loids = [system.create_instance(cls.loid).loid for _ in range(n_objects)]

    client = system.new_client("a2")
    client.runtime.cache.capacity = capacity
    zipf = ZipfPopularity(
        n_objects, s=0.9, rng=system.services.rng.numpy_stream("a2")
    )

    system.reset_measurements()
    client.runtime.cache.stats.reset()
    traffic = TrafficDriver(
        system.kernel,
        [client],
        choose_target=lambda _c: loids[zipf.sample()],
        method="Increment",
        args=(1,),
        calls_per_client=calls,
        think_time=1.0,
    )
    stats = system.kernel.run_until_complete(traffic.start())
    assert stats.success_rate == 1.0
    agent_requests = system.services.metrics.totals_by_kind().get(
        ComponentKind.BINDING_AGENT, 0
    )
    return client.runtime.cache.stats.hit_rate, agent_requests


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Sweep client cache capacity; measure hit rate and agent traffic."""
    recorder = SeriesRecorder(x_label="cache_capacity")
    result = ExperimentResult(
        experiment="A2",
        title="ablation: the per-object binding cache (5.2.1)",
        claim=(
            "agent traffic is maximal with no effective cache and collapses "
            "once the cache covers the working set"
        ),
        recorder=recorder,
    )
    capacities = [1, 4, 16, 64]
    agent_loads = {}
    for capacity in capacities:
        hit_rate, agent_requests = _run_capacity(capacity, seed, quick)
        agent_loads[capacity] = agent_requests
        recorder.add(capacity, hit_rate=round(hit_rate, 3), agent_requests=agent_requests)

    result.check(
        "crippled cache pushes the most traffic onto agents",
        agent_loads[1] == max(agent_loads.values()),
        f"{agent_loads}",
    )
    result.check(
        "a working-set-sized cache cuts agent traffic by >= 3x",
        agent_loads[64] * 3 <= agent_loads[1],
        f"{agent_loads[64]} vs {agent_loads[1]}",
    )
    result.check(
        "hit rate increases monotonically with capacity",
        all(
            recorder.series("hit_rate")[i] <= recorder.series("hit_rate")[i + 1] + 1e-9
            for i in range(len(capacities) - 1)
        ),
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
