"""Experiments: the paper's figures and Section-5 claims as measurements.

The paper has no results tables -- it is a design document -- so each
experiment here reproduces a *mechanism figure* or a *scalability claim*
as a measurable run on the simulated testbed, prints the table the paper
would have shown, and checks the claimed shape.  See DESIGN.md section 3
for the experiment index and EXPERIMENTS.md for recorded outcomes.

===  ==========================================================
E1   the binding walk of Figs. 13/17 and its cache behaviour
E2   bounded object→Binding-Agent load (5.2.1)
E3   combining trees flatten LegionClass load (5.2.2)
E4   class cloning relieves hot classes (5.2.2)
E5   activation/deactivation/migration lifecycle (Fig. 11)
E6   stale-binding detection and repair under churn (4.1.4)
E7   replication semantics mask replica failures (4.3, Fig. 1)
E8   Create/Derive/InheritFrom relations and class types (2.1)
E9   the distributed-systems principle end to end (5.2)
E10  bootstrap: bring-up from nothing (4.2.1)
E11  site autonomy: magistrates/hosts refuse untrusted work (2.2, Fig. 9)
E12  LOID allocation: uniqueness and structure at scale (3.2)
E13  availability under scheduled chaos: self-healing runtime (4.1.4)
===  ==========================================================

Every module exposes ``run(quick=True, seed=0) -> ExperimentResult``.
"""

from repro.experiments.common import ExperimentResult, count_messages, populate

__all__ = ["ExperimentResult", "count_messages", "populate"]
