"""E17 -- the operating-mode governor degrades in bands, not cliffs.

Claim: under compounded stress -- offered load climbing past capacity
while seeded chaos crashes hosts and objects -- a system governed by the
:mod:`repro.health` band machine walks DOWN the health scale one band at
a time (Stable → Strained → Eroding → ... as evidence worsens), keeps
serving at capacity while degraded because each band tightens admission
and retry policy instead of letting queues grow, and then walks BACK up
band-by-band under hysteresis once the storm passes -- with every
transition justified by an evidence snapshot in a hash-chained ledger
that verifies intact.  The same system without flow control or governor
collapses abruptly at the storm: the timeout/retry spiral takes goodput
to a small fraction of capacity, and nothing recorded why.

Method: one serial service (capacity 0.5 requests/ms) takes open-loop
traffic from 4 clients through four phases -- calm (x0.5 capacity),
rising (x3), storm (x``mult``, default 8, plus a seeded FaultPlan of
host/object crashes), recovery (x0.5).  Two arms per seed, identical
except the stack under test: the *governed* arm runs flow control plus
the governor (coupled to admission configs, client retry-token refill,
and the recovery sweeper's cadence); the *baseline* arm runs the
historical ungoverned path.  Both arms keep the settlement identity
(``requests_sent == replies + timeouts + delivery_failures + cancelled +
shed``) and the governed arm's three shed ledgers must agree
(triple-entry: metrics == FaultLog == wire).  Everything runs on
simulated time from seeded state: reports and ledgers are byte-identical
across ``--jobs``/``--shards``.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import LegionError, Overloaded
from repro.core.runtime import RetryPolicy
from repro.experiments.common import ExperimentResult
from repro.faults.driver import ChaosDriver, eligible_hosts
from repro.faults.log import FaultLog
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.recovery import RecoverySweeper
from repro.flow import FlowConfig
from repro.health import GovernorConfig, HealthLedger, enable_governor
from repro.metrics.counters import ComponentKind, MetricsRegistry
from repro.metrics.recorder import SeriesRecorder
from repro.simkernel.futures import gather
from repro.simkernel.kernel import Timeout
from repro.system.legion import LegionSystem, SiteSpec
from repro.trace.audit import TraceAudit
from repro.workloads.apps import CounterImpl, SerialServiceImpl

#: Exclusive service per Work() call; capacity is its reciprocal.
SERVICE_TIME = 2.0
CAPACITY = 1.0 / SERVICE_TIME
N_CLIENTS = 4
TIMEOUT = 60.0
#: Bystander objects the chaos plan may crash (the loss-evidence feed).
N_FODDER = 6

#: The governed arm's flow regime (E15's, unchanged): serial admission,
#: a bounded queue the governor tightens per band, credit windows.
FLOW = FlowConfig(
    capacity=1,
    queue_limit=14,
    service_estimate=SERVICE_TIME,
    admit_kinds=frozenset({ComponentKind.APPLICATION}),
    credit_window=8,
)

#: Both arms' client policy: patient (rides out crashes) but budgeted --
#: the retry-token bucket is the knob the governor's refill scaling
#: turns, and what keeps retry volume honest in the baseline too.
E17_RETRY_POLICY = RetryPolicy(
    max_attempts=6,
    base_backoff=5.0,
    backoff_factor=2.0,
    max_backoff=100.0,
    budget=2_000.0,
    retry_partitions=True,
    retry_resolution_failures=True,
    retry_tokens=60.0,
    retry_token_refill=0.5,
)

#: The governed arm's governor: default thresholds/ladder, E17-paced
#: dwells (short enough that a 240 ms phase fits two one-band steps).
#: The critical allowlist is filled in per run with the serial service's
#: LOID (an application server's component name defaults to its LOID
#: string), so the Failed band pauses everything *except* the service
#: under test -- the allowlist protecting the one class that must serve.
GOVERNOR = GovernorConfig(
    degrade_dwell=30.0,
    recover_dwell=80.0,
    tick=10.0,
    window=40.0,
)


def _phases(quick: bool, mult: float) -> List[Tuple[str, float, float]]:
    """(name, duration ms, offered-load multiple of capacity) in order."""
    if quick:
        return [
            ("calm", 120.0, 0.5),
            ("rising", 240.0, 3.0),
            ("storm", 240.0, mult),
            ("recovery", 600.0, 0.5),
        ]
    return [
        ("calm", 200.0, 0.5),
        ("rising", 400.0, 3.0),
        ("storm", 400.0, mult),
        ("recovery", 900.0, 0.5),
    ]


def _all_runtimes(system, clients):
    servers = (
        list(system.host_servers.values())
        + list(system.magistrates.values())
        + list(system.agents.values())
        + list(clients)
    )
    for host_server in system.host_servers.values():
        for entry in host_server.impl.processes.running():
            servers.append(entry.server)
    return [s.runtime for s in servers]


def _settles(runtime) -> bool:
    """The RuntimeStats settlement identity, shed included."""
    s = runtime.stats
    settled = (
        s.replies_received
        + s.timeouts
        + s.delivery_failures
        + s.cancelled
        + s.shed
    )
    return s.requests_sent == settled and not runtime._pending


def _drive(system, clients, target, phases):
    """Open-loop Work() traffic walking the phase schedule.

    Like E15's driver but phased: each client issues at the phase's
    offered-load interval until the phase ends, with per-call
    (issue, settle, outcome) records for phase-windowed goodput.
    """
    kernel = system.kernel
    records: List[Dict[str, Any]] = []

    def one_call(client, rec):
        try:
            yield from client.runtime.invoke(target, "Work", timeout=TIMEOUT)
            rec["outcome"] = "ok"
        except Overloaded:
            rec["outcome"] = "shed"
        except LegionError as exc:
            rec["outcome"] = "failed"
            rec["error"] = type(exc).__name__
        rec["done"] = kernel.now

    def loop(client, offset):
        if offset > 0.0:
            yield Timeout(offset)
        calls = []
        for _name, duration, level in phases:
            interval = N_CLIENTS / (level * CAPACITY)
            end = kernel.now + duration
            while kernel.now < end:
                rec: Dict[str, Any] = {
                    "issue": kernel.now,
                    "done": None,
                    "outcome": "pending",
                }
                records.append(rec)
                calls.append(
                    kernel.spawn(one_call(client, rec), name=f"e17-call-{client.loid}")
                )
                yield Timeout(min(interval, end - kernel.now))
        for fut in calls:  # drain: every fired call must settle
            yield fut

    futures = [
        kernel.spawn(loop(client, i * 0.5), name=f"e17-loop-{client.loid}")
        for i, client in enumerate(clients)
    ]
    return gather(futures), records


def _run_arm(
    seed: int, quick: bool, governed: bool, mult: float
) -> Dict[str, Any]:
    phases = _phases(quick, mult)
    system = LegionSystem.build(
        [SiteSpec("main", hosts=3)], seed=seed, flow=FLOW if governed else None
    )
    log = FaultLog()
    system.services.fault_log = log

    # Class objects are infrastructure: pin them to the protected first
    # host (as E13 does) so chaos can crash instances but never the
    # recovery control path itself.
    site0 = system.sites[0].name
    protected = system.host_servers[system.site_hosts[site0][0]].loid
    cls = system.create_class(
        "SerialService",
        factory=lambda: SerialServiceImpl(service_time=SERVICE_TIME),
        magistrate=system.magistrates[site0].loid,
        host=protected,
    )
    instance = system.create_instance(cls.loid)
    # Checkpoint the service so a storm-phase host crash is recoverable
    # (reactive rebind + magistrate restore, as in E13).
    row = system.call(cls.loid, "GetRow", instance.loid)
    system.call(row.current_magistrates[0], "Checkpoint", instance.loid)
    # Chaos fodder: checkpointed counters the plan crashes, feeding the
    # loss-backlog evidence signal without taking the service itself down
    # on every draw.
    fodder_cls = system.create_class(
        "Fodder",
        factory=CounterImpl,
        magistrate=system.magistrates[site0].loid,
        host=protected,
    )
    fodder = [system.create_instance(fodder_cls.loid) for _ in range(N_FODDER)]
    for i, binding in enumerate(fodder):
        system.call(binding.loid, "Increment", i + 1)
        row = system.call(fodder_cls.loid, "GetRow", binding.loid)
        system.call(row.current_magistrates[0], "Checkpoint", binding.loid)

    clients = [system.new_client(f"e17-{i}") for i in range(N_CLIENTS)]
    # The probe console: periodic Get()s over the fodder keep the
    # reactive recovery path live for objects nobody else calls (an
    # object crashed on a *live* host only comes back when someone asks
    # for it), and in the Failed band its calls are what the pause sheds.
    prober = system.new_client("e17-probe")
    clients.append(prober)
    for client in clients:
        client.runtime.retry_policy = E17_RETRY_POLICY

    # The storm's chaos: drawn up front from the seeded stream, started
    # (relative to then-now) when the storm phase begins.
    storm_start = sum(d for _n, d, _l in phases[:2])
    storm_duration = phases[2][1]
    plan = FaultPlan.generate(
        system.services.rng.stream("e17-faults"),
        horizon=storm_duration,
        intensity=10.0,
        hosts=eligible_hosts(system),
        sites=[s.name for s in system.sites],
        objects=[str(b.loid) for b in fodder],
        mix={FaultKind.HOST_CRASH: 0.5, FaultKind.OBJECT_CRASH: 0.5},
    )
    driver = ChaosDriver(system, plan, log)
    sweeper = RecoverySweeper(system, interval=120.0)
    sweeper.start()

    governor = None
    if governed:
        config = replace(GOVERNOR, critical=frozenset({str(instance.loid)}))
        governor = enable_governor(system, config)
        governor.track(*clients)
        governor.attach(sweeper=sweeper)

    start = system.kernel.now
    total = sum(d for _n, d, _l in phases)
    system.kernel.schedule(storm_start, driver.start)
    done, records = _drive(system, clients[:N_CLIENTS], instance.loid, phases)

    def probe_loop():
        end = system.kernel.now + total
        while system.kernel.now < end:
            for binding in fodder:
                try:
                    yield from prober.runtime.invoke(
                        binding.loid, "Get", timeout=TIMEOUT
                    )
                except LegionError:
                    pass  # lost or paused; the next round retries
            yield Timeout(97.0)

    probes = system.kernel.spawn(probe_loop(), name="e17-probes")
    system.kernel.run_until_complete(gather([done, probes]), max_events=50_000_000)
    sweeper.stop()
    if governor is not None:
        governor.stop_loop()  # endless tick loop would pin the drain below
    system.kernel.run()  # drain backlog, late chaos restores, retries

    # Post-run repair: one final sweep per magistrate so chaos losses are
    # recovered (and logged) before reconciliation reads the backlog.
    for site in sorted(system.magistrates):
        fut = system.spawn(system.magistrates[site].impl.sweep_hosts())
        system.kernel.run_until_complete(fut)
    # Touch every fodder object: a straggler lost on a live host is
    # recovered by this very call (the reactive path), as in E13.  The
    # tracked prober does the touching so any shed stays triple-entry.
    def touch(loid):
        try:
            yield from prober.runtime.invoke(loid, "Get", timeout=TIMEOUT)
        except LegionError:
            pass  # reconciliation below reports it as unrecovered
    for binding in fodder:
        fut = system.kernel.spawn(touch(binding.loid), name="e17-touch")
        system.kernel.run_until_complete(fut)

    ledger_records: List[Dict[str, Any]] = []
    band_final = "stable"
    audits: List[Any] = []
    if governor is not None:
        record = governor.poll()  # observe the post-storm world once more
        del record
        evidence = governor.last_evidence
        audits.append(TraceAudit.evidence_reconciles(evidence))
        ledger_records = governor.ledger.to_json()
        band_final = governor.band.label
        governor.stop()

    # Phase-windowed goodput (successes per ms, by settle time).
    phase_rows = []
    edge = start
    for name, duration, level in phases:
        w0, w1 = edge, edge + duration
        ok = sum(
            1
            for r in records
            if r["outcome"] == "ok" and r["done"] is not None and w0 <= r["done"] < w1
        )
        phase_rows.append(
            {
                "phase": name,
                "offered_x": level,
                "goodput": ok / duration,
                "goodput_x": (ok / duration) / CAPACITY,
            }
        )
        edge = w1
    outcomes = {"ok": 0, "shed": 0, "failed": 0}
    for rec in records:
        outcomes[rec["outcome"]] += 1

    metrics = system.services.metrics
    metrics_shed = sum(metrics.snapshot(None, MetricsRegistry.SHED).values())
    faultlog_shed = sum(1 for i in log.observed if i.kind == "request-shed")
    runtimes = _all_runtimes(system, clients)
    wire_shed = sum(rt.stats.shed for rt in runtimes)
    lost = set(log.lost_objects())
    recovered = set(log.recovered_objects())

    return {
        "phases": phase_rows,
        "outcomes": outcomes,
        "issued": len(records),
        "metrics_shed": metrics_shed,
        "faultlog_shed": faultlog_shed,
        "wire_shed": wire_shed,
        "settled": all(_settles(rt) for rt in runtimes),
        "chaos_events": len(plan.events),
        "lost": len(lost),
        "unrecovered": len(lost - recovered),
        "ledger": ledger_records,
        "band_final": band_final,
        "audits": audits,
        "sim_clock": system.kernel.now,
        "sim_events": system.kernel.events_executed,
    }


def shard_units(quick: bool = True, governor: Optional[float] = None) -> list:
    """The two independent arms; each builds its own seeded system."""
    return ["governed", "baseline"]


def shard_measure(
    unit,
    quick: bool = True,
    seed: int = 0,
    governor: Optional[float] = None,
) -> Dict[str, Any]:
    """Run one arm; the returned dict is picklable."""
    mult = float(governor) if governor else 8.0
    out = _run_arm(seed, quick, governed=unit == "governed", mult=mult)
    out["arm"] = unit
    return out


def shard_finish(
    partials,
    quick: bool = True,
    seed: int = 0,
    governor: Optional[float] = None,
    report: Optional[str] = None,
) -> ExperimentResult:
    """Merge the two arms, in unit order, into the E17 result."""
    by_arm = {p["arm"]: p for p in partials}
    gov = by_arm["governed"]
    base = by_arm["baseline"]
    mult = float(governor) if governor else 8.0

    recorder = SeriesRecorder(x_label="phase")
    result = ExperimentResult(
        experiment="E17",
        title="operating-mode governor (banded health + policy coupling)",
        claim=(
            "under compounded overload + chaos, the governed system degrades "
            "one band at a time, keeps goodput at capacity while degraded, "
            "recovers band-by-band under hysteresis, and ledgers every "
            "transition tamper-evidently, while the ungoverned baseline "
            "collapses abruptly at the storm"
        ),
        recorder=recorder,
    )
    phase_pairs = list(
        zip(gov["phases"], base["phases"], strict=True)
    )
    for index, (gp, bp) in enumerate(phase_pairs):
        recorder.add(
            index,
            offered_x=gp["offered_x"],
            governed_goodput=round(gp["goodput_x"], 3),
            baseline_goodput=round(bp["goodput_x"], 3),
        )

    # -- band walk ----------------------------------------------------------
    ledger = gov["ledger"]
    visited = [r["to_band"] for r in ledger]
    steps_ok = all(
        abs(
            ["stable", "strained", "eroding", "compromised", "failed"].index(
                r["to_band"]
            )
            - ["stable", "strained", "eroding", "compromised", "failed"].index(
                r["from_band"]
            )
        )
        == 1
        for r in ledger
    )
    result.check(
        "governed: degrades through strained and eroding",
        "strained" in visited and "eroding" in visited,
        f"bands visited: {visited}",
    )
    result.check(
        "governed: never skips a band (every transition one step)",
        steps_ok and len(ledger) > 0,
        f"{len(ledger)} ledgered transitions",
    )
    result.check(
        "governed: recovers to stable after the storm",
        gov["band_final"] == "stable" and visited and visited[-1] == "stable",
        f"final band: {gov['band_final']}",
    )
    recoveries = [r for r in ledger if r["direction"] == "recover"]
    result.check(
        "governed: recovery is monotone band-by-band (hysteresis held)",
        len(recoveries) >= 2
        and all(r["reason"] == "calm" for r in recoveries),
        f"{len(recoveries)} recover transitions",
    )
    chain_error = HealthLedger.verify_records(ledger)
    result.check(
        "governed: transition ledger hash chain verifies intact",
        chain_error is None,
        chain_error or f"{len(ledger)} records chained from genesis",
    )

    # -- goodput ------------------------------------------------------------
    by_phase = {p["phase"]: p for p in gov["phases"]}
    base_by_phase = {p["phase"]: p for p in base["phases"]}
    result.check(
        "governed: storm goodput holds >= 60% of capacity",
        by_phase["storm"]["goodput_x"] >= 0.6,
        f"{by_phase['storm']['goodput_x']:.2f}x capacity at x{mult:g} offered",
    )
    result.check(
        "baseline: storm goodput collapses (<= 50% of capacity)",
        base_by_phase["storm"]["goodput_x"] <= 0.5,
        f"{base_by_phase['storm']['goodput_x']:.2f}x capacity",
    )
    result.check(
        "governed: recovery-phase goodput back at offered load",
        by_phase["recovery"]["goodput_x"]
        >= 0.9 * by_phase["recovery"]["offered_x"],
        f"{by_phase['recovery']['goodput_x']:.2f}x of "
        f"{by_phase['recovery']['offered_x']:g}x offered",
    )

    # -- accounting ---------------------------------------------------------
    for arm, out in (("governed", gov), ("baseline", base)):
        result.check(
            f"{arm}: every request settles (shed included)",
            out["settled"],
            f"outcomes={out['outcomes']}",
        )
        result.check(
            f"{arm}: chaos losses all recovered",
            out["unrecovered"] == 0,
            f"{out['lost']} lost, {out['unrecovered']} unrecovered "
            f"({out['chaos_events']} chaos events)",
        )
    result.check(
        "governed: shed ledgers reconcile (metrics == FaultLog == wire)",
        gov["metrics_shed"] == gov["faultlog_shed"] == gov["wire_shed"],
        f"metrics={gov['metrics_shed']} faultlog={gov['faultlog_shed']} "
        f"wire={gov['wire_shed']}",
    )
    for finding in gov["audits"]:
        result.check(finding.name, finding.passed, finding.detail)

    result.sim_clock = gov["sim_clock"] + base["sim_clock"]
    result.sim_events = gov["sim_events"] + base["sim_events"]

    notes = [
        "bands: "
        + (
            " -> ".join(["stable"] + visited)
            if visited
            else "(no transitions)"
        )
    ]
    if report is not None:
        from repro.health.ledger import canonical

        os.makedirs(report, exist_ok=True)
        ledger_path = os.path.join(report, f"e17-ledger-seed{seed}.jsonl")
        with open(ledger_path, "w") as fh:
            for rec in ledger:
                fh.write(canonical(rec) + "\n")
        path = os.path.join(report, f"e17-governor-seed{seed}.json")
        with open(path, "w") as fh:
            json.dump(
                {
                    "seed": seed,
                    "quick": quick,
                    "mult": mult,
                    "governed": gov["phases"],
                    "baseline": base["phases"],
                    "bands": visited,
                    "transitions": len(ledger),
                },
                fh,
                indent=2,
                sort_keys=True,
            )
        notes.append(f"report: {path}")
        notes.append(f"ledger: {ledger_path}")
    result.notes = "\n".join(notes)
    return result


def run(
    quick: bool = True,
    seed: int = 0,
    governor: Optional[float] = None,
    report: Optional[str] = None,
) -> ExperimentResult:
    """Governed vs ungoverned under compounded overload + chaos.

    ``governor`` (the runner's ``--governor`` flag) overrides the storm's
    offered-load multiplier (default 8); ``report`` names a directory for
    the JSON phase artifact and the JSONL transition ledger.

    Composed from the shard protocol, so the sequential run IS the
    ``--shards 1`` reference the sharded runner reproduces.
    """
    partials = [
        shard_measure(unit, quick=quick, seed=seed, governor=governor)
        for unit in shard_units(quick=quick, governor=governor)
    ]
    return shard_finish(
        partials, quick=quick, seed=seed, governor=governor, report=report
    )


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
