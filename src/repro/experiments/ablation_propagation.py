"""Ablation A1 -- explicit invalidation propagation (section 4.1.4).

The paper's optional optimisation: "Some classes may even attempt to
reduce the number of stale bindings by explicitly propagating news of an
object's migration or removal."  This ablation measures what that buys.

The benefit is *cross-agent*: after a migration, the first stale caller's
repair re-activates the object and -- with propagation -- the class pushes
the fresh binding to every subscribed agent, so stale callers arriving
through *other* agents are repaired from their agent's cache instead of
triggering another walk to the class object.

Method (deterministic, K rounds): an object is deactivated each round;
then a site-A client touches it (pays the unavoidable reactivation walk),
then a site-B client touches it.  Measured: site-B's agent→class
escalations across rounds, with and without the agents subscribed.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, uniform_sites
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


def _run(propagate: bool, rounds: int, seed: int):
    system = LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=seed)
    cls = system.create_class("Counter", factory=CounterImpl)
    site_a, site_b = system.sites[0].name, system.sites[1].name
    target = system.call(
        cls.loid, "Create", {"magistrate": system.magistrates[site_a].loid}
    )
    if propagate:
        for agent in system.agents.values():
            system.call(cls.loid, "SubscribeInvalidations", agent.binding())

    client_a = system.new_client("a1-a", site=site_a)
    client_b = system.new_client("a1-b", site=site_b)
    # Warm both clients and both agents.
    system.call(target.loid, "Ping", client=client_a)
    system.call(target.loid, "Ping", client=client_b)

    agent_b = system.agents[site_b]
    agent_b.impl.agent_stats.reset()
    magistrate = system.call(cls.loid, "GetRow", target.loid).current_magistrates[0]

    for _round in range(rounds):
        system.call(magistrate, "Deactivate", target.loid)
        # A's touch pays the unavoidable reactivation walk...
        system.call(target.loid, "Increment", 1, client=client_a)
        # ...then B's touch: repaired from agent B's cache iff propagation
        # delivered the fresh binding.
        system.call(target.loid, "Increment", 1, client=client_b)

    return agent_b.impl.agent_stats.class_escalations


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Compare site-B escalations with and without propagation."""
    rounds = 6 if quick else 20
    recorder = SeriesRecorder(x_label="config")
    result = ExperimentResult(
        experiment="A1",
        title="ablation: explicit invalidation propagation (4.1.4)",
        claim=(
            "propagating migration news lets the second site's stale "
            "callers be repaired from their agent's cache, eliminating its "
            "agent-to-class escalations"
        ),
        recorder=recorder,
    )
    base = _run(False, rounds, seed)
    prop = _run(True, rounds, seed)
    recorder.add(0, agent_b_class_escalations=base)
    recorder.add(1, agent_b_class_escalations=prop)

    result.check(
        f"without propagation, agent B escalates every round ({rounds})",
        base >= rounds,
        f"{base} escalations",
    )
    result.check(
        "with propagation, agent B never escalates",
        prop == 0,
        f"{prop} escalations",
    )
    result.notes = (
        "the first caller's walk is unavoidable in both configs (it is "
        "what re-activates the object); the ablation isolates the second "
        "agent's repairs."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
