"""E1 -- the binding walk of Figs. 13 and 17, and its cache behaviour.

Claim (sections 4.1.2-4.1.3): a reference to a LOID resolves through
(at most) client cache → Binding Agent → LegionClass → responsible class →
Magistrate → Host, with every tier caching the result; a *warm* call needs
no external objects at all (one request/reply pair), and referring to an
Inert object's LOID transparently activates it.

The table reports the number of network messages per call in four
states of the world:

* ``cold``           -- fresh client, agent cache empty for this object;
* ``agent_warm``     -- fresh client, agent already knows the binding;
* ``client_warm``    -- same client calls again (its own cache hits);
* ``inert``          -- object deactivated first (activate-on-reference).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    count_messages,
    export_trace,
    trace_recorder,
    uniform_sites,
)
from repro.metrics.recorder import SeriesRecorder
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


def run(quick: bool = True, seed: int = 0, trace: Optional[str] = None) -> ExperimentResult:
    """Run E1; ``quick`` has no effect (the experiment is already small).

    With ``trace`` (an output directory), the four phases run under the
    causal tracer and the claimed walk shapes are audited *structurally*:
    the cold/inert walks stay within the paper's tier bound and the
    client-warm call is exactly one request hop.
    """
    recorder = SeriesRecorder(x_label="step")
    result = ExperimentResult(
        experiment="E1",
        title="binding resolution path (Figs. 13/17)",
        claim=(
            "cold lookups traverse agent→class (→magistrate→host for Inert "
            "objects); caches shorten later lookups to a bare request/reply"
        ),
        recorder=recorder,
    )

    system = LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=seed)
    cls = system.create_class("Counter", factory=CounterImpl)
    target = system.create_instance(cls.loid, context_name="e1/target")
    loid = target.loid
    tracer = trace_recorder(system, trace)

    # -- cold: a brand-new client (empty cache; the agent is cold for this
    #    object too, since nobody has resolved it yet).
    cold_client = system.new_client("e1-cold")
    _, cold_msgs = count_messages(
        system, lambda: system.call(loid, "Ping", client=cold_client)
    )
    cold_spans = len(tracer.spans) if tracer else 0

    # -- agent-warm: another fresh client; the site agent now has the
    #    binding, so the walk stops at the agent.
    warm_agent_client = system.new_client("e1-agent-warm")
    _, agent_warm_msgs = count_messages(
        system, lambda: system.call(loid, "Ping", client=warm_agent_client)
    )
    agent_warm_spans = len(tracer.spans) if tracer else 0

    # -- client-warm: the same client again; its own cache hits.
    _, client_warm_msgs = count_messages(
        system, lambda: system.call(loid, "Ping", client=warm_agent_client)
    )
    client_warm_spans = len(tracer.spans) if tracer else 0

    # -- inert: deactivate, then reference through a fresh client; the
    #    class must consult the magistrate, which activates the object.
    row = system.call(cls.loid, "GetRow", loid)
    magistrate = row.current_magistrates[0]
    system.call(magistrate, "Deactivate", loid)
    inert_client = system.new_client("e1-inert")
    inert_start = len(tracer.spans) if tracer else 0
    _, inert_msgs = count_messages(
        system, lambda: system.call(loid, "Ping", client=inert_client)
    )

    recorder.add(1, cold=cold_msgs)
    recorder.add(2, agent_warm=agent_warm_msgs)
    recorder.add(3, client_warm=client_warm_msgs)
    recorder.add(4, inert=inert_msgs)

    result.check(
        "client-warm call is a bare request/reply",
        client_warm_msgs == 2,
        f"{client_warm_msgs} messages",
    )
    result.check(
        "agent cache shortens the walk",
        agent_warm_msgs < cold_msgs,
        f"{agent_warm_msgs} < {cold_msgs}",
    )
    result.check(
        "activate-on-reference costs the longest walk",
        inert_msgs > agent_warm_msgs,
        f"{inert_msgs} > {agent_warm_msgs}",
    )
    result.check(
        "referencing an Inert object activated it",
        system.call(loid, "Get") == 0,
        "state reachable again",
    )
    result.notes = (
        "cold walk: client→agent→LegionClass (locate class)→class→reply "
        "chain; inert adds class→magistrate→host activation messages."
    )

    if tracer is not None:
        from repro.trace.audit import TraceAudit

        # The paper's maximum tier chain: client → Binding Agent →
        # LegionClass → responsible class → Magistrate → Host (Fig. 13);
        # six nested request hops bound every walk, warm or not.
        cold = TraceAudit(tracer.spans[:cold_spans]).hop_bound(6)
        result.check(
            "trace: cold walk within the Fig. 13 tier bound",
            cold.passed,
            cold.detail,
        )
        warm = TraceAudit(
            tracer.spans[agent_warm_spans:client_warm_spans]
        ).exact_depth(1)
        result.check(
            "trace: client-warm call is exactly one request hop",
            warm.passed,
            warm.detail,
        )
        inert_slice = tracer.spans[inert_start:]
        inert = TraceAudit(inert_slice).hop_bound(6)
        result.check(
            "trace: activate-on-reference stays within the tier bound",
            inert.passed,
            inert.detail,
        )
        result.check(
            "trace: the inert walk reached a host Activate upcall",
            any(s.kind == "activate" for s in inert_slice),
            f"{sum(1 for s in inert_slice if s.kind == 'activate')} activation span(s)",
        )
        path = export_trace(tracer, trace, "e1", seed)
        result.notes += f"\ntrace: {path}"

    result.sim_clock = system.kernel.now
    result.sim_events = system.kernel.events_executed
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
