"""E3 -- a combining tree of Binding Agents flattens LegionClass load (5.2.2).

Claim: "by constructing a k-ary tree of Binding Agents, eliminating
traffic from 'leaf' Binding Agents to LegionClass, we can arbitrarily
reduce the load placed on LegionClass.  In essence, Binding Agents could
be organized to implement a software combining tree."

Method: N leaf agents must each resolve the bindings of M user class
objects from cold caches (class-location requests are exactly the traffic
that reaches LegionClass).  Two configurations:

* **flat**  -- every agent is a root: each one's misses hit LegionClass
  directly, so LegionClass serves Θ(N·M) requests;
* **tree**  -- the agents are the leaves of a k-ary combining tree: a
  miss climbs the tree and only the root's misses reach LegionClass, so
  LegionClass serves Θ(M) requests regardless of N.

The table sweeps N and reports LegionClass's measured request count under
both configurations.
"""

from __future__ import annotations

from typing import List, Optional

from repro.binding.agent import BindingAgentImpl
from repro.binding.hierarchy import build_agent_tree
from repro.experiments.common import ExperimentResult, populate, uniform_sites
from repro.metrics.counters import ComponentId, ComponentKind, MetricsRegistry
from repro.metrics.recorder import SeriesRecorder
from repro.naming.binding import Binding
from repro.core.server import ObjectServer
from repro.security.environment import CallEnvironment
from repro.system.legion import LegionSystem


def _spawn_agent_on(system: LegionSystem, parent: Optional[Binding], label: str) -> ObjectServer:
    """Start an extra Binding Agent out-of-band (bring-up style)."""
    agent_class = system.standard_classes["StandardBindingAgent"]
    impl = BindingAgentImpl(parent=parent)
    loid = agent_class.impl._allocate_instance_loid()
    host = system.site_hosts[system.sites[0].name][0]
    server = ObjectServer(
        system.services,
        loid,
        impl,
        host=host,
        component_kind=ComponentKind.BINDING_AGENT,
        component_name=label,
        cache_capacity=4096,
    )
    server.runtime.set_binding_agent(system.services.default_binding_agent)
    # Register with the class (the 4.2.1 contact-your-class step), so the
    # new agent is locatable through the normal binding mechanism.
    agent_class.impl.register_out_of_band(server.binding())
    return server


def _legion_class_load(
    system: LegionSystem, leaves: List[ObjectServer], class_loids
) -> int:
    """Make every leaf resolve every class binding; return LegionClass load."""
    system.reset_measurements()
    client = system.new_client("e3-driver")
    env = CallEnvironment.originating(client.loid)
    for leaf in leaves:
        for class_loid in class_loids:
            # Ask the leaf directly: GetBinding(class LOID).
            fut = system.spawn(
                client.runtime.call_address(
                    leaf.address, leaf.loid, "GetBinding", (class_loid,), env
                )
            )
            system.kernel.run_until_complete(fut)
    return system.services.metrics.get(
        ComponentId(ComponentKind.LEGION_CLASS, "LegionClass"),
        MetricsRegistry.REQUESTS,
    )


def _measure(n_agents: int, n_classes: int, fanout: int, seed: int, traced: bool = False):
    """Fresh system; returns (flat load, tree load, tree config's spans).

    ``traced`` installs the causal tracer on the tree configuration; the
    returned spans cover exactly the measured load phase (the pre-load
    ``reset_measurements`` clears setup spans along with the counters)
    plus the per-component request counters they must reconcile with.
    """
    # -- flat: n independent root agents.
    system = LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=seed)
    classes = list(populate(system, n_classes, instances_per_class=0))
    flat_leaves = [
        _spawn_agent_on(system, None, f"flat{i}") for i in range(n_agents)
    ]
    flat_load = _legion_class_load(system, flat_leaves, classes)

    # -- tree: same leaf count, combining tree above them.
    system2 = LegionSystem.build(uniform_sites(2, hosts_per_site=2), seed=seed)
    classes2 = list(populate(system2, n_classes, instances_per_class=0))
    counter = [0]

    def spawn(parent: Optional[Binding], level: int, index: int) -> Binding:
        counter[0] += 1
        server = _spawn_agent_on(system2, parent, f"tree-l{level}-{index}")
        return server.binding()

    tree = build_agent_tree(spawn, leaf_count=n_agents, fanout=fanout)
    leaf_servers = [
        s
        for s in _servers_by_binding(system2, tree.leaves)
    ]
    tracer = system2.enable_tracing() if traced else None
    tree_load = _legion_class_load(system2, leaf_servers, classes2)
    spans = list(tracer.spans) if tracer is not None else None
    counts = system2.services.metrics.labelled_counts() if traced else None
    return flat_load, tree_load, spans, counts


def _servers_by_binding(system: LegionSystem, bindings: List[Binding]) -> List[ObjectServer]:
    """Map tree-leaf bindings back to their ObjectServers via the network."""
    wanted = {b.address.primary(): b for b in bindings}
    out = []
    for element, binding in wanted.items():
        endpoint = system.network._endpoints.get(element)
        if endpoint is None:
            raise RuntimeError(f"no endpoint for tree leaf {binding}")
        # The handler is ObjectServer.handle_message (a bound method).
        out.append(endpoint.handler.__self__)
    return out


def run(quick: bool = True, seed: int = 0, trace: Optional[str] = None) -> ExperimentResult:
    """Sweep leaf-agent count; compare flat vs tree LegionClass load.

    With ``trace``, the largest tree configuration runs under the causal
    tracer and the combining-tree *mechanism* is audited: every tree node
    hears from at most ``fanout`` distinct children (the structural fact
    behind the flattened load), and the span ledger reconciles with the
    request counters.
    """
    recorder = SeriesRecorder(x_label="agents")
    result = ExperimentResult(
        experiment="E3",
        title="combining tree flattens LegionClass load (5.2.2)",
        claim=(
            "flat agents hit LegionClass Θ(agents×classes) times; a k-ary "
            "combining tree reduces that to Θ(classes), independent of agents"
        ),
        recorder=recorder,
    )
    fanout = 4
    n_classes = 4 if quick else 8
    sweep = [2, 4, 8] if quick else [2, 4, 8, 16]

    traced_spans = traced_counts = None
    for n_agents in sweep:
        traced = trace is not None and n_agents == sweep[-1]
        flat_load, tree_load, spans, counts = _measure(
            n_agents, n_classes, fanout, seed, traced=traced
        )
        if traced:
            traced_spans, traced_counts = spans, counts
        recorder.add(n_agents, flat=flat_load, tree=tree_load)

    flat_slope = recorder.slope("flat", log_log=True)
    tree_slope = recorder.slope("tree", log_log=True)
    result.check(
        "flat config: LegionClass load grows ~linearly with agents",
        flat_slope > 0.7,
        f"log-log slope {flat_slope:.3f}",
    )
    result.check(
        "tree config: LegionClass load ~independent of agents",
        tree_slope < 0.3,
        f"log-log slope {tree_slope:.3f}",
    )
    final_flat = recorder.series("flat")[-1]
    final_tree = recorder.series("tree")[-1]
    result.check(
        "tree beats flat at the largest scale",
        final_tree < final_flat,
        f"{final_tree} < {final_flat}",
    )

    if traced_spans is not None:
        from repro.experiments.common import export_trace
        from repro.trace.audit import TraceAudit

        audit = TraceAudit(traced_spans)
        fan_in = audit.fan_in_bound(fanout, "binding-agent:tree-")
        result.check(
            "trace: every tree node's fan-in <= arity",
            fan_in.passed,
            fan_in.detail,
        )
        reconcile = audit.reconciles_with(traced_counts, "binding-agent:")
        result.check(
            "trace: span ledger reconciles with agent request counters",
            reconcile.passed,
            reconcile.detail,
        )

        path = export_trace(traced_spans, trace, "e3", seed)
        result.notes = f"trace (largest tree config): {path}"
    return result


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run().render())
