"""Latency classification for the simulated wide-area fabric.

The paper's scalability argument (section 5.2) rests on the assumption that
"most accesses will be local ... within the same organization, for instance
within a department or university campus".  To measure that, the network
needs a notion of *where* endpoints live.  Hosts are assigned to *sites*
(the paper's organizations); messages are then classed as

* ``SAME_HOST``  -- caller and callee on one machine,
* ``SAME_SITE``  -- different machines, one campus (LAN),
* ``WIDE_AREA``  -- across sites (WAN),

and each class has a base latency plus optional jitter.  The defaults are
order-of-magnitude figures for mid-1990s infrastructure (the NII of the
paper); absolute values don't matter for the reproduced claims, only the
local ≪ wide-area ordering does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class LinkClass(enum.Enum):
    """Coarse locality class of a (source host, destination host) pair."""

    SAME_HOST = "same-host"
    SAME_SITE = "same-site"
    WIDE_AREA = "wide-area"


#: Default one-way base latencies, in simulated milliseconds.
DEFAULT_BASE_LATENCY: Dict[LinkClass, float] = {
    LinkClass.SAME_HOST: 0.05,
    LinkClass.SAME_SITE: 1.0,
    LinkClass.WIDE_AREA: 40.0,
}


@dataclass
class LatencyModel:
    """Maps host pairs to one-way message latencies.

    Parameters
    ----------
    base:
        Per-class one-way base latency (milliseconds of simulated time).
    jitter_fraction:
        If > 0, each delivery adds uniform jitter in
        ``[0, jitter_fraction * base)`` drawn from ``rng``.
    rng:
        ``random.Random`` used for jitter; required when jitter is on.
    """

    base: Dict[LinkClass, float] = field(
        default_factory=lambda: dict(DEFAULT_BASE_LATENCY)
    )
    jitter_fraction: float = 0.0
    rng: Optional[object] = None
    _site_of: Dict[int, str] = field(default_factory=dict)

    def assign_host(self, host: int, site: str) -> None:
        """Record that ``host`` (a 32-bit host id) belongs to ``site``."""
        self._site_of[host] = site

    def site_of(self, host: int) -> Optional[str]:
        """The site a host was assigned to, or None if unassigned."""
        return self._site_of.get(host)

    def classify(self, src_host: int, dst_host: int) -> LinkClass:
        """The locality class of a (src, dst) host pair.

        Unassigned hosts are conservatively treated as wide-area peers
        (they are "somewhere on the NII").
        """
        if src_host == dst_host:
            return LinkClass.SAME_HOST
        src_site = self._site_of.get(src_host)
        dst_site = self._site_of.get(dst_host)
        if src_site is not None and src_site == dst_site:
            return LinkClass.SAME_SITE
        return LinkClass.WIDE_AREA

    def latency(self, src_host: int, dst_host: int) -> float:
        """One-way latency for a message between two hosts."""
        return self.latency_of(self.classify(src_host, dst_host))

    def latency_of(self, cls: LinkClass) -> float:
        """One-way latency for an already-classified link.

        The send path classifies once (for per-class stats) and reuses
        the class here instead of walking the site map twice per message.
        """
        value = self.base[cls]
        if self.jitter_fraction > 0.0:
            if self.rng is None:
                raise ValueError("jitter enabled but no rng provided")
            value += self.rng.uniform(0.0, self.jitter_fraction * value)
        return value

    @classmethod
    def uniform(cls, latency: float) -> "LatencyModel":
        """A degenerate model where every link has the same latency.

        Useful in unit tests where locality is irrelevant.
        """
        return cls(base={c: latency for c in LinkClass})
