"""The simulated network: endpoint registry, delivery, failure injection.

The network is the reproduction's stand-in for "standard protocols and the
communication facilities of host operating systems" (paper section 3.3).
Its contract with the layers above:

* **Registration.**  An active Legion object registers a handler under an
  :class:`ObjectAddressElement`.  Registration is what makes an Object
  Address *valid*; deactivation, migration, and deletion unregister it.
* **Delivery.**  ``send`` schedules the handler after a latency drawn from
  the :class:`LatencyModel` for the (source host, destination host) pair.
* **Stale-address detection (4.1.4).**  If the destination element is not
  registered (or the link is partitioned / the drop coin comes up tails),
  the sender receives a ``DELIVERY_FAILURE`` notice after a round-trip-ish
  delay.  This is exactly the signal the paper expects "the Legion
  communication layer of the object ... to detect".
* **Accounting.**  Per-link-class message counts feed the Section 5
  scalability experiments.

The network never interprets payloads; it moves envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.errors import NetworkError
from repro.net.address import ObjectAddressElement
from repro.net.latency import LatencyModel, LinkClass
from repro.net.message import Message, MessageKind
from repro.simkernel.kernel import SimKernel

Handler = Callable[[Message], None]


@dataclass
class NetworkStats:
    """Aggregate traffic counters, reset-able between experiment phases."""

    messages_sent: int = 0
    messages_delivered: int = 0
    delivery_failures: int = 0
    drops: int = 0
    partition_blocks: int = 0
    by_class: Dict[LinkClass, int] = field(
        default_factory=lambda: {c: 0 for c in LinkClass}
    )

    def reset(self) -> None:
        """Zero every counter (used between warm-up and measurement)."""
        self.messages_sent = 0
        self.messages_delivered = 0
        self.delivery_failures = 0
        self.drops = 0
        self.partition_blocks = 0
        for c in LinkClass:
            self.by_class[c] = 0


class Endpoint:
    """A registered (element, handler) pair; returned by ``register``."""

    __slots__ = ("network", "element", "handler", "active")

    def __init__(self, network: "Network", element: ObjectAddressElement, handler: Handler):
        self.network = network
        self.element = element
        self.handler = handler
        self.active = True

    def unregister(self) -> None:
        """Remove this endpoint; subsequent sends to it fail as stale."""
        self.network.unregister(self.element)


class Network:
    """The message fabric connecting all simulated Legion objects."""

    def __init__(
        self,
        kernel: SimKernel,
        latency_model: Optional[LatencyModel] = None,
        rng=None,
    ) -> None:
        self.kernel = kernel
        self.latency = latency_model or LatencyModel()
        self.rng = rng
        self.stats = NetworkStats()
        #: Causal-trace recorder, or None.  The network only *annotates*
        #: traces (injected drops/partition blocks); span lifecycles stay
        #: with the runtimes, so this is None-checked per incident, never
        #: per message.
        self.tracer = None
        self._endpoints: Dict[ObjectAddressElement, Endpoint] = {}
        self._next_port: Dict[int, int] = {}
        #: Per-class probability that a message is silently lost.
        self.drop_probability: Dict[LinkClass, float] = {c: 0.0 for c in LinkClass}
        #: Unordered site pairs currently partitioned from each other.
        self._partitions: Set[frozenset] = set()

    # -- endpoint management --------------------------------------------------

    def allocate_element(self, host: int, node: int = 0) -> ObjectAddressElement:
        """A fresh, unused element on ``host`` (simulated transport).

        Ports are allocated sequentially per host, like an OS handing out
        ephemeral ports.
        """
        port = self._next_port.get(host, 1024)
        while True:
            element = ObjectAddressElement.sim(host=host, port=port, node=node)
            port += 1
            if port > 65535:
                raise NetworkError(f"host {host} ran out of ports")
            if element not in self._endpoints:
                self._next_port[host] = port
                return element

    def register(self, element: ObjectAddressElement, handler: Handler) -> Endpoint:
        """Attach ``handler`` to ``element``; makes the address live."""
        if element in self._endpoints:
            raise NetworkError(f"element {element} already registered")
        ep = Endpoint(self, element, handler)
        self._endpoints[element] = ep
        return ep

    def unregister(self, element: ObjectAddressElement) -> None:
        """Detach the endpoint (idempotent)."""
        ep = self._endpoints.pop(element, None)
        if ep is not None:
            ep.active = False

    def is_registered(self, element: ObjectAddressElement) -> bool:
        """Whether the element currently has a live endpoint."""
        return element in self._endpoints

    # -- failure injection -----------------------------------------------------

    def partition(self, site_a: str, site_b: str) -> None:
        """Block all traffic between two sites (both directions)."""
        self._partitions.add(frozenset((site_a, site_b)))

    def heal(self, site_a: str, site_b: str) -> None:
        """Remove a partition (idempotent)."""
        self._partitions.discard(frozenset((site_a, site_b)))

    def heal_all(self) -> None:
        """Remove every partition."""
        self._partitions.clear()

    def _partitioned(self, src_host: int, dst_host: int) -> bool:
        if not self._partitions:
            return False
        a = self.latency.site_of(src_host)
        b = self.latency.site_of(dst_host)
        if a is None or b is None or a == b:
            return False
        return frozenset((a, b)) in self._partitions

    # -- sending ----------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Dispatch ``message``; delivery (or a failure notice) is scheduled.

        Never raises for remote conditions -- failures come back as
        ``DELIVERY_FAILURE`` messages, matching the paper's model where the
        communication layer *detects* invalid addresses (section 4.1.4).
        """
        src = message.source
        dst = message.destination
        message.sent_at = self.kernel.now
        self.stats.messages_sent += 1
        link = self.latency.classify(src.host, dst.host)
        self.stats.by_class[link] += 1
        one_way = self.latency.latency_of(link)

        if self._partitioned(src.host, dst.host):
            self.stats.partition_blocks += 1
            self._trace_incident(message, "partition-block", link)
            self._bounce(message, "network partition", delay=one_way)
            return

        drop_p = self.drop_probability.get(link, 0.0)
        if drop_p > 0.0 and self.rng is not None and self.rng.random() < drop_p:
            self.stats.drops += 1
            self._trace_incident(message, "drop", link)
            # A silent drop: the sender only learns via its own timeout.
            return

        self.kernel.post(one_way, self._deliver, message, one_way)

    def _deliver(self, message: Message, one_way: float) -> None:
        ep = self._endpoints.get(message.destination)
        if ep is None or not ep.active:
            # Stale Object Address: element no longer registered.
            self._bounce(message, "no endpoint registered", delay=one_way)
            return
        self.stats.messages_delivered += 1
        ep.handler(message)

    def _trace_incident(self, message: Message, what: str, link: LinkClass) -> None:
        """Record a network-injected failure on the message's trace."""
        tracer = self.tracer
        if tracer is None or message.trace is None or not tracer.active:
            return
        tracer.instant(
            what, "net", parent=message.trace, component="net:fabric", link=link.value
        )

    def _bounce(self, message: Message, reason: str, delay: float) -> None:
        """Schedule a DELIVERY_FAILURE notice back at the sender."""
        if message.kind in (MessageKind.REPLY, MessageKind.DELIVERY_FAILURE):
            # Nobody is waiting on a failed reply's failure; drop it.
            self.stats.delivery_failures += 1
            return
        self.stats.delivery_failures += 1
        notice = message.failure_notice(reason)
        src_ep_missing = message.source not in self._endpoints
        if src_ep_missing:
            return  # sender itself is gone; nothing to notify
        self.kernel.post(delay, self._deliver_notice, notice)

    def _deliver_notice(self, notice: Message) -> None:
        ep = self._endpoints.get(notice.destination)
        if ep is not None and ep.active:
            ep.handler(notice)

    # -- introspection ------------------------------------------------------------

    @property
    def endpoint_count(self) -> int:
        """Number of live endpoints (== active Legion object processes)."""
        return len(self._endpoints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Network endpoints={len(self._endpoints)} "
            f"sent={self.stats.messages_sent}>"
        )
