"""Object Addresses and Object Address Elements (paper section 3.4).

An Object Address Element is a 32-bit *address type* plus 256 bits of
type-specific information.  For the IP type the paper allocates 32 bits of
IP address, 16 bits of port, and on multiprocessors a 32-bit
platform-specific node number; the remaining bits are zero.  We pack and
unpack these fields exactly so the representation is bit-faithful, while
also exposing convenience accessors.

An Object Address is a *list* of elements plus semantic information saying
how the list is to be used (paper Fig. 14): all of them, one at random,
k of N, or the first that answers.  Multi-element addresses with an
appropriate semantic are how Legion replicates an object at the system
level without changing application semantics (section 4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from repro.errors import AddressError

_U32 = (1 << 32) - 1
_U16 = (1 << 16) - 1
_INFO_BITS = 256
_INFO_MASK = (1 << _INFO_BITS) - 1


class AddressType(enum.IntEnum):
    """The 32-bit address-type field of an Object Address Element."""

    IP = 1
    XTP = 2
    #: Simulated transport used by this reproduction's network fabric.
    #: Behaves like IP (host, port, node) but marks the element as born
    #: inside the simulator rather than parsed from the outside world.
    SIM = 1000


class AddressSemantic(enum.Enum):
    """How the element list of an Object Address is to be used (Fig. 14).

    The paper names send-to-all, choose-one-at-random, and k-of-N as the
    envisioned options and leaves the full set open; FIRST (try elements
    in order until one answers) is our one user-defined extension, used
    for primary/backup replica groups.
    """

    ALL = "all"
    ANY_RANDOM = "any-random"
    K_OF_N = "k-of-n"
    FIRST = "first"


@dataclass(frozen=True, order=True, slots=True)
class ObjectAddressElement:
    """One physical address: a 32-bit type plus 256 bits of information.

    ``host`` is the simulated analogue of the 32-bit IP address, ``port``
    the 16-bit port, and ``node`` the 32-bit multiprocessor node number.
    """

    addr_type: int
    host: int
    port: int
    node: int = 0

    def __post_init__(self) -> None:
        if not (0 <= self.addr_type <= _U32):
            raise AddressError(f"address type {self.addr_type} exceeds 32 bits")
        if not (0 <= self.host <= _U32):
            raise AddressError(f"host field {self.host} exceeds 32 bits")
        if not (0 <= self.port <= _U16):
            raise AddressError(f"port field {self.port} exceeds 16 bits")
        if not (0 <= self.node <= _U32):
            raise AddressError(f"node field {self.node} exceeds 32 bits")

    # -- bit-level form (paper-faithful packing) ----------------------------

    def info_bits(self) -> int:
        """The 256-bit information field as an integer.

        Layout (from the high end): host(32) | port(16) | node(32) | 0...
        mirroring "48 of the 256 bits will be utilized: 32 bits for the IP
        address, and 16 bits for a port number", with the optional 32-bit
        node number following.
        """
        value = self.host
        value = (value << 16) | self.port
        value = (value << 32) | self.node
        return value << (_INFO_BITS - 80)

    def pack(self) -> bytes:
        """36-byte wire form: 4 bytes of type + 32 bytes of information."""
        return self.addr_type.to_bytes(4, "big") + self.info_bits().to_bytes(32, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "ObjectAddressElement":
        """Inverse of :meth:`pack`."""
        if len(data) != 36:
            raise AddressError(f"element wire form must be 36 bytes, got {len(data)}")
        addr_type = int.from_bytes(data[:4], "big")
        info = int.from_bytes(data[4:], "big")
        if info & ((1 << (_INFO_BITS - 80)) - 1):
            raise AddressError("unused information bits are non-zero")
        packed = info >> (_INFO_BITS - 80)
        node = packed & _U32
        port = (packed >> 32) & _U16
        host = (packed >> 48) & _U32
        return cls(addr_type=addr_type, host=host, port=port, node=node)

    # -- convenience --------------------------------------------------------

    @classmethod
    def sim(cls, host: int, port: int, node: int = 0) -> "ObjectAddressElement":
        """An element on the simulated transport."""
        return cls(addr_type=AddressType.SIM, host=host, port=port, node=node)

    @classmethod
    def ip(cls, host: int, port: int, node: int = 0) -> "ObjectAddressElement":
        """An element of the paper's most common type."""
        return cls(addr_type=AddressType.IP, host=host, port=port, node=node)

    def __str__(self) -> str:
        t = AddressType(self.addr_type).name if self.addr_type in AddressType._value2member_map_ else str(self.addr_type)
        suffix = f"/{self.node}" if self.node else ""
        return f"{t}:{self.host}:{self.port}{suffix}"


@dataclass(frozen=True, slots=True)
class ObjectAddress:
    """A list of Object Address Elements plus usage semantics (Fig. 14)."""

    elements: Tuple[ObjectAddressElement, ...]
    semantic: AddressSemantic = AddressSemantic.FIRST
    #: Only meaningful for K_OF_N.
    k: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.elements, tuple):
            object.__setattr__(self, "elements", tuple(self.elements))
        if not self.elements:
            raise AddressError("an Object Address needs at least one element")
        if self.semantic is AddressSemantic.K_OF_N:
            if not (1 <= self.k <= len(self.elements)):
                raise AddressError(
                    f"k={self.k} outside 1..{len(self.elements)} for K_OF_N address"
                )

    @classmethod
    def single(cls, element: ObjectAddressElement) -> "ObjectAddress":
        """The common case: one element, FIRST semantics."""
        return cls(elements=(element,))

    @classmethod
    def replicated(
        cls,
        elements: Sequence[ObjectAddressElement],
        semantic: AddressSemantic = AddressSemantic.ANY_RANDOM,
        k: int = 1,
    ) -> "ObjectAddress":
        """A multi-element (replica-group) address, section 4.3 style."""
        return cls(elements=tuple(elements), semantic=semantic, k=k)

    # -- wire form -----------------------------------------------------------

    def pack(self) -> bytes:
        """Length-prefixed concatenation of element wire forms + semantics."""
        head = len(self.elements).to_bytes(2, "big")
        sem = self.semantic.value.encode().ljust(12, b"\0")
        kb = self.k.to_bytes(2, "big")
        return head + sem + kb + b"".join(e.pack() for e in self.elements)

    @classmethod
    def unpack(cls, data: bytes) -> "ObjectAddress":
        """Inverse of :meth:`pack`."""
        if len(data) < 16:
            raise AddressError("truncated Object Address")
        n = int.from_bytes(data[:2], "big")
        sem = AddressSemantic(data[2:14].rstrip(b"\0").decode())
        k = int.from_bytes(data[14:16], "big")
        body = data[16:]
        if len(body) != 36 * n:
            raise AddressError("Object Address body length mismatch")
        elements = tuple(
            ObjectAddressElement.unpack(body[i * 36 : (i + 1) * 36]) for i in range(n)
        )
        return cls(elements=elements, semantic=sem, k=k)

    # -- behaviour -----------------------------------------------------------

    def primary(self) -> ObjectAddressElement:
        """The first element (the only one, for unreplicated objects)."""
        return self.elements[0]

    def targets(self, rng=None) -> Tuple[ObjectAddressElement, ...]:
        """The elements a single send should address, per the semantic.

        ``rng`` (a ``random.Random``) is required for ANY_RANDOM and is
        used to pick the element; deterministic semantics ignore it.
        For FIRST the caller is expected to try elements in the returned
        order until one answers; for K_OF_N the caller sends to all and
        waits for ``k`` replies.
        """
        if self.semantic is AddressSemantic.ALL:
            return self.elements
        if self.semantic is AddressSemantic.K_OF_N:
            return self.elements
        if self.semantic is AddressSemantic.ANY_RANDOM:
            if rng is None:
                raise AddressError("ANY_RANDOM address needs an rng to pick a target")
            return (self.elements[rng.randrange(len(self.elements))],)
        return self.elements  # FIRST: in order

    def without(self, element: ObjectAddressElement) -> Optional["ObjectAddress"]:
        """A copy lacking ``element``; None if that would empty the list.

        Used by replica managers to shrink a group after a member fails.
        """
        remaining = tuple(e for e in self.elements if e != element)
        if not remaining:
            return None
        k = min(self.k, len(remaining)) if self.semantic is AddressSemantic.K_OF_N else self.k
        return ObjectAddress(elements=remaining, semantic=self.semantic, k=k)

    def __iter__(self) -> Iterator[ObjectAddressElement]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __str__(self) -> str:
        inner = ",".join(str(e) for e in self.elements)
        if self.semantic is AddressSemantic.K_OF_N:
            return f"[{inner}|{self.semantic.value}:{self.k}]"
        return f"[{inner}|{self.semantic.value}]"
