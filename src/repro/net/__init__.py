"""Simulated wide-area network substrate.

Implements the paper's addressing layer (section 3.4) and the message
delivery fabric the Legion communication layer rides on:

* :class:`ObjectAddressElement` -- 32-bit address-type field plus 256 bits
  of type-specific information (the paper's first and most common type is
  IP: 32-bit address + 16-bit port, plus an optional 32-bit node number on
  multiprocessors).
* :class:`ObjectAddress` -- a list of elements together with a semantic
  describing how to use the list (send-to-all, pick-one-at-random,
  k-of-N, ...), which is what enables system-level object replication
  (section 4.3).
* :class:`Network` -- registers endpoints under elements, delivers
  messages with latencies drawn from a (local | LAN | WAN) classification
  of the endpoints' hosts, and -- crucially for stale-binding detection
  (section 4.1.4) -- reports a :class:`~repro.errors.DeliveryFailure` to
  the sender when the destination element is no longer registered.
"""

from repro.net.address import (
    AddressSemantic,
    AddressType,
    ObjectAddress,
    ObjectAddressElement,
)
from repro.net.latency import LatencyModel, LinkClass
from repro.net.message import Message, MessageKind
from repro.net.network import Endpoint, Network, NetworkStats

__all__ = [
    "AddressSemantic",
    "AddressType",
    "ObjectAddress",
    "ObjectAddressElement",
    "LatencyModel",
    "LinkClass",
    "Message",
    "MessageKind",
    "Endpoint",
    "Network",
    "NetworkStats",
]
