"""The operating-mode governor: banded system health with a hash-chained ledger.

The runtime grew rich *local* health signals PR by PR -- admission-shed
counters (repro.flow), retry-token denials (RetryPolicy), FaultLog
loss/recovery reconciliation (repro.faults), under-replication queries
(repro.replication) -- but no *system-level* answer to "how degraded are
we".  This package adds that answer as a five-band state machine in the
archon72 legitimacy-band shape (SNIPPETS.md section 1-2): Stable →
Strained → Eroding → Compromised → Failed, moving **one band at a time**
by rule over windowed evidence, with per-direction hysteresis and
dwell-time cooldowns, and **every transition appended to a tamper-evident
hash-chained ledger** together with the evidence snapshot that justified
it -- making slow rot audible instead of letting collapse arrive as a
surprise.

Bands change *policy*, not just reporting (see :mod:`repro.health.governor`):

* **flow** -- admission queue limits and retry-token refill tighten;
* **autoscale** -- clone floors rise while the system is degraded;
* **replication** -- repair sweeps gain flow priority and cadence;
* **magistrates** -- recovery sweeps accelerate;
* **Failed** -- non-critical application classes are paused (shed with a
  first-class reason) while a critical allowlist keeps serving.

Everything runs on simulated time from seeded state: band timelines and
ledgers are byte-identical across ``--jobs``/``--shards``.  With no
governor installed nothing in this package runs: zero hot-path cost.
"""

from repro.health.bands import Band, BandMachine, BandRules, Transition
from repro.health.evidence import EvidenceCollector, HealthEvidence
from repro.health.governor import (
    DEFAULT_POLICIES,
    BandPolicy,
    Governor,
    GovernorConfig,
    enable_governor,
)
from repro.health.ledger import HealthLedger, LedgerRecord

__all__ = [
    "Band",
    "BandMachine",
    "BandPolicy",
    "BandRules",
    "DEFAULT_POLICIES",
    "EvidenceCollector",
    "Governor",
    "GovernorConfig",
    "HealthEvidence",
    "HealthLedger",
    "LedgerRecord",
    "Transition",
    "enable_governor",
]
