"""HealthEvidence: one reconciled, windowed view of system health.

The governor must not invent a second telemetry plane: every signal here
is read from ledgers the system already keeps -- the metrics registry's
``shed`` counters, RuntimeStats retry denials, FaultLog loss/recovery
incidents, the GlobalReplicaIndex's under-replication query, and
server-side queue depths -- the same triple-entry discipline PR-5's shed
accounting established.  Like the autoscaler's LoadMonitor, the collector
owns no wires and sends no messages, so observing the system costs the
system nothing and stays deterministic on simulated time.

A snapshot is *reconciled*: it carries all three shed ledgers (metrics
counters, FaultLog observations, callers' wire-level settlements) so the
governor, the experiments, and TraceAudit (``evidence_reconciles``) all
read one consistent view instead of each summing its own.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.metrics.counters import MetricsRegistry


@dataclass(frozen=True)
class HealthEvidence:
    """One windowed observation of system health (the governor's input).

    Rates are per simulated ms over ``window``; levels are instantaneous.
    The cumulative totals behind the rates ride along for reconciliation
    and for the ledger's evidence snapshots.
    """

    time: float
    #: Actual span of the sliding window the rates cover (ms; 0 on the
    #: first snapshot, when no earlier sample exists to diff against).
    window: float
    #: Admission sheds per ms, summed over every component.
    shed_rate: float
    #: Retry-token denials per ms, summed over tracked runtimes.
    retry_denied_rate: float
    #: Objects lost (FaultLog) with no recovery observed yet.
    loss_backlog: int
    #: Replica groups below their target size (0 without replication).
    under_replicated: int
    #: Worst per-server backlog: in-flight + admission-queue waiters.
    queue_depth: int
    #: 90th-percentile per-server backlog (reports; rules use the max).
    queue_depth_p90: int
    #: Cumulative sheds, one total per ledger (triple-entry).
    shed_metrics: int
    shed_faultlog: int
    shed_wire: int
    #: Cumulative retry-token denials over tracked runtimes.
    retry_denied_total: int
    #: Cumulative FaultLog loss / recovery observations.
    faults_lost: int
    faults_recovered: int

    @property
    def consistent(self) -> bool:
        """True when the three shed ledgers agree (see :meth:`ledgers`)."""
        return self.shed_metrics == self.shed_faultlog == self.shed_wire

    def ledgers(self) -> Dict[str, int]:
        """The triple-entry shed view: metrics == FaultLog == wire.

        ``metrics`` counts server-side shed replies, ``faultlog`` the
        incident observations the same code path appends, ``wire`` the
        Overloaded settlements tracked callers saw.  All three must agree
        when a FaultLog is installed and every caller is tracked.
        """
        return {
            "metrics": self.shed_metrics,
            "faultlog": self.shed_faultlog,
            "wire": self.shed_wire,
        }

    def to_json(self) -> Dict[str, Any]:
        """A JSON-safe dict with deterministic float rounding.

        This is the exact shape the hash-chained ledger serialises, so
        rounding here *is* the canonical form verification recomputes.
        """
        return {
            "time": round(self.time, 6),
            "window": round(self.window, 6),
            "shed_rate": round(self.shed_rate, 6),
            "retry_denied_rate": round(self.retry_denied_rate, 6),
            "loss_backlog": self.loss_backlog,
            "under_replicated": self.under_replicated,
            "queue_depth": self.queue_depth,
            "queue_depth_p90": self.queue_depth_p90,
            "shed_metrics": self.shed_metrics,
            "shed_faultlog": self.shed_faultlog,
            "shed_wire": self.shed_wire,
            "retry_denied_total": self.retry_denied_total,
            "faults_lost": self.faults_lost,
            "faults_recovered": self.faults_recovered,
        }


class EvidenceCollector:
    """Sample the existing ledgers into :class:`HealthEvidence` snapshots.

    Keeps a sliding deque of cumulative samples; rates diff the newest
    against the oldest sample still inside ``window`` simulated ms, so a
    single quiet tick cannot hide a hot window (and vice versa).

    Client consoles are not reachable from the system object, so callers
    whose wire-level sheds and retry denials should count must be
    registered with :meth:`track` -- experiments track their traffic
    clients, exactly as E15 summed ``_all_runtimes``.
    """

    def __init__(self, system, window: float = 60.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.system = system
        self.window = window
        #: (time, shed_metrics, retry_denied_total) cumulative history.
        self._history: Deque[Tuple[float, int, int]] = deque()
        self._tracked: List[Any] = []
        self._index_impl: Any = None

    # ----------------------------------------------------------------- wiring

    def track(self, *servers) -> None:
        """Register caller ObjectServers (or runtimes) for wire-side sums."""
        for server in servers:
            runtime = getattr(server, "runtime", server)
            if runtime not in self._tracked:
                self._tracked.append(runtime)

    # ---------------------------------------------------------------- reading

    def _runtimes(self) -> List[Any]:
        """Every runtime whose stats settle requests: infrastructure,
        residents of host process tables, and tracked clients."""
        system = self.system
        servers = (
            [system.host_servers[h] for h in sorted(system.host_servers)]
            + [system.magistrates[s] for s in sorted(system.magistrates)]
            + [system.agents[s] for s in sorted(system.agents)]
        )
        for host_id in sorted(system.host_servers):
            for entry in system.host_servers[host_id].impl.processes.running():
                servers.append(entry.server)
        runtimes = [s.runtime for s in servers]
        runtimes.extend(self._tracked)
        return runtimes

    def admitted_servers(self) -> List[Any]:
        """Live servers with an admission controller, in deterministic
        order (the flow-policy and pause targets)."""
        system = self.system
        out = []
        for host_id in sorted(system.host_servers):
            for entry in system.host_servers[host_id].impl.processes.running():
                server = entry.server
                if server.active and server.admission is not None:
                    out.append(server)
        return out

    def _backlogs(self) -> List[int]:
        """Per-server backlog (in-flight + admission waiters), app objects."""
        out = []
        system = self.system
        for host_id in sorted(system.host_servers):
            for entry in system.host_servers[host_id].impl.processes.running():
                server = entry.server
                if not server.active:
                    continue
                backlog = server.in_flight
                if server.admission is not None:
                    backlog += sum(
                        server.admission._size(m) for m in server.admission.waiting
                    )
                out.append(backlog)
        return out

    def _under_replicated(self) -> int:
        """Groups below target, straight off the GlobalReplicaIndex impl."""
        directory = getattr(self.system.services, "replication", None)
        if directory is None:
            return 0
        impl = self._index_impl
        if impl is None or not getattr(impl, "server", None) or not impl.server.active:
            from repro.replication.catalog import GlobalReplicaIndexImpl

            impl = None
            for host_id in sorted(self.system.host_servers):
                table = self.system.host_servers[host_id].impl.processes
                for entry in table.running():
                    if isinstance(entry.server.impl, GlobalReplicaIndexImpl):
                        impl = entry.server.impl
                        break
                if impl is not None:
                    break
            self._index_impl = impl
        if impl is None:
            return 0
        return len(impl.under_replicated())

    def snapshot(self) -> HealthEvidence:
        """One reconciled evidence snapshot at the current simulated time."""
        system = self.system
        now = system.kernel.now
        metrics = system.services.metrics
        shed_metrics = sum(metrics.snapshot(None, MetricsRegistry.SHED).values())
        runtimes = self._runtimes()
        shed_wire = sum(rt.stats.shed for rt in runtimes)
        retry_denied = sum(rt.stats.retry_denied for rt in runtimes)
        fault_log = system.services.fault_log
        if fault_log is not None:
            shed_faultlog = sum(
                1 for i in fault_log.observed if i.kind == "request-shed"
            )
            lost = set(fault_log.lost_objects())
            recovered = set(fault_log.recovered_objects())
            faults_lost, faults_recovered = len(lost), len(recovered)
            loss_backlog = len(lost - recovered)
        else:
            # No FaultLog installed: nothing observes sheds server-side,
            # so the faultlog column mirrors metrics to stay reconciled.
            shed_faultlog = shed_metrics
            faults_lost = faults_recovered = loss_backlog = 0

        self._history.append((now, shed_metrics, retry_denied))
        while len(self._history) > 1 and self._history[1][0] <= now - self.window:
            self._history.popleft()
        t0, shed0, denied0 = self._history[0]
        span = now - t0
        shed_rate = (shed_metrics - shed0) / span if span > 0 else 0.0
        denied_rate = (retry_denied - denied0) / span if span > 0 else 0.0

        backlogs = sorted(self._backlogs())
        depth = backlogs[-1] if backlogs else 0
        p90 = backlogs[int(0.9 * (len(backlogs) - 1))] if backlogs else 0

        return HealthEvidence(
            time=now,
            window=span,
            shed_rate=shed_rate,
            retry_denied_rate=denied_rate,
            loss_backlog=loss_backlog,
            under_replicated=self._under_replicated(),
            queue_depth=depth,
            queue_depth_p90=p90,
            shed_metrics=shed_metrics,
            shed_faultlog=shed_faultlog,
            shed_wire=shed_wire,
            retry_denied_total=retry_denied,
            faults_lost=faults_lost,
            faults_recovered=faults_recovered,
        )
