"""The five-band operating-mode state machine (bands, not points).

Bands follow the archon72 legitimacy design (SNIPPETS.md sections 1-2):
health is measured in **bands, not numeric scores**, bands change **by
rule, not debate**, and movement is **one step at a time** in both
directions -- a system cannot skip from Stable to Compromised, and a
recovering system must climb back through every band it fell through.

Transitions are driven by windowed :class:`~repro.health.evidence
.HealthEvidence` against a threshold ladder:

* **degrading**: a signal exceeding ``threshold * ladder[s-1]`` indicates
  severity ``s``; when the indicated severity exceeds the current band
  (and the degrade dwell since entering the band has elapsed), the band
  moves one step down the health scale.
* **recovering**: recovery demands more than the absence of the degrade
  trigger -- every signal must sit below the *hysteresis-scaled*
  thresholds of the current band (``recover_fraction < 1``) continuously
  for ``recover_dwell`` simulated ms.  One hot tick resets the calm
  streak, so alternating hot/calm evidence ratchets the band at its
  worst level instead of oscillating.

The machine is pure data + arithmetic: no kernel, no wires.  The
:class:`~repro.health.governor.Governor` drives it on simulated time and
ledgers its transitions; unit and property tests drive it directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import LegionError


class Band(enum.IntEnum):
    """Operating modes, ordered by severity (0 = healthy)."""

    STABLE = 0
    STRAINED = 1
    ERODING = 2
    COMPROMISED = 3
    FAILED = 4

    @property
    def label(self) -> str:
        """Canonical lower-case name used in ledgers and reports."""
        return self.name.lower()

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    Band.STABLE: "normal operations; signals inside every threshold",
    Band.STRAINED: "repeated pressure; admission and retries tighten",
    Band.ERODING: "sustained degradation; floors rise, sweeps accelerate",
    Band.COMPROMISED: "service no longer presumptively healthy; heavy shedding",
    Band.FAILED: "non-critical classes paused; only the allowlist serves",
}

#: Signal name → HealthEvidence attribute carrying it.  Order is the
#: canonical reason order (alphabetical) used in ledger records.
SIGNALS: Tuple[Tuple[str, str], ...] = (
    ("loss_backlog", "loss_backlog"),
    ("queue_depth", "queue_depth"),
    ("retry_denied_rate", "retry_denied_rate"),
    ("shed_rate", "shed_rate"),
    ("under_replicated", "under_replicated"),
)


@dataclass(frozen=True)
class BandRules:
    """Thresholds at severity 1 (Strained) plus the escalation ladder.

    A signal value strictly above ``base * ladder[s-1]`` indicates
    severity ``s`` (1-based; ``ladder`` must be strictly increasing so
    severities nest).  ``recover_fraction`` scales every threshold down
    for the recovery test -- the per-direction hysteresis gap.
    """

    #: Admission sheds per simulated ms, system-wide (severity-1 level).
    shed_rate: float = 0.3
    #: Retry-token denials per simulated ms, system-wide.
    retry_denied_rate: float = 0.1
    #: Objects lost (FaultLog) and not yet observed recovered.
    loss_backlog: float = 2.0
    #: Replica groups below their target size (0 without replication).
    under_replicated: float = 1.0
    #: Worst per-server backlog (in flight + admission queue).
    queue_depth: float = 24.0
    #: Multiplier per severity step; strictly increasing, one per band
    #: below Stable (Strained, Eroding, Compromised, Failed).
    ladder: Tuple[float, float, float, float] = (1.0, 3.0, 9.0, 27.0)
    #: Recovery thresholds as a fraction of the degrade thresholds
    #: (must be in (0, 1]: the hysteresis gap between the two directions).
    recover_fraction: float = 0.5

    def __post_init__(self) -> None:
        if len(self.ladder) != len(Band) - 1:
            raise LegionError(
                f"ladder needs {len(Band) - 1} rungs, got {len(self.ladder)}"
            )
        if any(b <= a for a, b in zip(self.ladder, self.ladder[1:], strict=False)):
            raise LegionError(f"ladder must strictly increase, got {self.ladder}")
        if not 0.0 < self.recover_fraction <= 1.0:
            raise LegionError(
                f"recover_fraction must be in (0, 1], got {self.recover_fraction}"
            )
        for name, _attr in SIGNALS:
            if getattr(self, name) <= 0:
                raise LegionError(f"threshold {name} must be > 0")

    # ------------------------------------------------------------- evaluation

    def breaches(self, evidence, scale: float = 1.0) -> List[Tuple[str, int]]:
        """(signal, severity) for every signal above a scaled threshold.

        ``scale`` < 1 tightens the thresholds (the recovery test);
        severity is the highest rung the signal clears.  Sorted by signal
        name so reasons are deterministic.
        """
        out: List[Tuple[str, int]] = []
        for name, attr in SIGNALS:
            value = float(getattr(evidence, attr))
            base = getattr(self, name) * scale
            severity = 0
            for rung, multiplier in enumerate(self.ladder, start=1):
                if value > base * multiplier:
                    severity = rung
            if severity:
                out.append((name, severity))
        return out

    def severity(self, evidence, scale: float = 1.0) -> Band:
        """The worst indicated severity (Stable when nothing breaches)."""
        breached = self.breaches(evidence, scale)
        return Band(max((s for _n, s in breached), default=0))

    def reasons_at(self, evidence, severity: int) -> List[str]:
        """Signals indicating at least ``severity`` (the transition reason)."""
        return [n for n, s in self.breaches(evidence) if s >= severity]


@dataclass(frozen=True)
class Transition:
    """One band change, as decided by :meth:`BandMachine.step`."""

    time: float
    from_band: Band
    to_band: Band
    #: "degrade" | "recover".
    direction: str
    #: Breached signals (degrade) or "calm" (recover).
    reason: str
    #: The severity the evidence indicated at decision time.
    severity: Band


class BandMachine:
    """Current band + the transition rules (pure; no kernel, no wires).

    ``degrade_dwell`` is the minimum time in a band before degrading
    further (one step per dwell, even under catastrophic evidence -- the
    "never skips a band" rule).  ``recover_dwell`` is the minimum
    *continuously calm* time before recovering one step; any hot tick
    resets the streak.
    """

    def __init__(
        self,
        rules: Optional[BandRules] = None,
        degrade_dwell: float = 40.0,
        recover_dwell: float = 120.0,
        now: float = 0.0,
    ) -> None:
        if degrade_dwell < 0 or recover_dwell < 0:
            raise LegionError("dwell times must be >= 0")
        self.rules = rules or BandRules()
        self.degrade_dwell = degrade_dwell
        self.recover_dwell = recover_dwell
        self.band = Band.STABLE
        #: Simulated time the current band was entered.
        self.entered_at = now
        #: Start of the current continuously-calm streak (None = hot).
        self._calm_since: Optional[float] = None

    # ------------------------------------------------------------------ step

    def step(self, evidence, now: float) -> Optional[Transition]:
        """Advance one observation; return the Transition taken, or None.

        At most one band of movement per call, in either direction --
        callers tick on a cadence, so the dwell times bound the slew rate
        in simulated time, not in tick counts.
        """
        rules = self.rules
        severity = rules.severity(evidence)
        if severity > self.band:
            # Degrading: evidence indicates a worse band than we are in.
            self._calm_since = None
            if now - self.entered_at < self.degrade_dwell and self.band > Band.STABLE:
                return None
            target = Band(self.band + 1)
            reason = ",".join(rules.reasons_at(evidence, target))
            return self._move(target, "degrade", reason, severity, now)
        if self.band is Band.STABLE:
            self._calm_since = None
            return None
        # Candidate recovery: calm means *every* signal sits below the
        # hysteresis-scaled thresholds of the band we would drop to the
        # edge of -- i.e. the tightened evidence reads below the current
        # band, not merely "no longer above it".
        calm = rules.severity(evidence, rules.recover_fraction) < self.band
        if not calm:
            self._calm_since = None
            return None
        if self._calm_since is None:
            self._calm_since = now
        streak_ok = now - self._calm_since >= self.recover_dwell
        dwell_ok = now - self.entered_at >= self.recover_dwell
        if not (streak_ok and dwell_ok):
            return None
        return self._move(Band(self.band - 1), "recover", "calm", severity, now)

    def _move(
        self, to_band: Band, direction: str, reason: str, severity: Band, now: float
    ) -> Transition:
        transition = Transition(
            time=now,
            from_band=self.band,
            to_band=to_band,
            direction=direction,
            reason=reason,
            severity=severity,
        )
        self.band = to_band
        self.entered_at = now
        self._calm_since = None
        return transition
