"""Ledger verification CLI: prove a band-transition ledger intact.

Usage::

    python -m repro.health.verify LEDGER [LEDGER ...]

Each LEDGER is a JSONL file written by :meth:`HealthLedger.write` (one
canonical record per line).  The chain is recomputed from GENESIS: any
edited, dropped, or reordered record makes the process exit non-zero and
name the first bad sequence number.  Verification depends only on the
file bytes, so it is stable across ``--jobs``/``--shards`` and across
machines -- CI verifies the E17 ledger artifacts with exactly this
entry point.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.health.ledger import HealthLedger


def verify_file(path: str) -> Optional[str]:
    """Verify one ledger file; return an error string or None if intact."""
    try:
        records = HealthLedger.load_records(path)
    except (OSError, ValueError) as exc:
        return f"unreadable ledger: {exc}"
    return HealthLedger.verify_records(records)


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or "-h" in argv or "--help" in argv:
        print(__doc__.strip())
        return 0 if argv else 2
    status = 0
    for path in argv:
        error = verify_file(path)
        if error is None:
            count = len(HealthLedger.load_records(path))
            print(f"{path}: OK ({count} records, chain intact)")
        else:
            print(f"{path}: TAMPERED -- {error}")
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
