"""The operating-mode governor: bands that change policy, not just reports.

One control loop on simulated time: every ``tick`` ms it takes a
reconciled :class:`~repro.health.evidence.HealthEvidence` snapshot,
steps the :class:`~repro.health.bands.BandMachine`, ledgers any
transition (with the evidence that justified it), and applies the
current band's :class:`BandPolicy` to the subsystems it governs:

* **flow** -- admission queue limits shrink (pushback arrives sooner)
  and retry-token refill slows, per band;
* **autoscale** -- the clone floor rises while degraded, so capacity is
  already standing when the band recovers;
* **replication** -- repair sweeps run more often with a flow-priority
  boost, so re-replication outbids background work as bands worsen;
* **magistrates** -- recovery sweeps accelerate, bounding
  time-to-recover by the (tightened) sweep interval;
* **Failed** -- admission for non-critical component names is paused
  (arrivals shed with the first-class reason ``"paused"``) while the
  ``critical`` allowlist keeps serving.

Policies are applied *idempotently from captured baselines* on every
tick -- scaling is always relative to the configuration the governor
first saw, never compounded, and servers or clones born mid-band pick
the policy up on the next tick.  ``stop()`` restores every baseline.

With no governor installed nothing here runs; the only hot-path trace
of this package is one ``paused`` attribute check on the (flow-only)
admission intake, so the governor-disabled call path stays within the
PR-6 zero-overhead envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.health.bands import Band, BandMachine, BandRules
from repro.health.evidence import EvidenceCollector, HealthEvidence
from repro.health.ledger import HealthLedger
from repro.simkernel.kernel import Timeout


@dataclass(frozen=True)
class BandPolicy:
    """What one band does to the governed subsystems (all relative)."""

    #: Admission queue_limit multiplier (1.0 = baseline, smaller = stricter).
    queue_scale: float = 1.0
    #: Retry-token refill multiplier (0.0 freezes refill entirely).
    refill_scale: float = 1.0
    #: Clone floor forced onto attached autoscalers (capped by max_clones).
    min_clones: int = 0
    #: Multiplier on recovery-sweep cadence (< 1 sweeps more often).
    sweep_scale: float = 1.0
    #: Multiplier on replica-repair cadence and pacing (< 1 repairs harder).
    repair_scale: float = 1.0
    #: Added to the repair client's flow priority (lifts repair traffic
    #: past admission shedding as bands worsen; baseline is negative).
    repair_boost: int = 0
    #: Failed-band switch: pause admission for non-critical components.
    pause_non_critical: bool = False


#: The default band → policy ladder: each band strictly tightens on the
#: one above it, Failed adds the pause.
DEFAULT_POLICIES: Mapping[Band, BandPolicy] = {
    Band.STABLE: BandPolicy(),
    Band.STRAINED: BandPolicy(
        queue_scale=0.75, refill_scale=0.5, min_clones=1,
        sweep_scale=0.5, repair_scale=0.5,
    ),
    Band.ERODING: BandPolicy(
        queue_scale=0.5, refill_scale=0.25, min_clones=2,
        sweep_scale=0.25, repair_scale=0.25, repair_boost=1,
    ),
    Band.COMPROMISED: BandPolicy(
        queue_scale=0.25, refill_scale=0.1, min_clones=2,
        sweep_scale=0.125, repair_scale=0.125, repair_boost=2,
    ),
    Band.FAILED: BandPolicy(
        queue_scale=0.25, refill_scale=0.0, min_clones=2,
        sweep_scale=0.125, repair_scale=0.125, repair_boost=2,
        pause_non_critical=True,
    ),
}


@dataclass(frozen=True)
class GovernorConfig:
    """Everything the governor needs besides the system itself."""

    rules: BandRules = field(default_factory=BandRules)
    #: Minimum simulated ms in a band before degrading one further step.
    degrade_dwell: float = 40.0
    #: Minimum continuously-calm simulated ms before recovering one step.
    recover_dwell: float = 120.0
    #: Observation cadence (simulated ms between evidence snapshots).
    tick: float = 10.0
    #: Sliding evidence window the rates are computed over.
    window: float = 60.0
    #: Component names whose admission is never paused in Failed.
    critical: FrozenSet[str] = frozenset()
    policies: Mapping[Band, BandPolicy] = field(
        default_factory=lambda: DEFAULT_POLICIES
    )


class Governor:
    """Bind a BandMachine + ledger to a live system and govern its policy."""

    def __init__(self, system, config: Optional[GovernorConfig] = None) -> None:
        self.system = system
        self.config = config or GovernorConfig()
        self.collector = EvidenceCollector(system, window=self.config.window)
        self.machine = BandMachine(
            rules=self.config.rules,
            degrade_dwell=self.config.degrade_dwell,
            recover_dwell=self.config.recover_dwell,
            now=system.kernel.now,
        )
        self.ledger = HealthLedger()
        self.last_evidence: Optional[HealthEvidence] = None
        #: Governed controllers (attach()); None = that coupling is off.
        self.autoscalers: List[Any] = []
        self.sweeper: Any = None
        self.repair: Any = None
        #: Captured baselines, keyed by id() with a strong reference to
        #: the owner riding along (keeps ids stable against gc reuse).
        self._base_flow: Dict[int, Tuple[Any, Any]] = {}
        self._base_retry: Dict[int, Tuple[Any, Any]] = {}
        self._base_scale: Dict[int, Tuple[Any, Any]] = {}
        self._base_sweep: Optional[float] = None
        self._base_repair: Optional[Tuple[float, int, float]] = None
        self._retry_runtimes: List[Any] = []
        self._proc = None

    # ---------------------------------------------------------------- plumbing

    @property
    def band(self) -> Band:
        return self.machine.band

    def band_history(self) -> List[Tuple[float, str, str]]:
        """(time, from, to) per ledgered transition, in order."""
        return [(r.time, r.from_band, r.to_band) for r in self.ledger.records]

    def track(self, *clients) -> None:
        """Register caller consoles: their wire stats join the evidence
        and their retry-token refill joins the governed knobs."""
        self.collector.track(*clients)
        for client in clients:
            runtime = getattr(client, "runtime", client)
            if runtime not in self._retry_runtimes:
                self._retry_runtimes.append(runtime)

    def attach(self, autoscaler=None, sweeper=None, repair=None) -> None:
        """Couple controllers the governor should govern (any subset)."""
        if autoscaler is not None and autoscaler not in self.autoscalers:
            self.autoscalers.append(autoscaler)
        if sweeper is not None:
            self.sweeper = sweeper
            self._base_sweep = sweeper.interval
        if repair is not None:
            self.repair = repair
            self._base_repair = (repair.interval, repair.priority, repair.pacing)

    # ------------------------------------------------------------------- loop

    def start(self) -> None:
        """Spawn the governing loop on the simulation kernel (idempotent)."""
        if self._proc is None:
            self._proc = self.system.kernel.spawn_process(
                self._loop(), name="health-governor"
            )

    def _loop(self):
        while True:
            yield Timeout(self.config.tick)
            self.poll()

    def stop_loop(self) -> None:
        """Kill the governing loop (policy stays as last applied).

        Call before draining the kernel: the loop is an endless tick
        process, so ``kernel.run()`` would never go idle under it.
        """
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def stop(self) -> None:
        """Kill the loop and restore every captured baseline."""
        self.stop_loop()
        self._restore()

    def poll(self) -> Optional[Any]:
        """One governing step: observe, maybe transition, apply policy.

        Public so tests (and the post-run settlement phase) can drive the
        governor without the kernel loop.  Returns the ledgered record
        when a transition happened.
        """
        evidence = self.collector.snapshot()
        self.last_evidence = evidence
        transition = self.machine.step(evidence, evidence.time)
        record = None
        if transition is not None:
            record = self.ledger.append(transition, evidence)
        self._apply(self.config.policies[self.machine.band])
        return record

    # ------------------------------------------------------------ policy hooks

    def _apply(self, policy: BandPolicy) -> None:
        critical = self.config.critical
        for server in self.collector.admitted_servers():
            admission = server.admission
            _owner, base = self._base_flow.setdefault(
                id(admission), (admission, admission.config)
            )
            if policy.queue_scale == 1.0:
                admission.config = base
            else:
                admission.config = replace(
                    base, queue_limit=int(base.queue_limit * policy.queue_scale)
                )
            admission.paused = (
                policy.pause_non_critical and server.component.name not in critical
            )
        for runtime in self._retry_runtimes:
            _owner, base = self._base_retry.setdefault(
                id(runtime), (runtime, runtime.retry_policy)
            )
            if base.retry_tokens is None:
                continue  # unlimited retries: nothing to throttle
            if policy.refill_scale == 1.0:
                runtime.retry_policy = base
            else:
                runtime.retry_policy = replace(
                    base,
                    retry_token_refill=base.retry_token_refill * policy.refill_scale,
                )
        for autoscaler in self.autoscalers:
            _owner, base = self._base_scale.setdefault(
                id(autoscaler), (autoscaler, autoscaler.config)
            )
            floor = min(max(policy.min_clones, base.min_clones), base.max_clones)
            if floor == base.min_clones:
                autoscaler.config = base
            else:
                autoscaler.config = replace(base, min_clones=floor)
        if self.sweeper is not None:
            self.sweeper.interval = self._base_sweep * policy.sweep_scale
        if self.repair is not None:
            interval, priority, pacing = self._base_repair
            self.repair.interval = interval * policy.repair_scale
            self.repair.priority = priority + policy.repair_boost
            self.repair.pacing = pacing * policy.repair_scale

    def _restore(self) -> None:
        for admission, base in self._base_flow.values():
            admission.config = base
            admission.paused = False
        for runtime, base in self._base_retry.values():
            runtime.retry_policy = base
        for autoscaler, base in self._base_scale.values():
            autoscaler.config = base
        if self.sweeper is not None:
            self.sweeper.interval = self._base_sweep
        if self.repair is not None:
            self.repair.interval, self.repair.priority, self.repair.pacing = (
                self._base_repair
            )


def enable_governor(
    system, config: Optional[GovernorConfig] = None, start: bool = True
) -> Governor:
    """Build (and by default start) a Governor for ``system``."""
    governor = Governor(system, config)
    if start:
        governor.start()
    return governor
