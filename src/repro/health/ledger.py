"""Tamper-evident, append-only ledger of band transitions.

Following the archon72 design (SNIPPETS.md section 2), band changes are
not just logged -- they are *ledgered*: every transition is appended as a
record carrying the evidence snapshot that justified it, chained to its
predecessor by a SHA-256 hash over a canonical serialization.  Editing,
dropping, or reordering any historical record breaks every later hash,
so ``python -m repro.health.verify LEDGER`` can prove a band timeline
intact (or name the first corrupted sequence number).

Canonical form: JSON with sorted keys and compact separators, floats
pre-rounded by ``HealthEvidence.to_json``.  Serialization is therefore
byte-deterministic across ``--jobs``/``--shards``, which is what makes
the E17 ledgers merge- and diff-stable artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.health.bands import Transition

#: The chain anchor: the prev_hash of sequence 0.  A fixed, public
#: constant -- tamper evidence comes from the chain, not from a secret.
GENESIS = hashlib.sha256(b"repro.health.ledger/genesis").hexdigest()


def canonical(body: Dict[str, Any]) -> str:
    """The canonical serialization hashes are computed over."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def record_hash(body: Dict[str, Any]) -> str:
    """SHA-256 of the canonical form of a record body (sans ``hash``)."""
    return hashlib.sha256(canonical(body).encode("ascii")).hexdigest()


@dataclass(frozen=True)
class LedgerRecord:
    """One ledgered band transition (immutable once appended)."""

    seq: int
    time: float
    from_band: str
    to_band: str
    direction: str
    reason: str
    severity: str
    evidence: Dict[str, Any]
    prev_hash: str
    hash: str

    def body(self) -> Dict[str, Any]:
        """The hashed fields, in canonical dict form (no ``hash``)."""
        return {
            "seq": self.seq,
            "time": round(self.time, 6),
            "from_band": self.from_band,
            "to_band": self.to_band,
            "direction": self.direction,
            "reason": self.reason,
            "severity": self.severity,
            "evidence": self.evidence,
            "prev_hash": self.prev_hash,
        }

    def to_json(self) -> Dict[str, Any]:
        return {**self.body(), "hash": self.hash}


class HealthLedger:
    """Append-only list of :class:`LedgerRecord`, hash-chained in order."""

    def __init__(self) -> None:
        self.records: List[LedgerRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    @property
    def head(self) -> str:
        """Hash of the newest record (GENESIS while empty)."""
        return self.records[-1].hash if self.records else GENESIS

    def append(self, transition: Transition, evidence) -> LedgerRecord:
        """Ledger one transition with its justifying evidence snapshot."""
        body = {
            "seq": len(self.records),
            "time": round(transition.time, 6),
            "from_band": transition.from_band.label,
            "to_band": transition.to_band.label,
            "direction": transition.direction,
            "reason": transition.reason,
            "severity": transition.severity.label,
            "evidence": evidence.to_json(),
            "prev_hash": self.head,
        }
        record = LedgerRecord(**body, hash=record_hash(body))
        self.records.append(record)
        return record

    # -------------------------------------------------------------- round-trip

    def to_json(self) -> List[Dict[str, Any]]:
        return [r.to_json() for r in self.records]

    def write(self, path) -> None:
        """One canonical JSON record per line (the artifact format)."""
        with open(path, "w") as fh:
            for record in self.records:
                fh.write(canonical(record.to_json()) + "\n")

    @staticmethod
    def load_records(path) -> List[Dict[str, Any]]:
        """Parse a JSONL ledger file back into record dicts."""
        records = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    # ------------------------------------------------------------ verification

    @staticmethod
    def verify_records(records: Iterable[Dict[str, Any]]) -> Optional[str]:
        """Recompute the chain; return an error string, or None if intact.

        Checks, per record: contiguous ``seq``, ``prev_hash`` equal to the
        predecessor's ``hash`` (GENESIS at seq 0), and ``hash`` equal to
        the recomputed SHA-256 of the canonical body.
        """
        prev = GENESIS
        for index, record in enumerate(records):
            seq = record.get("seq")
            if seq != index:
                return f"record {index}: seq {seq!r}, expected {index}"
            if record.get("prev_hash") != prev:
                return f"record {index}: prev_hash does not match chain head"
            body = {k: v for k, v in record.items() if k != "hash"}
            expected = record_hash(body)
            if record.get("hash") != expected:
                return f"record {index}: hash mismatch (record edited?)"
            prev = record["hash"]
        return None

    def verify(self) -> Optional[str]:
        """Self-check the in-memory chain (None = intact)."""
        return self.verify_records(self.to_json())
