"""Spans and the SpanRecorder: the storage layer of causal tracing.

A :class:`Span` is one timed unit of causally-related work -- a logical
method invocation, one network request/reply exchange, one server-side
dispatch, a binding resolution, an object activation.  Spans form trees
through ``parent_id``; a span with ``parent_id == 0`` is the root of one
logical operation.

Hot-path contract (the "zero-overhead no-op mode" of the tracing design):

* When tracing is off, ``services.tracer`` is ``None`` and every
  instrumented code path reduces to one attribute load plus an ``is not
  None`` test -- no span objects, no contexts, no dict writes.
* When a recorder is installed but paused (``active = False``), call
  sites skip span creation the same way; pausing is how experiments keep
  warm-up traffic out of the measured trace.
* Span ids are allocated from a recorder-local monotone counter.  The
  simulation kernel executes events in a deterministic total order, so
  allocation order -- and with it every id, timestamp, and parent edge --
  is reproducible bit-for-bit for a given (experiment, quick, seed),
  regardless of ``--jobs``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.trace.context import TraceContext


class Span:
    """One timed, causally-linked unit of work."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "kind",
        "component",
        "start",
        "end",
        "status",
        "link",
        "annotations",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int,
        name: str,
        kind: str,
        component: str,
        start: float,
        link: str = "",
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        #: Span taxonomy: "invoke" (client-side logical call), "request"
        #: (one wire request/reply exchange), "handle" (server dispatch),
        #: "resolve" (binding resolution), "activate" (host upcall),
        #: "event" (one-way message), "net" (network-injected incident).
        self.kind = kind
        #: ``ComponentId``-style label ("binding-agent:site0") of the
        #: object doing the work; "" for anonymous work.
        self.component = component
        self.start = start
        #: Simulated end time; None while the span is open.
        self.end: Optional[float] = None
        #: "ok", or an error class name ("timeout", "delivery-failure", ...).
        self.status = "ok"
        #: Link class of the wire hop ("same-site", ...); request spans only.
        self.link = link
        self.annotations: Optional[Dict[str, Any]] = None

    @property
    def context(self) -> TraceContext:
        """The TraceContext a child of this span should carry."""
        return TraceContext(self.trace_id, self.span_id, self.parent_id)

    @property
    def duration(self) -> float:
        """Simulated duration (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, **kv: Any) -> None:
        """Attach key/value annotations (lazily allocated)."""
        if self.annotations is None:
            self.annotations = {}
        self.annotations.update(kv)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.span_id}<-{self.parent_id} {self.kind} {self.name!r} "
            f"[{self.start:.2f},{self.end if self.end is not None else '...'}] "
            f"{self.status}>"
        )


class SpanRecorder:
    """Collects the spans of one simulated system.

    One recorder per :class:`~repro.system.legion.LegionSystem`; installed
    as ``services.tracer``.  All span starts/finishes are stamped with the
    kernel's simulated clock.
    """

    def __init__(self, kernel, active: bool = True) -> None:
        self.kernel = kernel
        #: Master switch checked (together with ``is not None``) by every
        #: instrumented hot path.  Flipping it off mid-run leaves already
        #: open spans to be finished normally.
        self.active = active
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._next_id = 0
        self._next_trace = 0

    # -- recording ----------------------------------------------------------

    def start(
        self,
        name: str,
        kind: str,
        parent: Optional[TraceContext] = None,
        component: str = "",
        link: str = "",
    ) -> Span:
        """Open a span; a ``None`` parent roots a fresh trace."""
        self._next_id += 1
        if parent is None:
            self._next_trace += 1
            trace_id, parent_id = self._next_trace, 0
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(
            trace_id, self._next_id, parent_id, name, kind, component,
            start=self.kernel.now, link=link,
        )
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def finish(self, span: Span, status: str = "") -> None:
        """Close a span at the current simulated time (idempotent)."""
        if span.end is None:
            span.end = self.kernel.now
        if status:
            span.status = status

    def instant(
        self,
        name: str,
        kind: str,
        parent: Optional[TraceContext] = None,
        component: str = "",
        link: str = "",
        **annotations: Any,
    ) -> Span:
        """A zero-duration span (cache hits, drops, gossip events)."""
        span = self.start(name, kind, parent, component, link)
        span.end = span.start
        if annotations:
            span.annotate(**annotations)
        return span

    def annotate(self, context: Optional[TraceContext], **kv: Any) -> None:
        """Attach annotations to the span ``context`` points at (no-op if
        the context is None or its span was cleared)."""
        if context is None:
            return
        span = self._by_id.get(context.span_id)
        if span is not None:
            span.annotate(**kv)

    # -- lifecycle ----------------------------------------------------------

    def clear(self) -> None:
        """Drop all recorded spans (between warm-up and measurement).

        Id counters are *not* reset: ids stay unique across the run, and
        the allocation sequence stays a pure function of execution order.
        """
        self.spans.clear()
        self._by_id.clear()

    # -- inspection ---------------------------------------------------------

    def roots(self, spans: Optional[Iterable[Span]] = None) -> List[Span]:
        """Spans with no parent *within the given set* (default: all).

        A subset sliced out of :attr:`spans` (one experiment phase) may
        contain spans whose parents were cleared or lie outside the slice;
        those count as roots of the subset.
        """
        pool = list(self.spans if spans is None else spans)
        ids = {s.span_id for s in pool}
        return [s for s in pool if s.parent_id == 0 or s.parent_id not in ids]

    def children_index(
        self, spans: Optional[Iterable[Span]] = None
    ) -> Dict[int, List[Span]]:
        """parent span id → children, over the given set (default: all)."""
        index: Dict[int, List[Span]] = {}
        for span in self.spans if spans is None else spans:
            index.setdefault(span.parent_id, []).append(span)
        return index

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "paused"
        return f"<SpanRecorder {state} spans={len(self.spans)}>"
