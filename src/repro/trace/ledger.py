"""LoadLedger: per-component load, hop depths, and fan-in, from spans.

The paper argues scalability by mechanism shape: bounded hop counts on
the binding path (4.1.2), combining-tree fan-in no wider than the tree's
arity (5.2.2), and per-component request load that must not grow with
host count (5.2).  The ledger derives each of those quantities from a
span set, so every claim the aggregate counters check can also be checked
per operation and per hop.

Definitions:

* **requests handled** by a component = its "handle" spans (one per
  REQUEST dispatched to it);
* **load rate** = handled / observed simulated-time window;
* **hop depth** of a logical operation = the maximum number of "request"
  spans on any root-to-leaf path of its span tree (each request span is
  one wire request/reply exchange);
* **fan-in** of a component = the number of distinct components whose
  request spans parent its handle spans.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.trace.recorder import Span


class LoadLedger:
    """Aggregates one span set into the paper's three load shapes."""

    def __init__(self, spans: Iterable[Span]) -> None:
        self.spans: List[Span] = list(spans)
        self._by_id: Dict[int, Span] = {s.span_id: s for s in self.spans}
        self._children: Dict[int, List[Span]] = {}
        for span in self.spans:
            self._children.setdefault(span.parent_id, []).append(span)
        #: component → number of requests it handled.
        self.handled: Dict[str, int] = {}
        #: component → requests its admission control shed (repro.flow).
        self.sheds: Dict[str, int] = {}
        #: component → distinct sender components (fan-in sets).
        self.sources: Dict[str, Set[str]] = {}
        t0, t1 = None, None
        for span in self.spans:
            start = span.start
            end = span.end if span.end is not None else span.start
            t0 = start if t0 is None or start < t0 else t0
            t1 = end if t1 is None or end > t1 else t1
            if span.kind == "shed":
                self.sheds[span.component] = self.sheds.get(span.component, 0) + 1
                continue
            if span.kind != "handle":
                continue
            self.handled[span.component] = self.handled.get(span.component, 0) + 1
            parent = self._by_id.get(span.parent_id)
            if parent is not None and parent.kind == "request":
                self.sources.setdefault(span.component, set()).add(parent.component)
        #: Observed simulated-time window [first start, last end].
        self.window: Tuple[float, float] = (t0 or 0.0, t1 or 0.0)

    # -- load -----------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Length of the observed window (simulated ms)."""
        return self.window[1] - self.window[0]

    def load_rate(self, component: str) -> float:
        """Requests handled per unit simulated time (0.0 on empty window)."""
        span = self.duration
        return self.handled.get(component, 0) / span if span > 0 else 0.0

    def loads(self, prefix: str = "") -> Dict[str, int]:
        """component → handled count, optionally filtered by label prefix.

        Component labels follow ``ComponentId``'s "kind:name" format, so
        ``prefix="binding-agent:"`` selects one infrastructure kind.
        """
        return {
            comp: n
            for comp, n in self.handled.items()
            if comp.startswith(prefix)
        }

    def rates(self, prefix: str = "") -> Dict[str, float]:
        """component → handled per simulated ms over the observed window.

        The trace-derived twin of the LoadMonitor's counter-delta rates:
        an autoscaler (or an audit of one) can cross-check its sampled
        rates against what the spans actually recorded.
        """
        span = self.duration
        if span <= 0:
            return {comp: 0.0 for comp in self.loads(prefix)}
        return {comp: n / span for comp, n in self.loads(prefix).items()}

    def max_load(self, prefix: str = "") -> Tuple[str, int]:
        """The most-loaded component (and its count) under ``prefix``.

        Returns ``("", 0)`` when no component matches -- the same "absent
        means unloaded" convention as ``MetricsRegistry.max_by_kind``.
        """
        loads = self.loads(prefix)
        if not loads:
            return ("", 0)
        comp = max(loads, key=lambda c: (loads[c], c))
        return (comp, loads[comp])

    def shed_counts(self, prefix: str = "") -> Dict[str, int]:
        """component → requests shed by admission control ("shed" spans).

        One instant span is recorded per shed *logical* request (batch
        sheds emit one per member), so these counts reconcile exactly
        with the ``MetricsRegistry`` "shed" counters and the FaultLog's
        "request-shed" observations.
        """
        return {
            comp: n for comp, n in self.sheds.items() if comp.startswith(prefix)
        }

    def peak_concurrency(self, prefix: str = "") -> Dict[str, int]:
        """component → max simultaneously-open "handle" spans.

        The trace's view of admitted concurrency: under admission control
        (repro.flow) this must never exceed the configured capacity.  The
        boundary sweep orders ends before starts at equal times, so
        back-to-back dispatches at one simulated instant do not read as
        overlap; zero-duration handles (synchronous methods) count 1 at
        their instant.
        """
        events: Dict[str, List[Tuple[float, int]]] = {}
        instantaneous: Set[str] = set()
        for span in self.spans:
            if span.kind != "handle" or not span.component.startswith(prefix):
                continue
            end = span.end if span.end is not None else span.start
            if end <= span.start:
                instantaneous.add(span.component)
                continue
            bounds = events.setdefault(span.component, [])
            bounds.append((span.start, 1))
            bounds.append((end, -1))
        peaks: Dict[str, int] = {comp: 1 for comp in instantaneous}
        for comp, bounds in events.items():
            bounds.sort()  # (-1) sorts before (+1) at equal times
            live = peak = 0
            for _time, delta in bounds:
                live += delta
                if live > peak:
                    peak = live
            if peak > peaks.get(comp, 0):
                peaks[comp] = peak
        return peaks

    # -- fan-in ----------------------------------------------------------------

    def fan_in(self, component: str) -> int:
        """Distinct components that sent requests to ``component``."""
        return len(self.sources.get(component, ()))

    def fan_ins(self, prefix: str = "") -> Dict[str, int]:
        """component → fan-in, optionally filtered by label prefix."""
        return {
            comp: len(senders)
            for comp, senders in self.sources.items()
            if comp.startswith(prefix)
        }

    # -- hop depth -------------------------------------------------------------

    def _request_depth(self, span: Span) -> int:
        # Iterative DFS: binding walks can recurse through many tiers and
        # this must not depend on Python's recursion limit.
        best = 0
        stack = [(span, 0)]
        while stack:
            node, depth = stack.pop()
            if node.kind == "request":
                depth += 1
                best = depth if depth > best else best
            for child in self._children.get(node.span_id, ()):
                stack.append((child, depth))
        return best

    def roots(self) -> List[Span]:
        """Roots of the span set (parent absent or outside the set)."""
        return [
            s
            for s in self.spans
            if s.parent_id == 0 or s.parent_id not in self._by_id
        ]

    def hop_depths(self) -> List[int]:
        """Per logical operation: max request-hop depth of its span tree."""
        return [self._request_depth(root) for root in self.roots()]

    def hop_histogram(self) -> Dict[int, int]:
        """hop depth → number of operations that reached it."""
        hist: Dict[int, int] = {}
        for depth in self.hop_depths():
            hist[depth] = hist.get(depth, 0) + 1
        return dict(sorted(hist.items()))

    def max_hop_depth(self) -> int:
        """The deepest request chain of any operation (0 if no spans)."""
        depths = self.hop_depths()
        return max(depths, default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LoadLedger spans={len(self.spans)} components={len(self.handled)} "
            f"window={self.duration:.1f}ms>"
        )
