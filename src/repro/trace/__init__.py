"""repro.trace: causal tracing through the simulated message plane.

Layers (bottom up):

* :mod:`repro.trace.context`  -- the TraceContext carried by messages;
* :mod:`repro.trace.recorder` -- Span and SpanRecorder (storage);
* :mod:`repro.trace.ledger`   -- per-component load derived from spans;
* :mod:`repro.trace.export`   -- Chrome ``trace_event`` JSON + text digest;
* :mod:`repro.trace.audit`    -- mechanical scalability assertions (E1/E3/E9).

Enable on a built system with ``system.enable_tracing()``; with tracing
off, ``services.tracer`` is ``None`` and the instrumented hot paths pay
one pointer test.
"""

from repro.trace.audit import AuditFinding, TraceAudit, load_slope, load_slope_finding
from repro.trace.context import TraceContext
from repro.trace.export import chrome_trace, text_summary, write_chrome_trace
from repro.trace.ledger import LoadLedger
from repro.trace.recorder import Span, SpanRecorder

__all__ = [
    "AuditFinding",
    "LoadLedger",
    "Span",
    "SpanRecorder",
    "TraceAudit",
    "TraceContext",
    "chrome_trace",
    "load_slope",
    "load_slope_finding",
    "text_summary",
    "write_chrome_trace",
]
