"""Trace exporters: Chrome ``trace_event`` JSON and an aligned text summary.

The JSON format is the ``chrome://tracing`` / Perfetto "JSON Array with
metadata" flavour: a ``traceEvents`` list of complete ("ph": "X") events
plus process-name metadata.  Mapping:

* one *process* (pid) per component, named with its "kind:name" label;
* one *thread* (tid) per trace id, so concurrent logical operations on
  the same component render as parallel rows instead of false nesting;
* timestamps in microseconds of *simulated* time (the simulated clock
  counts milliseconds; ts = ms * 1000).

Exports are a pure function of the span list, so a deterministic trace
yields a byte-identical file -- the property the `--jobs` determinism
check rides on.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.trace.ledger import LoadLedger
from repro.trace.recorder import Span

#: pid 0 is reserved so every real component gets a non-zero pid.
_ANONYMOUS = "(anonymous)"


def chrome_trace(spans: Iterable[Span]) -> dict:
    """The ``trace_event`` document for a span set (as a plain dict)."""
    spans = list(spans)
    pids: Dict[str, int] = {}
    events: List[dict] = []
    for span in spans:
        component = span.component or _ANONYMOUS
        pid = pids.get(component)
        if pid is None:
            pid = pids[component] = len(pids) + 1
        args: Dict[str, object] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status,
        }
        if span.link:
            args["link"] = span.link
        if span.annotations:
            args.update(span.annotations)
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": round(span.start * 1000.0, 3),
                "dur": round((end - span.start) * 1000.0, 3),
                "pid": pid,
                "tid": span.trace_id,
                "args": args,
            }
        )
    for component, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": component},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path: str) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(spans), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def text_summary(spans: Iterable[Span], title: str = "trace summary") -> str:
    """An aligned, human-readable digest of a span set.

    Three sections: span counts by kind, the per-component load ledger
    (handled requests, load rate, fan-in), and the hop-depth histogram.
    """
    spans = list(spans)
    ledger = LoadLedger(spans)
    lines: List[str] = [title, "=" * len(title)]

    by_kind: Dict[str, int] = {}
    for span in spans:
        by_kind[span.kind] = by_kind.get(span.kind, 0) + 1
    lines.append(
        f"{len(spans)} spans over {ledger.duration:.2f} simulated ms"
    )
    lines.append(
        "  " + "  ".join(f"{kind}={n}" for kind, n in sorted(by_kind.items()))
    )

    if ledger.handled:
        lines.append("")
        rows = [
            (comp, str(n), f"{ledger.load_rate(comp):.4f}", str(ledger.fan_in(comp)))
            for comp, n in sorted(
                ledger.handled.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        header = ("component", "handled", "per-ms", "fan-in")
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(4)
        ]
        lines.append(
            "  ".join(
                h.ljust(w) if i == 0 else h.rjust(w)
                for i, (h, w) in enumerate(zip(header, widths, strict=True))
            )
        )
        for row in rows:
            lines.append(
                "  ".join(
                    c.ljust(w) if i == 0 else c.rjust(w)
                    for i, (c, w) in enumerate(zip(row, widths, strict=True))
                )
            )

    hist = ledger.hop_histogram()
    if hist:
        lines.append("")
        lines.append("hop depth histogram (request hops per operation):")
        for depth, count in hist.items():
            lines.append(f"  {depth:>3} hops  {count:>6}  {'#' * min(count, 60)}")
    return "\n".join(lines)
