"""TraceAudit: mechanical scalability assertions over span trees.

Each audit turns one of the paper's Section 4/5 shape arguments into a
per-operation check against recorded spans:

* **hop bound** (E1, sections 4.1.2-4.1.3): no logical operation's
  binding walk may chain more than ``max_hops`` request/reply exchanges
  in depth -- client cache → Binding Agent → LegionClass → responsible
  class → Magistrate → Host is the longest path the mechanism allows;
* **fan-in bound** (E3, section 5.2.2): a combining-tree node hears from
  at most ``arity`` distinct children, which is *why* the tree flattens
  LegionClass load;
* **load slope** (E9, section 5.2): the per-component request maximum,
  recomputed from spans, must not be an increasing function of system
  size;
* **ledger/counter reconciliation**: the span-derived request count for
  a component must equal the aggregate counter the metrics registry kept
  -- the tracing layer may not invent or lose load.

Audits return :class:`AuditFinding` values (never raise), so experiments
can fold them into their PASS/FAIL check lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.metrics.recorder import SeriesRecorder
from repro.trace.ledger import LoadLedger
from repro.trace.recorder import Span


@dataclass
class AuditFinding:
    """One audit outcome, shaped like an experiment check."""

    name: str
    passed: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.name}{detail}"


class TraceAudit:
    """Audits over one span set (see module docstring)."""

    def __init__(self, spans: Union[Iterable[Span], LoadLedger]) -> None:
        self.ledger = spans if isinstance(spans, LoadLedger) else LoadLedger(spans)

    # -- E1: binding path hop bound -------------------------------------------

    def hop_bound(self, max_hops: int, name: str = "trace: binding path hop bound") -> AuditFinding:
        """Every operation's request chain is at most ``max_hops`` deep."""
        depths = self.ledger.hop_depths()
        worst = max(depths, default=0)
        return AuditFinding(
            name,
            worst <= max_hops,
            f"max depth {worst} <= {max_hops} over {len(depths)} operations",
        )

    def exact_depth(
        self, depth: int, name: str = "trace: operation depth"
    ) -> AuditFinding:
        """Every operation is exactly ``depth`` request hops deep (warm
        calls: precisely one request/reply pair, nothing hidden)."""
        depths = self.ledger.hop_depths()
        ok = bool(depths) and all(d == depth for d in depths)
        return AuditFinding(
            name, ok, f"depths {sorted(set(depths))} == [{depth}]"
        )

    # -- E3: combining-tree fan-in --------------------------------------------

    def fan_in_bound(
        self,
        arity: int,
        prefix: str,
        name: str = "trace: combining-tree fan-in <= arity",
    ) -> AuditFinding:
        """Every component under ``prefix`` hears from <= ``arity`` peers."""
        fans = self.ledger.fan_ins(prefix)
        if not fans:
            return AuditFinding(name, False, f"no components match {prefix!r}")
        worst = max(fans, key=lambda c: (fans[c], c))
        return AuditFinding(
            name,
            fans[worst] <= arity,
            f"max fan-in {fans[worst]} ({worst}) <= {arity} "
            f"over {len(fans)} nodes",
        )

    # -- flow control: admitted load bound --------------------------------------

    def admitted_load_bound(
        self,
        capacity: int,
        prefix: str = "",
        name: str = "trace: admitted load <= configured capacity",
    ) -> AuditFinding:
        """No component under ``prefix`` ever ran > ``capacity`` handles at once.

        The flow-control twin of the fan-in bound: admission control
        promises at most ``capacity`` concurrently-dispatched requests
        per server, and the handle spans are the ground truth of what
        actually ran.  Open-interval overlap is computed by a boundary
        sweep (see :meth:`LoadLedger.peak_concurrency`).
        """
        peaks = self.ledger.peak_concurrency(prefix)
        if not peaks:
            return AuditFinding(name, False, f"no handle spans match {prefix!r}")
        worst = max(peaks, key=lambda c: (peaks[c], c))
        return AuditFinding(
            name,
            peaks[worst] <= capacity,
            f"max concurrent {peaks[worst]} ({worst}) <= {capacity} "
            f"over {len(peaks)} components",
        )

    def shed_reconciles_with(
        self,
        counted: Dict[str, int],
        prefix: str = "",
        name: str = "trace: shed spans reconcile with shed counters",
    ) -> AuditFinding:
        """Span-derived shed counts equal the metrics registry's.

        ``counted`` maps component labels to the registry's "shed"
        counters; the tracing layer may not invent or lose sheds any more
        than it may handled load.
        """
        ledger_sheds = self.ledger.shed_counts(prefix)
        expected = {
            comp: n for comp, n in counted.items() if comp.startswith(prefix) and n
        }
        mismatches = sorted(
            comp
            for comp in set(ledger_sheds) | set(expected)
            if ledger_sheds.get(comp, 0) != expected.get(comp, 0)
        )
        return AuditFinding(
            name,
            not mismatches,
            "all components agree"
            if not mismatches
            else f"mismatch at {mismatches[:3]}",
        )

    # -- reconciliation ---------------------------------------------------------

    @staticmethod
    def evidence_reconciles(
        evidence,
        name: str = "trace: health evidence ledgers reconcile (triple-entry)",
    ) -> AuditFinding:
        """The governor's HealthEvidence triple-entry shed check.

        The governor, experiments, and this audit must read *one* view of
        shedding: the metrics registry's counters, the FaultLog's
        request-shed observations, and callers' wire-level Overloaded
        settlements all name the same total.  Takes the snapshot rather
        than a system so post-run audits check exactly the evidence the
        governor last acted on.
        """
        ledgers = evidence.ledgers()
        return AuditFinding(
            name,
            evidence.consistent,
            " == ".join(f"{k} {v}" for k, v in sorted(ledgers.items())),
        )

    def reconciles_with(
        self,
        counted: Dict[str, int],
        prefix: str = "",
        name: str = "trace: span ledger reconciles with request counters",
    ) -> AuditFinding:
        """Span-derived handled counts equal the aggregate counters.

        ``counted`` maps component labels to the metrics registry's
        request counts (only labels under ``prefix`` are compared).
        """
        ledger_loads = self.ledger.loads(prefix)
        expected = {
            comp: n for comp, n in counted.items() if comp.startswith(prefix) and n
        }
        mismatches = sorted(
            comp
            for comp in set(ledger_loads) | set(expected)
            if ledger_loads.get(comp, 0) != expected.get(comp, 0)
        )
        return AuditFinding(
            name,
            not mismatches,
            "all components agree"
            if not mismatches
            else f"mismatch at {mismatches[:3]}",
        )


def load_slope(
    points: Sequence[Tuple[float, LoadLedger]],
    prefix: str,
) -> float:
    """Log-log slope of max per-component load (under ``prefix``) vs size.

    The E9 audit: with the paper's mitigations, this should be ~0 (flat in
    host count).  Zero loads are admissible -- the slope fit clamps them
    (see ``SeriesRecorder.slope``).
    """
    recorder = SeriesRecorder(x_label="size")
    for x, ledger in points:
        _comp, worst = ledger.max_load(prefix)
        recorder.add(x, load=worst)
    return recorder.slope("load", log_log=True)


def load_slope_finding(
    points: Sequence[Tuple[float, LoadLedger]],
    prefix: str,
    limit: float,
    name: str = "",
) -> AuditFinding:
    """The E9 pass/fail wrapper around :func:`load_slope`.

    Mirrors E9's counter-based convention: when every observed maximum is
    <= 1 the load is negligible at every size and the slope fit would be
    pure noise, so the finding passes outright.
    """
    name = name or f"trace: max {prefix or 'component'} load ~flat in size"
    maxima: List[int] = [ledger.max_load(prefix)[1] for _x, ledger in points]
    if all(m <= 1 for m in maxima):
        return AuditFinding(name, True, f"negligible load {maxima}")
    slope = load_slope(points, prefix)
    return AuditFinding(name, slope < limit, f"log-log slope {slope:.3f} < {limit}")
