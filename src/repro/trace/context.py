"""TraceContext: the causal coordinates a message carries.

A trace context is the (trace id, span id, parent span id) triple that
rides inside :class:`~repro.net.message.Message` envelopes and
:class:`~repro.security.environment.CallEnvironment` values.  It is the
only piece of tracing state that crosses object boundaries; everything
else (the spans themselves) stays in the local
:class:`~repro.trace.recorder.SpanRecorder`.

Determinism contract: ids are small integers allocated by the recorder in
execution order.  Because the simulation kernel is strictly deterministic
(events at equal times run in schedule order), the allocation order -- and
therefore every id -- is a pure function of (experiment, quick, seed).
Traced runs are bit-identical across ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Immutable causal coordinates of one span, as seen on the wire."""

    trace_id: int
    span_id: int
    parent_id: int = 0

    def child_of(self, span_id: int) -> "TraceContext":
        """The context a child span started under ``span_id`` would carry."""
        return TraceContext(self.trace_id, span_id, self.span_id)

    def __str__(self) -> str:
        return f"trace={self.trace_id} span={self.span_id} parent={self.parent_id}"
