"""Small application objects used by examples, tests, and experiments.

These are ordinary user-level Legion objects: they subclass
:class:`~repro.core.object_base.LegionObjectImpl`, export methods with
:func:`~repro.core.object_base.legion_method`, and declare persistent
attributes so deactivation/migration round-trips preserve their state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.object_base import LegionObjectImpl, legion_method
from repro.simkernel.kernel import Timeout


class CounterImpl(LegionObjectImpl):
    """The canonical stateful object: an integer counter."""

    def __init__(self, start: int = 0) -> None:
        self.value = int(start)

    def persistent_attributes(self) -> List[str]:
        return ["value"]

    @legion_method("int Increment(int)")
    def increment(self, amount: int) -> int:
        """Add ``amount``; returns the new value."""
        self.value += int(amount)
        return self.value

    @legion_method("int Get()")
    def get(self) -> int:
        """The current value."""
        return self.value

    @legion_method("Reset()")
    def reset(self) -> None:
        """Back to zero."""
        self.value = 0


class KVStoreImpl(LegionObjectImpl):
    """A key-value store: the paper's "remote files and data" made easy
    to reach through the single persistent name space."""

    def __init__(self, initial: Optional[Dict[str, Any]] = None) -> None:
        self.data: Dict[str, Any] = dict(initial or {})

    def persistent_attributes(self) -> List[str]:
        return ["data"]

    @legion_method("Put(string, value)")
    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``."""
        self.data[key] = value

    @legion_method("value Get(string)")
    def get(self, key: str) -> Any:
        """The value under ``key`` (KeyError crosses as InvocationFailed)."""
        return self.data[key]

    @legion_method("bool Has(string)")
    def has(self, key: str) -> bool:
        """Whether ``key`` is present."""
        return key in self.data

    @legion_method("value Delete(string)")
    def delete(self, key: str) -> Any:
        """Remove and return the value under ``key``."""
        return self.data.pop(key)

    @legion_method("int Size()")
    def size(self) -> int:
        """Number of stored keys."""
        return len(self.data)

    @legion_method("list Keys()")
    def keys(self) -> List[str]:
        """All keys, sorted."""
        return sorted(self.data)


class WorkerImpl(LegionObjectImpl):
    """A compute worker: simulates work by sleeping simulated time.

    Models the paper's motivating wide-area computations: a caller farms
    Compute() calls out to workers placed across sites.
    """

    def __init__(self, speed: float = 1.0) -> None:
        #: Work units per simulated millisecond.
        self.speed = float(speed)
        self.completed = 0

    def persistent_attributes(self) -> List[str]:
        return ["speed", "completed"]

    @legion_method("float Compute(float)")
    def compute(self, work_units: float):
        """Burn ``work_units`` of simulated compute; returns elapsed ms."""
        duration = float(work_units) / self.speed
        yield Timeout(duration)
        self.completed += 1
        return duration

    @legion_method("int Completed()")
    def completed_count(self) -> int:
        """How many Compute() calls have finished."""
        return self.completed


class SerialServiceImpl(LegionObjectImpl):
    """A strictly serial server: one request at a time, FIFO.

    The overload workload (E15).  Each ``Work()`` call occupies the
    service for exactly ``service_time`` simulated ms, queued behind any
    call that arrived earlier -- so the object's sustainable throughput
    is precisely ``1 / service_time`` requests per ms, and offered load
    beyond that *must* queue, shed, or time out.  ``busy_until`` makes
    the FIFO discipline explicit without a lock: each arrival claims the
    next free slot and sleeps until its slot ends.
    """

    def __init__(self, service_time: float = 1.0) -> None:
        #: Simulated ms of exclusive service per Work() call.
        self.service_time = float(service_time)
        self.busy_until = 0.0
        self.completed = 0

    def persistent_attributes(self) -> List[str]:
        return ["service_time", "busy_until", "completed"]

    @legion_method("float Work()")
    def work(self):
        """Occupy the service for one slot; returns completion time."""
        now = self.services.kernel.now
        start = self.busy_until if self.busy_until > now else now
        self.busy_until = start + self.service_time
        yield Timeout(self.busy_until - now)
        self.completed += 1
        return self.busy_until

    @legion_method("int Completed()")
    def completed_count(self) -> int:
        """How many Work() calls have finished."""
        return self.completed


class ScenarioServiceImpl(LegionObjectImpl):
    """The scenario catalog's application object (``repro.scenarios``).

    One serial FIFO service (the :class:`SerialServiceImpl` discipline)
    exporting the four request kinds of the scenario language: cheap
    ``Read``, mutating ``Write``, unit-weighted ``Work`` (a batch job is
    just ``Work(units)``), and a ``Privileged`` operation meant to sit
    behind a MayI policy.  All state is persistent, so checkpoint /
    restart (SaveState/OPRs) and migration round-trips preserve the
    read/write ledger -- the scenario experiments verify exactly that.
    """

    def __init__(self, service_time: float = 1.0, read_time: float = 0.25) -> None:
        self.service_time = float(service_time)
        self.read_time = float(read_time)
        self.busy_until = 0.0
        self.data: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        self.worked = 0.0
        self.privileged_ops = 0

    def persistent_attributes(self) -> List[str]:
        return [
            "service_time",
            "read_time",
            "busy_until",
            "data",
            "reads",
            "writes",
            "worked",
            "privileged_ops",
        ]

    def _occupy(self, cost: float):
        """Claim the next free FIFO slot for ``cost`` simulated ms."""
        now = self.services.kernel.now
        start = self.busy_until if self.busy_until > now else now
        self.busy_until = start + cost
        yield Timeout(self.busy_until - now)

    @legion_method("int Read(int)")
    def read(self, key: int):
        """Serve one read of ``key``; returns its write count."""
        yield from self._occupy(self.read_time)
        self.reads += 1
        return self.data.get(int(key), 0)

    @legion_method("int Write(int)")
    def write(self, key: int):
        """Serve one write of ``key``; returns its new write count."""
        yield from self._occupy(self.service_time)
        value = self.data.get(int(key), 0) + 1
        self.data[int(key)] = value
        self.writes += 1
        return value

    @legion_method("float Work(float)")
    def work(self, units: float):
        """Occupy the service for ``units`` x service_time ms."""
        yield from self._occupy(float(units) * self.service_time)
        self.worked += float(units)
        return self.busy_until

    @legion_method("int Privileged()")
    def privileged(self):
        """The gated operation: only tenants a MayI policy admits."""
        yield from self._occupy(self.service_time)
        self.privileged_ops += 1
        return self.privileged_ops

    @legion_method("dict Ledger()")
    def ledger(self) -> Dict[str, Any]:
        """The service's tally (reads/writes/work/privileged + data sum)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "worked": self.worked,
            "privileged": self.privileged_ops,
            "data_sum": sum(self.data.values()),
        }
