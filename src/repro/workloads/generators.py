"""Workload generators: popularity, locality, traffic, and churn.

Each driver is a thin object that *plans* (which client calls which target
when) and then runs the plan as simulation processes.  Planning is
separated from execution so experiments can inspect or replay plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # numpy is the optional ``repro[mega]`` extra; only Zipf sampling needs it
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less installs only
    np = None  # type: ignore[assignment]

from repro.errors import LegionError
from repro.core.server import ObjectServer
from repro.naming.loid import LOID
from repro.simkernel.futures import SimFuture, gather
from repro.simkernel.kernel import SimKernel, Timeout


class ZipfPopularity:
    """Zipf-distributed choice over N items (section 5.2.2's hot classes).

    ``s`` is the exponent: 0 gives uniform, larger is more skewed (the
    classic web/file-popularity regime is around 0.8-1.2).  Sampling uses
    an explicit normalised CDF over exactly N items, so probabilities are
    exact rather than tail-truncated.
    """

    def __init__(self, n: int, s: float = 1.0, rng: Optional["np.random.Generator"] = None) -> None:
        if np is None:
            from repro.megascale.compat import require_numpy

            require_numpy("ZipfPopularity")
        if n < 1:
            raise LegionError(f"ZipfPopularity needs n >= 1, got {n}")
        if s < 0:
            raise LegionError(f"Zipf exponent must be >= 0, got {s}")
        self.n = n
        self.s = s
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-s)
        self._cdf = np.cumsum(weights / weights.sum())
        self._rng = rng or np.random.default_rng(0)

    def sample(self) -> int:
        """One index in [0, n), rank 0 most popular."""
        return int(np.searchsorted(self._cdf, self._rng.random(), side="right"))

    def sample_many(self, count: int) -> np.ndarray:
        """``count`` indices at once (vectorised)."""
        return np.searchsorted(self._cdf, self._rng.random(count), side="right")

    def probability(self, rank: int) -> float:
        """Exact probability of the item at ``rank``."""
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lo)


class LocalityMix:
    """Pick targets with a configured fraction of same-site accesses.

    Implements the paper's first scalability assumption knob: "most
    accesses will be local".  ``local_fraction=0.9`` means 90% of choices
    come from the caller's own site.
    """

    def __init__(
        self,
        targets_by_site: Dict[str, Sequence[LOID]],
        local_fraction: float,
        rng,
    ) -> None:
        if not 0.0 <= local_fraction <= 1.0:
            raise LegionError(f"local_fraction must be in [0,1], got {local_fraction}")
        self.targets_by_site = {k: list(v) for k, v in targets_by_site.items()}
        self.local_fraction = local_fraction
        self.rng = rng
        self._all_sites = sorted(self.targets_by_site)

    def choose(self, caller_site: str) -> LOID:
        """A target for a caller at ``caller_site``."""
        local = self.targets_by_site.get(caller_site, [])
        if local and self.rng.random() < self.local_fraction:
            return local[self.rng.randrange(len(local))]
        remote_sites = [s for s in self._all_sites if s != caller_site] or self._all_sites
        site = remote_sites[self.rng.randrange(len(remote_sites))]
        pool = self.targets_by_site[site]
        return pool[self.rng.randrange(len(pool))]


@dataclass
class TrafficStats:
    """Outcome of one TrafficDriver run."""

    calls_issued: int = 0
    calls_succeeded: int = 0
    calls_failed: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Fraction of issued calls that returned a value."""
        return self.calls_succeeded / self.calls_issued if self.calls_issued else 0.0


class SessionLoopDriver:
    """Shared session-loop core for every traffic driver.

    A driver owns a kernel, a roster of client consoles, a shared
    :class:`TrafficStats`, and one simulation process per client
    (``_client_loop``).  ``_invoke_once`` is the single place an
    invocation outcome is classified and tallied, so closed-loop,
    open-loop, and scenario drivers (``repro.scenarios``) count calls
    identically.  Subclasses set ``kind`` (the spawn-name prefix) and
    implement ``_client_loop(client)``.
    """

    kind = "session"

    def __init__(
        self,
        kernel: SimKernel,
        clients: Sequence[ObjectServer],
        timeout: Optional[float] = None,
    ) -> None:
        self.kernel = kernel
        self.clients = list(clients)
        self.timeout = timeout
        self.stats = TrafficStats()

    def _invoke_once(self, client: ObjectServer, target, method: str, args):
        """One tallied invocation; yields True on success, False on error."""
        try:
            yield from client.runtime.invoke(
                target, method, *args, timeout=self.timeout
            )
        except LegionError as exc:
            self.stats.calls_failed += 1
            if len(self.stats.errors) < 32:
                self.stats.errors.append(f"{target}.{method}: {exc}")
            return False
        self.stats.calls_succeeded += 1
        return True

    def _client_loop(self, client: ObjectServer):
        raise NotImplementedError

    def start(self) -> SimFuture:
        """Spawn every client loop; future resolves with TrafficStats."""
        futures = [
            self.kernel.spawn(self._client_loop(c), name=f"{self.kind}-{c.loid}")
            for c in self.clients
        ]
        return gather(futures).then(
            lambda _results: self.stats, name=f"{self.kind}-stats"
        )


class TrafficDriver(SessionLoopDriver):
    """Run invocation loops from a set of clients.

    Each client issues ``calls_per_client`` invocations of ``method`` with
    ``args``, choosing a target per call via ``choose_target(client)``,
    with ``think_time`` simulated ms between calls.  Returns a
    :class:`TrafficStats` future (resolve by running the kernel).
    """

    kind = "traffic"

    def __init__(
        self,
        kernel: SimKernel,
        clients: Sequence[ObjectServer],
        choose_target,
        method: str = "Ping",
        args: Tuple[Any, ...] = (),
        calls_per_client: int = 10,
        think_time: float = 1.0,
        timeout: Optional[float] = None,
    ) -> None:
        super().__init__(kernel, clients, timeout=timeout)
        self.choose_target = choose_target
        self.method = method
        self.args = tuple(args)
        self.calls_per_client = calls_per_client
        self.think_time = think_time

    def _client_loop(self, client: ObjectServer):
        for _i in range(self.calls_per_client):
            target = self.choose_target(client)
            self.stats.calls_issued += 1
            yield from self._invoke_once(client, target, self.method, self.args)
            if self.think_time > 0:
                yield Timeout(self.think_time)


class OpenLoopDriver(SessionLoopDriver):
    """Fixed-rate (open-loop) traffic: offered load independent of latency.

    The closed-loop :class:`TrafficDriver` caps throughput at
    clients/latency -- useless for saturation studies, where the point is
    that the *offered* rate keeps growing whether or not the target keeps
    up.  Here each client fires one invocation every ``interval``
    simulated ms without waiting for the previous reply; the driver
    future resolves when every fired call has completed.

    ``choose_call(client)`` returns ``(target_loid, method, args)`` per
    call, so a mixed workload (cheap method traffic plus occasional
    Create()s) is one callback.
    """

    kind = "openloop"

    def __init__(
        self,
        kernel: SimKernel,
        clients: Sequence[ObjectServer],
        choose_call,
        interval: float,
        duration: float,
        timeout: Optional[float] = None,
    ) -> None:
        super().__init__(kernel, clients, timeout=timeout)
        self.choose_call = choose_call
        self.interval = interval
        self.duration = duration

    def _client_loop(self, client: ObjectServer):
        deadline = self.kernel.now + self.duration
        calls = []
        while self.kernel.now < deadline:
            target, method, args = self.choose_call(client)
            self.stats.calls_issued += 1
            calls.append(
                self.kernel.spawn(
                    self._invoke_once(client, target, method, args),
                    name=f"openloop-{client.loid}",
                )
            )
            yield Timeout(self.interval)
        for fut in calls:  # drain: every fired call must resolve
            yield fut


class ChurnDriver:
    """Manufacture stale bindings by cycling objects through magistrates.

    Every ``interval`` simulated ms, pick a random managed object and
    either Deactivate it (a later reference re-activates it at a possibly
    different address) or Move it to another magistrate.  This is the
    workload knob behind experiment E6 (section 4.1.4).
    """

    def __init__(
        self,
        kernel: SimKernel,
        driver_client: ObjectServer,
        objects: Sequence[LOID],
        magistrates: Sequence[LOID],
        class_loid: LOID,
        rng,
        interval: float = 50.0,
        move_fraction: float = 0.5,
        rounds: int = 10,
    ) -> None:
        self.kernel = kernel
        self.client = driver_client
        self.objects = list(objects)
        self.magistrates = list(magistrates)
        self.class_loid = class_loid
        self.rng = rng
        self.interval = interval
        self.move_fraction = move_fraction
        self.rounds = rounds
        self.churn_events = 0

    def _loop(self):
        for _round in range(self.rounds):
            yield Timeout(self.interval)
            loid = self.objects[self.rng.randrange(len(self.objects))]
            try:
                row = yield from self.client.runtime.invoke(
                    self.class_loid, "GetRow", loid
                )
            except LegionError:
                continue
            if not row.current_magistrates:
                continue
            magistrate = row.current_magistrates[0]
            try:
                if (
                    len(self.magistrates) > 1
                    and self.rng.random() < self.move_fraction
                ):
                    others = [m for m in self.magistrates if m != magistrate]
                    target = others[self.rng.randrange(len(others))]
                    yield from self.client.runtime.invoke(
                        magistrate, "Move", loid, target
                    )
                else:
                    yield from self.client.runtime.invoke(
                        magistrate, "Deactivate", loid
                    )
                self.churn_events += 1
            except LegionError:
                continue  # racing with concurrent traffic is expected

    def start(self) -> SimFuture:
        """Spawn the churn loop; future resolves when rounds complete."""
        return self.kernel.spawn(self._loop(), name="churn-driver")
