"""Workload generation for the Section 5 experiments.

The paper's scalability argument rests on two workload assumptions
(section 5.2): "most accesses will be local ... within the same
organization", and "class objects will not migrate frequently [and] tend
to stay active for long periods of time relative to instance objects".
This package parameterises exactly those knobs:

* :class:`ZipfPopularity` -- skewed class/object popularity (the "popular
  class objects becoming bottlenecks" of section 5.2.2);
* :class:`LocalityMix` -- the fraction of intra-site accesses;
* :class:`TrafficDriver` -- per-client invocation loops over a chosen
  target distribution;
* :class:`ChurnDriver` -- deactivation/migration churn that manufactures
  stale bindings (section 4.1.4);
* :mod:`repro.workloads.apps` -- small application objects (counter,
  key-value store, compute worker) used by examples and experiments.
"""

from repro.workloads.apps import CounterImpl, KVStoreImpl, WorkerImpl
from repro.workloads.generators import (
    ChurnDriver,
    LocalityMix,
    TrafficDriver,
    ZipfPopularity,
)

__all__ = [
    "CounterImpl",
    "KVStoreImpl",
    "WorkerImpl",
    "ZipfPopularity",
    "LocalityMix",
    "TrafficDriver",
    "ChurnDriver",
]
