"""FaultPlan: a seeded, simulated-time schedule of fault events."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class FaultKind(enum.Enum):
    """The fault taxonomy (see DESIGN.md section 4d)."""

    #: Every resident process dies, every endpoint on the host vanishes.
    HOST_CRASH = "host-crash"
    #: One object's process dies; its host survives.
    OBJECT_CRASH = "object-crash"
    #: A link class silently drops a fraction of messages for a while.
    LINK_DEGRADE = "link-degrade"
    #: Two sites cannot exchange messages until the partition heals.
    PARTITION = "partition"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` depends on the kind: a host id (HOST_CRASH), an object key
    into the driver's target table (OBJECT_CRASH), a
    :class:`~repro.net.latency.LinkClass` value string (LINK_DEGRADE), or
    an (site, site) pair joined with ``|`` (PARTITION).  ``duration`` and
    ``severity`` only apply to the transient kinds.
    """

    time: float
    kind: FaultKind
    target: str
    duration: float = 0.0
    severity: float = 0.0


#: Default probability mix over fault kinds.
DEFAULT_MIX: Dict[FaultKind, float] = {
    FaultKind.HOST_CRASH: 0.4,
    FaultKind.OBJECT_CRASH: 0.3,
    FaultKind.LINK_DEGRADE: 0.15,
    FaultKind.PARTITION: 0.15,
}


@dataclass
class FaultPlan:
    """An ordered fault schedule, generated once from a seeded RNG.

    The plan is pure data: generating it draws every random number up
    front, so applying it (ChaosDriver) adds no RNG consumption of its
    own and two runs with the same seed see byte-identical chaos.
    """

    events: List[FaultEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        rng,
        horizon: float,
        intensity: float,
        hosts: Sequence[int],
        sites: Sequence[str],
        objects: Sequence[str],
        link_classes: Sequence[str] = ("same-site", "wide-area"),
        mix: Optional[Dict[FaultKind, float]] = None,
    ) -> "FaultPlan":
        """Draw a plan: ~``intensity`` events per 1000 time units, Poisson
        gaps, over ``horizon`` time units.

        ``hosts`` are crashable host ids (each crashes at most once; when
        exhausted, would-be host crashes become object crashes).
        ``objects`` are keys the driver can map to live objects.  Empty
        target pools disable the corresponding kinds.
        """
        if intensity <= 0.0 or horizon <= 0.0:
            return cls()
        weights = dict(mix or DEFAULT_MIX)
        if not hosts:
            weights.pop(FaultKind.HOST_CRASH, None)
        if not objects:
            weights.pop(FaultKind.OBJECT_CRASH, None)
        if not link_classes:
            weights.pop(FaultKind.LINK_DEGRADE, None)
        if len(sites) < 2:
            weights.pop(FaultKind.PARTITION, None)
        if not weights:
            return cls()
        kinds = sorted(weights, key=lambda k: k.value)
        totals = sum(weights[k] for k in kinds)
        mean_gap = 1000.0 / intensity
        crashable = list(hosts)
        events: List[FaultEvent] = []
        t = rng.expovariate(1.0 / mean_gap)
        while t < horizon:
            pick = rng.random() * totals
            kind = kinds[-1]
            for candidate in kinds:
                pick -= weights[candidate]
                if pick < 0.0:
                    kind = candidate
                    break
            if kind is FaultKind.HOST_CRASH and not crashable:
                kind = FaultKind.OBJECT_CRASH if objects else FaultKind.LINK_DEGRADE
            if kind is FaultKind.HOST_CRASH:
                host = crashable.pop(rng.randrange(len(crashable)))
                events.append(FaultEvent(time=t, kind=kind, target=str(host)))
            elif kind is FaultKind.OBJECT_CRASH:
                target = objects[rng.randrange(len(objects))]
                events.append(FaultEvent(time=t, kind=kind, target=target))
            elif kind is FaultKind.LINK_DEGRADE:
                link = link_classes[rng.randrange(len(link_classes))]
                events.append(
                    FaultEvent(
                        time=t,
                        kind=kind,
                        target=link,
                        duration=rng.uniform(50.0, 200.0),
                        severity=rng.uniform(0.05, 0.3),
                    )
                )
            else:  # PARTITION
                i = rng.randrange(len(sites))
                j = rng.randrange(len(sites) - 1)
                if j >= i:
                    j += 1
                events.append(
                    FaultEvent(
                        time=t,
                        kind=FaultKind.PARTITION,
                        target=f"{sites[i]}|{sites[j]}",
                        duration=rng.uniform(50.0, 200.0),
                    )
                )
            t += rng.expovariate(1.0 / mean_gap)
        return cls(events=events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def counts(self) -> Dict[str, int]:
        """Events per kind (for reports)."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind.value] = out.get(ev.kind.value, 0) + 1
        return out
