"""Deterministic fault injection for LegionSystem testbeds.

The paper's failure story (section 4.1.4) is that stale bindings and
lost processes are *expected*: they cost repair traffic, never wrong
answers.  This package makes that claim testable at scale by turning
failure into a first-class, seeded workload:

* :class:`~repro.faults.plan.FaultPlan` -- a schedule of fault events
  drawn from a seeded RNG stream (whole-host crashes, single-object
  crashes, transient link-class degradation, timed site partitions);
* :class:`~repro.faults.driver.ChaosDriver` -- applies a plan against a
  running :class:`~repro.system.legion.LegionSystem` on simulated time;
* :class:`~repro.faults.log.FaultLog` -- records injected incidents and
  the recovery layer's observed reactions, so experiments reconcile the
  two and measure time-to-recover;
* :class:`~repro.faults.recovery.RecoverySweeper` -- periodic magistrate
  sweeps (the proactive half of recovery; the reactive half rides the
  runtime's stale-binding path).

Everything runs on the simulation kernel's clock and RNG streams, so a
chaos run is exactly as reproducible as a fault-free one.
"""

from repro.faults.driver import ChaosDriver
from repro.faults.log import FaultIncident, FaultLog
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.recovery import RecoverySweeper

__all__ = [
    "ChaosDriver",
    "FaultEvent",
    "FaultIncident",
    "FaultKind",
    "FaultLog",
    "FaultPlan",
    "RecoverySweeper",
]
