"""RecoverySweeper: periodic magistrate sweeps over their hosts.

The reactive half of recovery rides the runtime's stale-binding path
(delivery failure → GetBinding(stale) → RecoverObject).  This is the
proactive half: each magistrate periodically probes its adopted hosts
(``SweepHosts``) and reactivates the residents of any host found dead --
so even objects nobody is calling come back, and the time-to-recover
distribution is bounded by the sweep interval rather than by traffic.
"""

from __future__ import annotations

from typing import List

from repro.errors import LegionError, ProcessKilled
from repro.simkernel.kernel import Timeout


class RecoverySweeper:
    """One sweep process per magistrate, staggered to avoid lockstep.

    ``repair`` optionally couples a companion service with start/stop
    lifecycle (e.g. :class:`repro.replication.ReplicaRepairService`):
    host-level recovery brings processes back, the companion rebuilds
    replica groups -- one switch arms both halves of self-healing.
    """

    def __init__(
        self, system, interval: float = 120.0, stagger: float = 7.0, repair=None
    ) -> None:
        self.system = system
        self.interval = interval
        self.stagger = stagger
        self.repair = repair
        self._procs: List = []

    def start(self) -> None:
        """Spawn the per-magistrate sweep loops (and the repair companion)."""
        if self.repair is not None:
            self.repair.start()
        if self._procs:
            return
        for index, site in enumerate(sorted(self.system.magistrates)):
            server = self.system.magistrates[site]
            self._procs.append(
                self.system.kernel.spawn_process(
                    self._loop(server, index), name=f"recovery-sweep-{site}"
                )
            )

    def _loop(self, server, index: int):
        yield Timeout(self.interval + index * self.stagger)
        while True:
            try:
                yield from server.impl.sweep_hosts()
            except ProcessKilled:
                raise  # stop() tore this loop down; ProcessKilled must win
            except LegionError:
                pass  # a sweep interrupted by chaos just runs again later
            yield Timeout(self.interval)

    def stop(self) -> None:
        """Kill the sweep processes (end of the measured phase)."""
        for proc in self._procs:
            proc.kill()
        self._procs.clear()
        if self.repair is not None:
            self.repair.stop()
