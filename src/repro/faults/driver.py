"""ChaosDriver: apply a FaultPlan against a running LegionSystem."""

from __future__ import annotations

from typing import List, Optional

from repro.faults.log import FaultLog
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.net.latency import LinkClass


def eligible_hosts(system) -> List[int]:
    """Host ids a chaos run may crash: everything but each site's first
    host, which carries the site's magistrate, binding agent, and (at the
    first site) the core class objects.  Crashing those infrastructure
    singletons has no recovery path in this reproduction -- the paper
    assumes replicated core services -- so availability experiments keep
    them up and kill everything else.
    """
    protected = {ids[0] for ids in system.site_hosts.values() if ids}
    return [h for h in sorted(system.host_servers) if h not in protected]


class ChaosDriver:
    """Schedules a plan's events on the system's kernel, on simulated time.

    The driver is deterministic by construction: the plan holds every
    random draw already, so applying it consumes no randomness.  All
    incident bookkeeping goes to the :class:`FaultLog`, which is also
    installed as ``services.fault_log`` so magistrates can report the
    recoveries they perform.
    """

    def __init__(
        self,
        system,
        plan: FaultPlan,
        log: Optional[FaultLog] = None,
    ) -> None:
        self.system = system
        self.plan = plan
        self.log = log or FaultLog()
        self._protected = {ids[0] for ids in system.site_hosts.values() if ids}
        self._started = False

    def start(self) -> None:
        """Install the log and schedule every event (times are relative
        to now)."""
        if self._started:
            return
        self._started = True
        self.system.services.fault_log = self.log
        base = self.system.kernel.now
        for event in self.plan:
            self.system.kernel.schedule(
                max(0.0, base + event.time - self.system.kernel.now),
                self._apply,
                event,
            )

    def _apply(self, event: FaultEvent) -> None:
        if event.kind is FaultKind.HOST_CRASH:
            self.crash_host(int(event.target))
        elif event.kind is FaultKind.OBJECT_CRASH:
            self.crash_object(event.target)
        elif event.kind is FaultKind.LINK_DEGRADE:
            self.degrade_link(event.target, event.severity, event.duration)
        elif event.kind is FaultKind.PARTITION:
            site_a, site_b = event.target.split("|", 1)
            self.partition(site_a, site_b, event.duration)

    # ------------------------------------------------------------------ faults

    def crash_host(self, host_id: int) -> None:
        """The whole host dies: every resident process is killed and every
        endpoint on the host (including the Host Object's own) vanishes."""
        if host_id in self._protected:
            return  # infrastructure hosts are out of scope (see eligible_hosts)
        server = self.system.host_servers.get(host_id)
        if server is None or not server.active:
            return  # unknown or already down
        impl = server.impl
        now = self.system.kernel.now
        for entry in list(impl.processes.running()):
            entry.server.deactivate()
            entry.exception = f"host {host_id} crashed"
            self.log.inject(now, "object-lost", str(entry.loid), f"host {host_id}")
        impl.accepting = False
        server.deactivate()
        self.log.inject(now, "host-crash", str(host_id))

    def crash_object(self, key: str) -> None:
        """One object's process dies abnormally (its host survives)."""
        now = self.system.kernel.now
        for host_id, server in self.system.host_servers.items():
            if not server.active:
                continue
            for entry in server.impl.processes:
                if str(entry.loid) == key and not entry.crashed:
                    server.impl.crash_object(entry.loid, "chaos: object crash")
                    self.log.inject(now, "object-crash", key, f"host {host_id}")
                    return
        # Not running anywhere right now (already lost, or inert): no-op.

    def degrade_link(self, link: str, severity: float, duration: float) -> None:
        """Raise a link class's drop probability for ``duration``."""
        link_class = LinkClass(link)
        network = self.system.network
        before = network.drop_probability.get(link_class, 0.0)
        network.drop_probability[link_class] = max(before, severity)
        now = self.system.kernel.now
        self.log.inject(
            now, "link-degrade", link, f"p={severity:.3f} for {duration:.0f}"
        )

        def restore() -> None:
            network.drop_probability[link_class] = before
            self.log.inject(self.system.kernel.now, "link-restore", link)

        self.system.kernel.schedule(duration, restore)

    def partition(self, site_a: str, site_b: str, duration: float) -> None:
        """Split two sites for ``duration``, then heal."""
        network = self.system.network
        network.partition(site_a, site_b)
        now = self.system.kernel.now
        target = f"{site_a}|{site_b}"
        self.log.inject(now, "partition", target, f"for {duration:.0f}")

        def heal() -> None:
            network.heal(site_a, site_b)
            self.log.inject(self.system.kernel.now, "partition-heal", target)

        self.system.kernel.schedule(duration, heal)
