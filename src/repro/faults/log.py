"""FaultLog: injected incidents vs. the recovery layer's observations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class FaultIncident:
    """One timestamped incident, injected or observed."""

    time: float
    kind: str
    target: str
    detail: str = ""


@dataclass
class FaultLog:
    """Two ledgers: what the ChaosDriver did, what recovery noticed.

    The driver appends to ``injected`` ("host-crash", "object-lost", ...);
    magistrates append to ``observed`` ("object-demoted",
    "object-recovered") via ``services.fault_log``.  Experiments reconcile
    the two: every lost object must eventually appear as recovered, and
    the pairing yields the time-to-recover distribution.
    """

    injected: List[FaultIncident] = field(default_factory=list)
    observed: List[FaultIncident] = field(default_factory=list)

    def inject(self, time: float, kind: str, target: str, detail: str = "") -> None:
        """Record an incident the driver caused."""
        self.injected.append(FaultIncident(time, kind, target, detail))

    def observe(self, time: float, kind: str, target: str, detail: str = "") -> None:
        """Record an incident the system noticed/repaired."""
        self.observed.append(FaultIncident(time, kind, target, detail))

    # ------------------------------------------------------------- reconciliation

    def lost_objects(self) -> List[str]:
        """Targets of every injected object loss (crash or host loss)."""
        return [
            i.target
            for i in self.injected
            if i.kind in ("object-lost", "object-crash")
        ]

    def recovered_objects(self) -> List[str]:
        """Targets of every observed recovery."""
        return [i.target for i in self.observed if i.kind == "object-recovered"]

    def recovery_times(self) -> List[Tuple[str, float]]:
        """(object, latency) per recovery, paired with the latest earlier loss.

        An object can be lost and recovered several times; each recovery
        pairs with the most recent loss of the same target that precedes
        it.
        """
        out: List[Tuple[str, float]] = []
        for rec in self.observed:
            if rec.kind != "object-recovered":
                continue
            best = None
            for inj in self.injected:
                if inj.target != rec.target or inj.kind not in (
                    "object-lost",
                    "object-crash",
                ):
                    continue
                if inj.time <= rec.time and (best is None or inj.time > best):
                    best = inj.time
            if best is not None:
                out.append((rec.target, rec.time - best))
        return out

    def summary(self) -> Dict[str, Any]:
        """Aggregate view for reports and checks."""
        times = [t for _obj, t in self.recovery_times()]
        inj_by_kind: Dict[str, int] = {}
        for i in self.injected:
            inj_by_kind[i.kind] = inj_by_kind.get(i.kind, 0) + 1
        return {
            "injected": len(self.injected),
            "injected_by_kind": inj_by_kind,
            "observed": len(self.observed),
            "objects_lost": len(set(self.lost_objects())),
            "objects_recovered": len(set(self.recovered_objects())),
            "recoveries": len(times),
            "recovery_time_mean": sum(times) / len(times) if times else 0.0,
            "recovery_time_max": max(times) if times else 0.0,
        }

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serialisable dump (the CI artifact)."""
        def row(i: FaultIncident) -> Dict[str, Any]:
            return {
                "time": round(i.time, 6),
                "kind": i.kind,
                "target": i.target,
                "detail": i.detail,
            }

        return {
            "summary": self.summary(),
            "injected": [row(i) for i in self.injected],
            "observed": [row(i) for i in self.observed],
        }
