"""Identity: Iam() support via the LOID public-key field.

The paper reserves the low-order P bits of every LOID for a public key
"used for security purposes" (section 3.2) and gives objects an ``Iam()``
member function.  The full Legion security architecture lives in its
ref [8]; the core model only needs identities to be *checkable*, so this
reproduction derives keys deterministically from the LOID's identity
fields and a per-system secret (see :mod:`repro.naming.loid`) and verifies
them here.  A forged LOID -- right identity fields, wrong key -- fails
verification, which is the property the trust mechanisms (magistrate and
host policies) rely on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.naming.loid import LOID


def verify_identity(loid: LOID, system_secret: int) -> bool:
    """Whether ``loid``'s public key is genuine under ``system_secret``."""
    return loid.verify_key(system_secret)


@dataclass(frozen=True)
class Credentials:
    """What an object presents when asked ``Iam()``.

    The response token binds the object's LOID to a challenge nonce under
    the system secret, so it cannot be replayed for a different challenge.
    """

    loid: LOID
    token: bytes

    @classmethod
    def respond(cls, loid: LOID, challenge: int, system_secret: int) -> "Credentials":
        """Produce the Iam() response for ``challenge``."""
        token = hashlib.sha256(
            f"{system_secret}:{loid.pack().hex()}:{challenge}".encode()
        ).digest()
        return cls(loid=loid, token=token)

    def verify(self, challenge: int, system_secret: int) -> bool:
        """Check the token against the challenge and the claimed LOID."""
        expected = Credentials.respond(self.loid, challenge, system_secret)
        return (
            self.token == expected.token
            and verify_identity(self.loid, system_secret)
        )
