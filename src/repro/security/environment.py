"""Call environments: the (RA, SA, CA) triple of paper section 2.4.

"Every method invocation is performed in an environment consisting of a
triple of object names -- those of the operative Responsible Agent, the
Security Agent, and the Calling Agent."

* The **Calling Agent** is the object that issued this invocation; it is
  rewritten at every hop.
* The **Responsible Agent** is the principal on whose behalf the chain of
  calls runs (typically the user's top-level object); it propagates
  unchanged unless explicitly re-rooted.
* The **Security Agent** is the object consulted for policy decisions; it
  propagates unchanged by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.naming.loid import LOID


@dataclass(frozen=True, slots=True)
class CallEnvironment:
    """The security triple carried by every MethodInvocation.

    The environment also carries the call chain's causal coordinates
    (``trace``): the tracing layer threads a
    :class:`~repro.trace.context.TraceContext` through the same channel
    the (RA, SA) pair propagates on, so nested calls made inside a server
    method parent to the dispatch span that runs them.  ``trace`` is
    ``None`` whenever tracing is off and is excluded from equality -- two
    environments with the same security triple stay interchangeable.
    """

    responsible_agent: LOID
    security_agent: LOID
    calling_agent: LOID
    trace: Any = field(default=None, compare=False)

    @classmethod
    def originating(cls, origin: LOID, security_agent: Optional[LOID] = None) -> "CallEnvironment":
        """The environment of a call chain started by ``origin`` itself.

        With no distinct Security Agent, the originator plays all three
        roles -- the paper's "no security" default where the functions
        may be empty.
        """
        sa = security_agent if security_agent is not None else origin
        return cls(responsible_agent=origin, security_agent=sa, calling_agent=origin)

    def forwarded_by(self, caller: LOID) -> "CallEnvironment":
        """The environment for a nested call made by ``caller``.

        RA and SA propagate; CA becomes the immediate caller.  This is how
        e.g. a Binding Agent acting "on behalf of other Legion objects"
        (section 3.6) still presents the original responsible principal.
        """
        return CallEnvironment(
            responsible_agent=self.responsible_agent,
            security_agent=self.security_agent,
            calling_agent=caller,
            trace=self.trace,
        )

    def rerooted(self, new_responsible: LOID, caller: LOID) -> "CallEnvironment":
        """Re-root responsibility (an agent acting on its *own* behalf)."""
        return CallEnvironment(
            responsible_agent=new_responsible,
            security_agent=self.security_agent,
            calling_agent=caller,
            trace=self.trace,
        )

    def with_trace(self, trace: Any) -> "CallEnvironment":
        """The same security triple carrying new causal coordinates."""
        return CallEnvironment(
            responsible_agent=self.responsible_agent,
            security_agent=self.security_agent,
            calling_agent=self.calling_agent,
            trace=trace,
        )

    def __str__(self) -> str:
        return (
            f"env(RA={self.responsible_agent}, SA={self.security_agent}, "
            f"CA={self.calling_agent})"
        )
