"""Security hooks of the core object model (paper section 2.4).

The paper's security posture is "do no harm, caveat emptor, small is
beautiful": Legion itself guarantees nothing but provides hooks so objects
define and enforce their own policy.  The hooks are:

* ``MayI()`` -- consulted before every method executes; this package ships
  a family of :class:`MayIPolicy` objects (allow-all for the "no security"
  default, deny-all, ACLs, trust sets, and jurisdiction policies).
* ``Iam()`` -- identity: objects prove who they are with the public-key
  field of their LOID (:mod:`repro.security.identity`).
* The **call environment** -- every method invocation carries the triple
  of object names (Responsible Agent, Security Agent, Calling Agent)
  the paper requires (:class:`CallEnvironment`).
"""

from repro.security.environment import CallEnvironment
from repro.security.identity import Credentials, verify_identity
from repro.security.mayi import (
    ACLPolicy,
    AllowAll,
    CompositePolicy,
    DenyAll,
    MayIPolicy,
    TrustSetPolicy,
)

__all__ = [
    "CallEnvironment",
    "Credentials",
    "verify_identity",
    "MayIPolicy",
    "AllowAll",
    "DenyAll",
    "ACLPolicy",
    "TrustSetPolicy",
    "CompositePolicy",
]
