"""MayI() policies: the per-object admission check (paper section 2.4).

Every Legion object exports ``MayI()``; the dispatch loop consults the
object's policy before running any method.  "These functions may default
to empty for the case of no security" -- :class:`AllowAll` is that empty
default.  The other policies exercise the decisions the paper motivates:
DOE-style trust sets (Fig. 9), per-method ACLs, and composition.

A policy's ``may_i`` returns True to admit, False to refuse; refusals are
surfaced to the caller as :class:`~repro.errors.SecurityDenied`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Sequence, Set, Tuple

from repro.naming.loid import LOID
from repro.security.environment import CallEnvironment


class MayIPolicy:
    """Base policy.  Subclasses override :meth:`may_i`."""

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        """Decide whether ``method`` may run under ``env``."""
        raise NotImplementedError

    # -- composition sugar ----------------------------------------------------

    def __and__(self, other: "MayIPolicy") -> "CompositePolicy":
        return CompositePolicy([self, other], mode="all")

    def __or__(self, other: "MayIPolicy") -> "CompositePolicy":
        return CompositePolicy([self, other], mode="any")


class AllowAll(MayIPolicy):
    """The 'no security' default: every MayI() is empty and admits."""

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        return True


class DenyAll(MayIPolicy):
    """Refuse everything (a decommissioned or quarantined object)."""

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        return False


@dataclass
class ACLPolicy(MayIPolicy):
    """Per-method access control lists over calling agents.

    ``acl`` maps method name → set of admitted caller LOIDs; ``default``
    governs methods absent from the map.  The check inspects the Calling
    Agent (the immediate caller); pair with :class:`TrustSetPolicy` on
    the Responsible Agent for end-to-end control.
    """

    acl: Dict[str, Set[LOID]] = field(default_factory=dict)
    default: bool = False

    def allow(self, method: str, caller: LOID) -> None:
        """Admit ``caller`` to ``method``."""
        self.acl.setdefault(method, set()).add(caller)

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        admitted = self.acl.get(method)
        if admitted is None:
            return self.default
        return env.calling_agent in admitted


@dataclass
class TrustSetPolicy(MayIPolicy):
    """Admit only call chains whose Responsible Agent is trusted.

    This is the DOE scenario of Fig. 9: a site's magistrate and hosts
    admit work only on behalf of principals the site trusts, regardless
    of which intermediary (binding agent, class object) physically makes
    the call.
    """

    trusted: Set[LOID] = field(default_factory=set)
    #: Also require the immediate caller to be trusted (defence in depth).
    check_calling_agent: bool = False

    def trust(self, principal: LOID) -> None:
        """Add a principal to the trust set."""
        self.trusted.add(principal)

    def revoke(self, principal: LOID) -> None:
        """Remove a principal (idempotent)."""
        self.trusted.discard(principal)

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        if env.responsible_agent not in self.trusted:
            return False
        if self.check_calling_agent and env.calling_agent not in self.trusted:
            return False
        return True


@dataclass
class MethodFilterPolicy(MayIPolicy):
    """Admit only a fixed set of methods (e.g. read-only export)."""

    allowed_methods: FrozenSet[str] = frozenset()

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        return method in self.allowed_methods


class PredicatePolicy(MayIPolicy):
    """Wrap an arbitrary ``(method, env) -> bool`` callable.

    The escape hatch for user-built policies, honouring the paper's
    philosophy that users implement their own security.
    """

    def __init__(self, predicate: Callable[[str, CallEnvironment], bool]) -> None:
        self.predicate = predicate

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        return bool(self.predicate(method, env))


class CompositePolicy(MayIPolicy):
    """Combine policies with all-of / any-of semantics."""

    def __init__(self, policies: Sequence[MayIPolicy], mode: str = "all") -> None:
        if mode not in ("all", "any"):
            raise ValueError(f"mode must be 'all' or 'any', got {mode!r}")
        self.policies: Tuple[MayIPolicy, ...] = tuple(policies)
        self.mode = mode

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        checks = (p.may_i(method, env) for p in self.policies)
        return all(checks) if self.mode == "all" else any(checks)
