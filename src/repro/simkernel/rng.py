"""Named, independently seeded random streams.

Experiments must be reproducible and, more subtly, *decoupled*: adding a
random decision in one subsystem (say, scheduling) must not perturb the
random sequence another subsystem (say, the workload generator) sees.
:class:`RngStreams` therefore derives one independent generator per named
stream from a single master seed, using SHA-256 of ``(seed, name)`` so that
stream identity is stable across runs and machines.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

try:  # numpy is the optional ``repro[mega]`` extra; only numpy_stream needs it
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less installs only
    np = None  # type: ignore[assignment]


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A family of named random streams derived from one master seed.

    ``stream(name)`` returns a :class:`random.Random`; ``numpy_stream(name)``
    returns a :class:`numpy.random.Generator`.  The same (seed, name) pair
    always yields the same sequence.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """The stdlib stream for ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.master_seed, name))
        return self._streams[name]

    def numpy_stream(self, name: str) -> "np.random.Generator":
        """The NumPy stream for ``name`` (created on first use)."""
        if np is None:
            from repro.megascale.compat import require_numpy

            require_numpy(f"numpy_stream({name!r})")
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(
                _derive_seed(self.master_seed, "np:" + name)
            )
        return self._np_streams[name]

    def fork(self, name: str) -> "RngStreams":
        """A child family, fully determined by (master_seed, name)."""
        return RngStreams(_derive_seed(self.master_seed, "fork:" + name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStreams seed={self.master_seed} streams={sorted(self._streams)}>"
