"""The discrete-event loop: simulated clock, events, generator processes.

Processes are plain Python generators.  A process may ``yield``:

* a :class:`~repro.simkernel.futures.SimFuture` -- suspend until resolved;
  the ``yield`` expression evaluates to the future's result, and a failed
  future re-raises its exception *inside* the process (so processes use
  ordinary ``try/except``);
* a :class:`Timeout` -- suspend for simulated time;
* another generator -- spawned as a child process and awaited;
* ``None`` -- yield the floor: resume after all currently-due events.

A process's ``return`` value becomes the result of the :class:`SimFuture`
returned by :meth:`SimKernel.spawn`.

The loop is strictly deterministic: events at equal times run in schedule
order (a monotonically increasing sequence number breaks ties).

Hot-path design (the fast path every experiment sweep lives on):

* The heap holds bare tuples ``(time, seq, fn, args)`` -- no per-event
  object allocation, no comparison ever reaches ``fn`` because ``seq`` is
  unique.  Cancellation is a side set of sequence numbers checked on pop.
* Resuming a process from a resolved future does **not** allocate a fresh
  0-delay event when nothing else is due at the current instant; the
  resume runs on a bounded FIFO *trampoline* drained after the current
  event's callback returns.  Because the trampoline runs exactly where the
  0-delay event would have run (after the current callback, before any
  strictly-later event, in resolution order), the event *order* -- and
  therefore every simulated-time result -- is bit-identical to the naive
  always-schedule kernel.  When another event *is* due at the same instant
  the kernel falls back to a real event, preserving seq-order fairness.
  Trampolined resumes still count in :attr:`SimKernel.events_executed`.
* The trampoline is depth-bounded (:attr:`SimKernel.TRAMPOLINE_LIMIT`):
  a pathological zero-time resolve/resume loop spills back into the heap
  as ordinary events so ``max_events`` guards still engage.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from types import GeneratorType
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.errors import ProcessKilled, SimulationDeadlock, SimulationError
from repro.simkernel.futures import SimFuture

ProcessGen = Generator[Any, Any, Any]

#: Heap entry: (time, seq, fn, args).  seq is unique, so comparisons never
#: reach fn/args and the tuple order is a strict total order.
_Entry = Tuple[float, int, Callable[..., None], Tuple[Any, ...]]


@dataclass(frozen=True)
class Timeout:
    """Yieldable marker: suspend the yielding process for ``delay`` time."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout {self.delay}")


class EventHandle:
    """Returned by :meth:`SimKernel.schedule`; allows cancellation."""

    __slots__ = ("_kernel", "_seq", "_time")

    def __init__(self, kernel: "SimKernel", seq: int, time: float) -> None:
        self._kernel = kernel
        self._seq = seq
        self._time = time

    def cancel(self) -> None:
        """Prevent the event from running (no-op if already run).

        Cancelled entries stay in the heap as placeholders and are
        discarded on pop; the kernel compacts the heap when placeholders
        outnumber live events (see :meth:`SimKernel._compact`).
        """
        self._kernel._cancel(self._seq)

    @property
    def time(self) -> float:
        """Simulated time at which the event is (was) due."""
        return self._time


class Process:
    """A running simulation process wrapping a generator.

    Not constructed directly -- use :meth:`SimKernel.spawn`.
    """

    __slots__ = ("kernel", "gen", "future", "name", "_alive", "_step_cb", "_fut_cb")

    def __init__(self, kernel: "SimKernel", gen: ProcessGen, name: str) -> None:
        self.kernel = kernel
        self.gen = gen
        self.future = SimFuture(name or "process")
        self.name = name
        self._alive = True
        # Bound methods are allocated on every attribute access; the two
        # below are passed to the scheduler on every step, so bind once.
        self._step_cb = self._step_send
        self._fut_cb = self._on_future

    @property
    def alive(self) -> bool:
        """True until the generator returns, raises, or is killed."""
        return self._alive

    def kill(self, reason: str = "killed") -> None:
        """Throw :class:`ProcessKilled` into the process at its next step."""
        if not self._alive:
            return
        self.kernel.post(0.0, self._step_throw, ProcessKilled(reason))

    # -- stepping -----------------------------------------------------------

    def _step_send(self, value: Any) -> None:
        if not self._alive:
            return
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - mirrored to future
            self._fail(exc)
            return
        self._handle_yield(yielded)

    def _step_throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            yielded = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - mirrored to future
            self._fail(err)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, SimFuture):
            yielded.add_done_callback(self._fut_cb)
        elif isinstance(yielded, Timeout):
            self.kernel.post(yielded.delay, self._step_cb, None)
        elif isinstance(yielded, Generator):
            child = self.kernel.spawn(yielded, name=self.name + ".child")
            child.add_done_callback(self._fut_cb)
        elif yielded is None:
            self.kernel.post(0.0, self._step_cb, None)
        else:
            self._step_throw(
                SimulationError(
                    f"process {self.name!r} yielded unsupported {type(yielded).__name__}"
                )
            )

    def _on_future(self, fut: SimFuture) -> None:
        # Resume via the kernel trampoline: synchronous-ish (no heap event)
        # when nothing else is due now, but never re-entrant -- the resume
        # runs only after the currently-executing callback returns, exactly
        # where the old always-scheduled 0-delay event would have run.
        if fut._state == "failed":
            exc = fut._exception
            assert exc is not None
            self.kernel._resume(self._step_throw, exc)
        else:
            self.kernel._resume(self._step_cb, fut._result)

    def _finish(self, value: Any) -> None:
        self._alive = False
        self.future.set_result(value)

    def _fail(self, exc: BaseException) -> None:
        self._alive = False
        self.future.set_exception(exc)


class SimKernel:
    """The discrete-event simulation loop.

    Examples
    --------
    >>> k = SimKernel()
    >>> def proc():
    ...     yield Timeout(5.0)
    ...     return k.now
    >>> fut = k.spawn(proc())
    >>> k.run()
    >>> fut.result()
    5.0
    """

    #: Max trampolined resumes drained per event before the remainder is
    #: spilled back into the heap as ordinary 0-delay events (so runaway
    #: zero-time loops stay visible to ``max_events`` guards).
    TRAMPOLINE_LIMIT = 10_000

    #: Compaction kicks in only past this many cancelled placeholders
    #: (avoids thrashing on tiny queues).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[_Entry] = []
        #: seqs of cancelled-but-still-queued entries (lazy deletion).
        self._cancelled: set = set()
        #: pending synchronous resumes: (fn, arg) pairs, FIFO.
        self._micro: Deque[Tuple[Callable[[Any], None], Any]] = deque()
        self._processes_spawned = 0
        self._events_executed = 0

    # -- clock & stats ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total events run so far (monotone; useful for budget guards).

        Trampolined resumes count too, so the number is independent of
        whether a resume happened to take the fast path.
        """
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Events still due to run (cancelled placeholders excluded)."""
        live = len(self._queue) - len(self._cancelled)
        return (live if live > 0 else 0) + len(self._micro)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        when = self._now + delay
        heapq.heappush(self._queue, (when, self._seq, fn, args))
        return EventHandle(self, self._seq, when)

    def post(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """:meth:`schedule` without the :class:`EventHandle`.

        The handle exists only to support cancellation; hot paths that
        never cancel (process steps, message delivery) use this to skip
        the per-event handle allocation.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, fn, args))

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated time ``when`` (>= now)."""
        return self.schedule(when - self._now, fn, *args)

    def call_later(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Alias of :meth:`schedule` (kept for callback-style call sites)."""
        return self.schedule(delay, fn, *args)

    def spawn(self, gen: ProcessGen, name: str = "") -> SimFuture:
        """Start ``gen`` as a process; returns a future for its return value.

        The first step of the process runs on a fresh event at the current
        time, never synchronously inside ``spawn`` -- so spawn order, not
        call-stack shape, determines execution order.
        """
        # type-is first: native generators (every process in practice)
        # skip the typing-ABC __instancecheck__ walk on the spawn path.
        if type(gen) is not GeneratorType and not isinstance(gen, Generator):
            raise SimulationError(
                f"spawn() needs a generator, got {type(gen).__name__}; "
                "did you forget to call the process function?"
            )
        self._processes_spawned += 1
        proc = Process(self, gen, name or f"proc-{self._processes_spawned}")
        self.post(0.0, proc._step_cb, None)
        return proc.future

    def spawn_process(self, gen: ProcessGen, name: str = "") -> Process:
        """Like :meth:`spawn` but returns the :class:`Process` (killable)."""
        if type(gen) is not GeneratorType and not isinstance(gen, Generator):
            raise SimulationError(
                f"spawn_process() needs a generator, got {type(gen).__name__}"
            )
        self._processes_spawned += 1
        proc = Process(self, gen, name or f"proc-{self._processes_spawned}")
        self.post(0.0, proc._step_cb, None)
        return proc

    # -- cancellation -------------------------------------------------------

    def _cancel(self, seq: int) -> None:
        self._cancelled.add(seq)
        if (
            len(self._cancelled) > self.COMPACT_MIN_CANCELLED
            and len(self._cancelled) * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled placeholders and re-heapify.

        O(n), amortised free: it only runs once cancellations exceed half
        the queue, and it also sweeps out any stray seqs from handles
        cancelled after their event already ran.

        Mutates the queue list *in place*: the run loops keep a local
        alias to it across callbacks, and a compaction triggered inside a
        callback must not strand them on a stale list.
        """
        cancelled = self._cancelled
        queue = self._queue
        queue[:] = [e for e in queue if e[1] not in cancelled]
        heapq.heapify(queue)
        cancelled.clear()

    # -- trampoline ---------------------------------------------------------

    def _resume(self, fn: Callable[[Any], None], arg: Any) -> None:
        """Queue a process resume for "as soon as the naive kernel would".

        Fast path: nothing else is due at the current instant, so the
        resume goes on the FIFO trampoline (drained right after the
        current callback returns) instead of through the heap.  Slow
        path: an event *is* due now -- fall back to a real 0-delay event
        so it keeps its place in seq order.
        """
        queue = self._queue
        if queue and queue[0][0] <= self._now:
            self.post(0.0, fn, arg)
        else:
            self._micro.append((fn, arg))

    def _drain_micro(self) -> None:
        micro = self._micro
        budget = self.TRAMPOLINE_LIMIT
        while micro:
            if budget == 0:
                # Pathological zero-time loop: spill the remainder into the
                # heap (FIFO order is preserved by ascending seqs) so the
                # outer loop's max_events guard can see it.
                while micro:
                    fn, arg = micro.popleft()
                    self.post(0.0, fn, arg)
                return
            fn, arg = micro.popleft()
            budget -= 1
            self._events_executed += 1
            fn(arg)

    # -- running ------------------------------------------------------------

    def step(self) -> bool:
        """Run the single next unit of work.  False if nothing is pending."""
        if self._micro:  # resumes queued outside an event (e.g. test code)
            self._drain_micro()
            return True
        queue = self._queue
        cancelled = self._cancelled
        while queue:
            time, seq, fn, args = heapq.heappop(queue)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            if time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event queue went backwards in time")
            self._now = time
            self._events_executed += 1
            fn(*args)
            if self._micro:
                self._drain_micro()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this (the clock is left at
            ``until``; later events remain queued).
        max_events:
            Safety valve for runaway simulations.
        """
        if until is None and max_events is None:
            self._run_fast()
            return
        executed = 0
        while self._queue or self._micro:
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"run() exceeded max_events={max_events}")
            if self._micro:
                self._drain_micro()
                executed += 1
                continue
            nxt = self._peek()
            if nxt is None:
                break
            if until is not None and nxt[0] > until:
                self._now = until
                return
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def _run_fast(self) -> None:
        """The unguarded drain loop: same order as step(), fewer frames."""
        queue = self._queue
        micro = self._micro
        cancelled = self._cancelled
        pop = heapq.heappop
        while True:
            if micro:
                self._drain_micro()  # leaves micro empty (spills go to queue)
            if not queue:
                break
            time, seq, fn, args = pop(queue)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time
            self._events_executed += 1
            fn(*args)

    def run_until_complete(self, fut: SimFuture, max_events: Optional[int] = None) -> Any:
        """Run until ``fut`` resolves; return its result (or raise).

        Raises :class:`SimulationDeadlock` if the queue drains first.
        """
        executed = 0
        while not fut.done():
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            if not self.step():
                raise SimulationDeadlock(
                    f"event queue drained before future {fut.name!r} resolved"
                )
            executed += 1
        return fut.result()

    def _peek(self) -> Optional[_Entry]:
        queue = self._queue
        cancelled = self._cancelled
        while queue and queue[0][1] in cancelled:
            cancelled.discard(queue[0][1])
            heapq.heappop(queue)
        return queue[0] if queue else None

    # -- helpers ------------------------------------------------------------

    def sleep(self, delay: float) -> SimFuture:
        """A future that resolves after ``delay`` (for callback-style code)."""
        fut = SimFuture(f"sleep-{delay}")
        self.post(delay, fut.set_result, None)
        return fut

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimKernel t={self._now:.3f} queued={len(self._queue)}>"
