"""The discrete-event loop: simulated clock, events, generator processes.

Processes are plain Python generators.  A process may ``yield``:

* a :class:`~repro.simkernel.futures.SimFuture` -- suspend until resolved;
  the ``yield`` expression evaluates to the future's result, and a failed
  future re-raises its exception *inside* the process (so processes use
  ordinary ``try/except``);
* a :class:`Timeout` -- suspend for simulated time;
* another generator -- spawned as a child process and awaited;
* ``None`` -- yield the floor: resume after all currently-due events.

A process's ``return`` value becomes the result of the :class:`SimFuture`
returned by :meth:`SimKernel.spawn`.

The loop is strictly deterministic: events at equal times run in schedule
order (a monotonically increasing sequence number breaks ties).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import ProcessKilled, SimulationDeadlock, SimulationError
from repro.simkernel.futures import SimFuture

ProcessGen = Generator[Any, Any, Any]


@dataclass(frozen=True)
class Timeout:
    """Yieldable marker: suspend the yielding process for ``delay`` time."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout {self.delay}")


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`SimKernel.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from running (no-op if already run)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Simulated time at which the event is (was) due."""
        return self._event.time


class Process:
    """A running simulation process wrapping a generator.

    Not constructed directly -- use :meth:`SimKernel.spawn`.
    """

    __slots__ = ("kernel", "gen", "future", "name", "_alive")

    def __init__(self, kernel: "SimKernel", gen: ProcessGen, name: str) -> None:
        self.kernel = kernel
        self.gen = gen
        self.future = SimFuture(name or "process")
        self.name = name
        self._alive = True

    @property
    def alive(self) -> bool:
        """True until the generator returns, raises, or is killed."""
        return self._alive

    def kill(self, reason: str = "killed") -> None:
        """Throw :class:`ProcessKilled` into the process at its next step."""
        if not self._alive:
            return
        self.kernel.schedule(0.0, lambda: self._step_throw(ProcessKilled(reason)))

    # -- stepping -----------------------------------------------------------

    def _step_send(self, value: Any) -> None:
        if not self._alive:
            return
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - mirrored to future
            self._fail(exc)
            return
        self._handle_yield(yielded)

    def _step_throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            yielded = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - mirrored to future
            self._fail(err)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, SimFuture):
            yielded.add_done_callback(self._on_future)
        elif isinstance(yielded, Timeout):
            self.kernel.schedule(yielded.delay, lambda: self._step_send(None))
        elif isinstance(yielded, Generator):
            child = self.kernel.spawn(yielded, name=self.name + ".child")
            child.add_done_callback(self._on_future)
        elif yielded is None:
            self.kernel.schedule(0.0, lambda: self._step_send(None))
        else:
            self._step_throw(
                SimulationError(
                    f"process {self.name!r} yielded unsupported {type(yielded).__name__}"
                )
            )

    def _on_future(self, fut: SimFuture) -> None:
        # Resume on a fresh event so resolution code never re-enters the
        # process synchronously (keeps stack depth bounded & ordering stable).
        if fut.failed():
            exc = fut.exception()
            assert exc is not None
            self.kernel.schedule(0.0, lambda: self._step_throw(exc))
        else:
            self.kernel.schedule(0.0, lambda: self._step_send(fut._result))

    def _finish(self, value: Any) -> None:
        self._alive = False
        self.future.set_result(value)

    def _fail(self, exc: BaseException) -> None:
        self._alive = False
        self.future.set_exception(exc)


class SimKernel:
    """The discrete-event simulation loop.

    Examples
    --------
    >>> k = SimKernel()
    >>> def proc():
    ...     yield Timeout(5.0)
    ...     return k.now
    >>> fut = k.spawn(proc())
    >>> k.run()
    >>> fut.result()
    5.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[_Event] = []
        self._processes_spawned = 0
        self._events_executed = 0

    # -- clock & stats ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total events run so far (monotone; useful for budget guards)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Events currently queued (including cancelled placeholders)."""
        return len(self._queue)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn()`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        ev = _Event(self._now + delay, self._seq, fn)
        heapq.heappush(self._queue, ev)
        return EventHandle(ev)

    def schedule_at(self, when: float, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn()`` at absolute simulated time ``when`` (>= now)."""
        return self.schedule(when - self._now, fn)

    def spawn(self, gen: ProcessGen, name: str = "") -> SimFuture:
        """Start ``gen`` as a process; returns a future for its return value.

        The first step of the process runs on a fresh event at the current
        time, never synchronously inside ``spawn`` -- so spawn order, not
        call-stack shape, determines execution order.
        """
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"spawn() needs a generator, got {type(gen).__name__}; "
                "did you forget to call the process function?"
            )
        self._processes_spawned += 1
        proc = Process(self, gen, name or f"proc-{self._processes_spawned}")
        self.schedule(0.0, lambda: proc._step_send(None))
        return proc.future

    def spawn_process(self, gen: ProcessGen, name: str = "") -> Process:
        """Like :meth:`spawn` but returns the :class:`Process` (killable)."""
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"spawn_process() needs a generator, got {type(gen).__name__}"
            )
        self._processes_spawned += 1
        proc = Process(self, gen, name or f"proc-{self._processes_spawned}")
        self.schedule(0.0, lambda: proc._step_send(None))
        return proc

    def call_later(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Convenience: schedule ``fn(*args)``."""
        return self.schedule(delay, lambda: fn(*args))

    # -- running ------------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event queue went backwards in time")
            self._now = ev.time
            self._events_executed += 1
            ev.fn()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this (the clock is left at
            ``until``; later events remain queued).
        max_events:
            Safety valve for runaway simulations.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"run() exceeded max_events={max_events}")
            nxt = self._peek()
            if nxt is None:
                break
            if until is not None and nxt.time > until:
                self._now = until
                return
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def run_until_complete(self, fut: SimFuture, max_events: Optional[int] = None) -> Any:
        """Run until ``fut`` resolves; return its result (or raise).

        Raises :class:`SimulationDeadlock` if the queue drains first.
        """
        executed = 0
        while not fut.done():
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            if not self.step():
                raise SimulationDeadlock(
                    f"event queue drained before future {fut.name!r} resolved"
                )
            executed += 1
        return fut.result()

    def _peek(self) -> Optional[_Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    # -- helpers ------------------------------------------------------------

    def sleep(self, delay: float) -> SimFuture:
        """A future that resolves after ``delay`` (for callback-style code)."""
        fut = SimFuture(f"sleep-{delay}")
        self.schedule(delay, lambda: fut.set_result(None))
        return fut

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimKernel t={self._now:.3f} queued={len(self._queue)}>"
