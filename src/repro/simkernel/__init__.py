"""Discrete-event simulation kernel.

This is the substrate underneath the whole reproduction.  The paper's Legion
is a wide-area distributed system of address-space-disjoint objects that
communicate by non-blocking method invocation; we model every active object
as a simulation entity and every method call as a timestamped message, so
the quantities Section 5 of the paper reasons about -- hop counts, cache
behaviour, per-component request load -- are directly measurable and
deterministic under a seed.

The kernel is deliberately SimPy-flavoured (generator-based processes that
``yield`` futures and timeouts) but written from scratch: no third-party
simulation dependency is used.

Public API
----------
:class:`SimKernel`
    The event loop: simulated clock, scheduling, process spawning.
:class:`SimFuture`
    A single-assignment result container usable from processes.
:class:`Timeout`
    Yieldable marker that suspends a process for simulated time.
:func:`gather` / :func:`any_of`
    Future combinators.
:class:`RngStreams`
    Named, independently seeded random streams for reproducible runs.
"""

from repro.simkernel.futures import SimFuture, gather, any_of
from repro.simkernel.kernel import SimKernel, Timeout, Process
from repro.simkernel.rng import RngStreams

__all__ = [
    "SimKernel",
    "SimFuture",
    "Timeout",
    "Process",
    "gather",
    "any_of",
    "RngStreams",
]
