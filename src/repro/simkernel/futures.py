"""Single-assignment futures for the simulation kernel.

A :class:`SimFuture` is the unit of synchronisation between simulation
processes.  A process that ``yield``\\ s a future is suspended until the
future is resolved; resolving with an exception re-raises that exception
inside the waiting process.  Futures are deliberately synchronous-callback
based (no threads): resolution runs the registered callbacks immediately,
in registration order, which keeps the simulation deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.errors import FutureError

_PENDING = "pending"
_DONE = "done"
_FAILED = "failed"


class SimFuture:
    """A write-once result container.

    Parameters
    ----------
    name:
        Optional label used in ``repr`` and error messages; helps when
        debugging long binding chains.
    """

    __slots__ = ("_state", "_result", "_exception", "_cb", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._state = _PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        #: The overwhelmingly common case is exactly one waiter, so the
        #: first callback lives in a plain slot and the overflow list is
        #: only allocated for the second and later ones.
        self._cb: Optional[Callable[["SimFuture"], None]] = None
        self._callbacks: Optional[List[Callable[["SimFuture"], None]]] = None
        self.name = name

    # -- inspection ---------------------------------------------------------

    def done(self) -> bool:
        """True once the future holds a result or an exception."""
        return self._state != _PENDING

    def failed(self) -> bool:
        """True if the future was resolved with an exception."""
        return self._state == _FAILED

    def result(self) -> Any:
        """Return the value, re-raising the stored exception if any.

        Raises :class:`FutureError` if the future is still pending.
        """
        if self._state == _PENDING:
            raise FutureError(f"future {self.name or id(self)} is still pending")
        if self._state == _FAILED:
            assert self._exception is not None
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        """Return the stored exception, or None."""
        return self._exception

    # -- resolution ---------------------------------------------------------

    def set_result(self, value: Any = None) -> None:
        """Resolve the future with ``value`` and run callbacks."""
        if self._state != _PENDING:
            raise FutureError(f"future {self.name or id(self)} already resolved")
        self._state = _DONE
        self._result = value
        # Inlined single-callback fast path (the warm invoke hot loop).
        cb = self._cb
        if cb is not None:
            self._cb = None
            cb(self)
        if self._callbacks:
            self._run_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        """Resolve the future with an exception and run callbacks."""
        if self._state != _PENDING:
            raise FutureError(f"future {self.name or id(self)} already resolved")
        if not isinstance(exc, BaseException):
            raise FutureError(f"set_exception() needs an exception, got {exc!r}")
        self._state = _FAILED
        self._exception = exc
        cb = self._cb
        if cb is not None:
            self._cb = None
            cb(self)
        if self._callbacks:
            self._run_callbacks()

    def _run_callbacks(self) -> None:
        cb = self._cb
        if cb is not None:
            self._cb = None
            cb(self)
        if self._callbacks:
            callbacks, self._callbacks = self._callbacks, None
            for cb in callbacks:
                cb(self)

    # -- chaining -----------------------------------------------------------

    def add_done_callback(self, cb: Callable[["SimFuture"], None]) -> None:
        """Run ``cb(self)`` when resolved (immediately if already done)."""
        if self._state != _PENDING:
            cb(self)
        elif self._cb is None:
            self._cb = cb
        else:
            if self._callbacks is None:
                self._callbacks = []
            self._callbacks.append(cb)

    def then(self, fn: Callable[[Any], Any], name: str = "") -> "SimFuture":
        """Return a future holding ``fn(result)``; exceptions propagate."""
        out = SimFuture(name or (self.name + ".then"))

        def _cb(fut: "SimFuture") -> None:
            if fut.failed():
                out.set_exception(fut.exception())  # type: ignore[arg-type]
                return
            try:
                out.set_result(fn(fut._result))
            except BaseException as exc:  # noqa: BLE001 - mirrored to future
                out.set_exception(exc)

        self.add_done_callback(_cb)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<SimFuture{label} {self._state}>"


def completed(value: Any = None, name: str = "") -> SimFuture:
    """Return an already-resolved future holding ``value``."""
    fut = SimFuture(name)
    fut.set_result(value)
    return fut


def failed(exc: BaseException, name: str = "") -> SimFuture:
    """Return an already-failed future holding ``exc``."""
    fut = SimFuture(name)
    fut.set_exception(exc)
    return fut


def gather(futures: Iterable[SimFuture], name: str = "gather") -> SimFuture:
    """Combine futures into one resolving with the list of all results.

    Resolution order is irrelevant; results are returned in input order.
    The first failure fails the gather (remaining results are discarded,
    matching the semantics callers of multi-replica sends expect).
    """
    futs = list(futures)
    out = SimFuture(name)
    if not futs:
        out.set_result([])
        return out
    remaining = len(futs)
    results: List[Any] = [None] * remaining

    def make_cb(i: int) -> Callable[[SimFuture], None]:
        def _cb(fut: SimFuture) -> None:
            nonlocal remaining
            if out.done():
                return
            if fut.failed():
                out.set_exception(fut.exception())  # type: ignore[arg-type]
                return
            results[i] = fut._result
            remaining -= 1
            if remaining == 0:
                out.set_result(results)

        return _cb

    for i, fut in enumerate(futs):
        fut.add_done_callback(make_cb(i))
    return out


def any_of(futures: Iterable[SimFuture], name: str = "any_of") -> SimFuture:
    """Resolve with ``(index, result)`` of the first future to succeed.

    Fails only if *every* input future fails, with the last exception.
    Used for k-of-n / any-replica Object Address semantics (paper 3.4),
    where one live replica is enough.
    """
    futs = list(futures)
    out = SimFuture(name)
    if not futs:
        out.set_exception(FutureError("any_of() of no futures"))
        return out
    failures = 0

    def make_cb(i: int) -> Callable[[SimFuture], None]:
        def _cb(fut: SimFuture) -> None:
            nonlocal failures
            if out.done():
                return
            if fut.failed():
                failures += 1
                if failures == len(futs):
                    out.set_exception(fut.exception())  # type: ignore[arg-type]
                return
            out.set_result((i, fut._result))

        return _cb

    for i, fut in enumerate(futs):
        fut.add_done_callback(make_cb(i))
    return out


def k_of(futures: Iterable[SimFuture], k: int, name: str = "k_of") -> SimFuture:
    """Resolve with the first ``k`` successful results (index, value pairs).

    Fails when fewer than ``k`` inputs can still succeed.  This implements
    the "k of the N addresses" multicast semantic of paper section 3.4.
    """
    futs = list(futures)
    out = SimFuture(name)
    if k <= 0:
        out.set_result([])
        return out
    if len(futs) < k:
        out.set_exception(FutureError(f"k_of: need {k} results, only {len(futs)} futures"))
        return out
    successes: List[Any] = []
    failures = 0

    def make_cb(i: int) -> Callable[[SimFuture], None]:
        def _cb(fut: SimFuture) -> None:
            nonlocal failures
            if out.done():
                return
            if fut.failed():
                failures += 1
                if len(futs) - failures < k:
                    out.set_exception(fut.exception())  # type: ignore[arg-type]
                return
            successes.append((i, fut._result))
            if len(successes) == k:
                out.set_result(list(successes))

        return _cb

    for i, fut in enumerate(futs):
        fut.add_done_callback(make_cb(i))
    return out
