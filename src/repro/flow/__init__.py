"""repro.flow -- admission control, credits, and request batching.

The dynamic complement to the paper's structural scalability story: once
offered load exceeds a component's capacity, bounded queues shed with
``Overloaded`` + ``retry_after`` pushback, caller credit windows bound
in-flight work end-to-end, and compatible metadata reads coalesce into
batched upstream messages.  All mechanisms are off unless a
:class:`FlowConfig` is installed on ``SystemServices.flow``.
"""

from repro.flow.admission import AdmissionController, AdmissionStats
from repro.flow.batching import BatchInvocation, RequestBatcher
from repro.flow.config import FlowConfig
from repro.flow.credits import CreditLedger, CreditWindow

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BatchInvocation",
    "CreditLedger",
    "CreditWindow",
    "FlowConfig",
    "RequestBatcher",
]
