"""Credit-based backpressure: caller-side in-flight windows.

Admission control protects a server once traffic arrives; credits stop
the traffic from piling up on the wire in the first place.  Every caller
holds a window of ``credit_window`` credits per (target LOID identity,
address element): sending a request spends one credit, and *any*
settlement of that request -- reply, shed, delivery failure, timeout,
cancellation -- returns it.  A caller with no credits left parks on a
future that the next settlement resolves (credit hand-off), so in-flight
work toward any one component is bounded end-to-end without polling.

Because timeouts are themselves settlements, a lost reply can delay a
credit by at most the request deadline: the window can stall, never
deadlock.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.simkernel.futures import SimFuture


class CreditWindow:
    """One (LOID identity, address element) window of send permits."""

    __slots__ = ("capacity", "available", "waiters")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.available = capacity
        #: Callers parked until a settlement hands them a credit.
        self.waiters: Deque[SimFuture] = deque()

    def try_acquire(self) -> Optional[SimFuture]:
        """Spend one credit.

        Returns ``None`` when a credit was available; otherwise a future
        that resolves *already holding* the credit (no second acquire).
        """
        if self.available > 0:
            self.available -= 1
            return None
        waiter = SimFuture("credit-wait")
        self.waiters.append(waiter)
        return waiter

    def release(self, _settled=None) -> None:
        """Return one credit; doubles as a SimFuture done-callback."""
        while self.waiters:
            waiter = self.waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)  # hand the credit straight over
                return
        if self.available < self.capacity:
            self.available += 1

    @property
    def headroom(self) -> bool:
        """True when a send would not have to wait."""
        return self.available > 0


class CreditLedger:
    """All of one runtime's credit windows, created on first use."""

    __slots__ = ("capacity", "windows")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.windows: Dict[Tuple, CreditWindow] = {}

    def window(self, identity, element) -> CreditWindow:
        """The window for (LOID identity, address element)."""
        key = (identity, element)
        window = self.windows.get(key)
        if window is None:
            window = CreditWindow(self.capacity)
            self.windows[key] = window
        return window

    def has_headroom(self, identity, element) -> bool:
        """True when a send toward the pair would not wait (unknown = yes)."""
        window = self.windows.get((identity, element))
        return window is None or window.headroom
