"""Admission control: bounded per-ObjectServer queues with shedding.

"The number of requests made to any single component of the system
cannot be allowed to grow unreasonably with the size of the system"
(paper section 5).  The combining tree bounds *who* sends requests;
admission control bounds *how many are in the building at once*: a
server of an admitted component kind dispatches at most ``capacity``
requests concurrently, queues at most ``queue_limit`` more, and sheds
the rest with a first-class :class:`~repro.errors.Overloaded` reply.

Shedding is deadline- and priority-aware:

* a request whose caller deadline cannot be met even if everything ahead
  of it drains on schedule is shed immediately (serving it would produce
  a corpse the caller already gave up on);
* when the queue is full, a higher-priority arrival evicts the
  worst-priority waiter instead of being dropped itself.

Every shed reply carries a server-computed ``retry_after`` hint -- the
backlog drained at the configured service estimate -- so honest callers
(see :class:`~repro.core.runtime.RetryPolicy`) pace their retries to
when admission is actually plausible, instead of hammering the queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.flow.batching import BatchInvocation
from repro.net.message import Message


@dataclass
class AdmissionStats:
    """Per-server admission counters (logical requests, not messages)."""

    admitted: int = 0
    queued: int = 0
    #: reason → logical requests shed ("capacity", "deadline", "evicted").
    shed: Dict[str, int] = field(default_factory=dict)

    def shed_total(self) -> int:
        """All logical requests shed, any reason."""
        return sum(self.shed.values())


class AdmissionController:
    """The bounded queue in front of one ObjectServer's dispatch loop."""

    __slots__ = ("server", "config", "waiting", "stats", "paused", "_pumping")

    def __init__(self, server, config) -> None:
        self.server = server
        self.config = config
        #: FIFO of REQUEST messages waiting for a dispatch slot.
        self.waiting: List[Message] = []
        self.stats = AdmissionStats()
        #: Failed-band switch (repro.health): a paused server sheds every
        #: new arrival with reason "paused" (already-queued work drains).
        self.paused = False
        #: Reentrancy guard: dispatching a synchronous method replies (and
        #: pumps) before the outer pump loop's iteration finishes.
        self._pumping = False

    # ------------------------------------------------------------------ intake

    def arrive(self, message: Message) -> None:
        """Admit, queue, or shed one incoming REQUEST message."""
        if self.paused:
            self._shed(message, "paused")
            return
        server = self.server
        config = self.config
        size = self._size(message)
        if not self.waiting and server.in_flight + size <= config.capacity:
            self.stats.admitted += size
            self._dispatch(message)
            return
        if size > config.capacity:
            # A batch wider than the whole server can never be dispatched
            # as a unit; queueing it would starve the head of the line.
            self._shed(message, "capacity")
            return
        payload = message.payload
        deadline = None if size > 1 else payload.deadline
        if deadline is not None:
            now = server.services.kernel.now
            wait = (self._backlog() + size) * config.service_estimate / config.capacity
            if now + wait > deadline:
                self._shed(message, "deadline")
                return
        if len(self.waiting) >= config.queue_limit:
            victim = self._eviction_index(self._priority(message))
            if victim is None:
                self._shed(message, "capacity")
                return
            evicted = self.waiting.pop(victim)
            self._shed(evicted, "evicted")
        self.waiting.append(message)
        self.stats.queued += size
        # A higher-priority arrival may overtake a head batch that is too
        # wide for the free slots; give it a dispatch chance immediately.
        self.pump()

    # ------------------------------------------------------------------- drain

    def pump(self) -> None:
        """Dispatch eligible waiters; called after every completion."""
        if self._pumping:
            return
        self._pumping = True
        try:
            server = self.server
            config = self.config
            while self.waiting:
                index = self._next_index()
                message = self.waiting[index]
                size = self._size(message)
                if server.in_flight + size > config.capacity:
                    break  # head-of-line needs more free slots
                del self.waiting[index]
                deadline = None if size > 1 else message.payload.deadline
                if deadline is not None:
                    now = server.services.kernel.now
                    if now + config.service_estimate > deadline:
                        self._shed(message, "deadline")
                        continue
                self.stats.admitted += size
                self._dispatch(message)
        finally:
            self._pumping = False

    # ----------------------------------------------------------------- helpers

    @staticmethod
    def _size(message: Message) -> int:
        payload = message.payload
        return len(payload.calls) if isinstance(payload, BatchInvocation) else 1

    @staticmethod
    def _priority(message: Message) -> int:
        payload = message.payload
        return 0 if isinstance(payload, BatchInvocation) else payload.priority

    def _backlog(self) -> int:
        return self.server.in_flight + sum(self._size(m) for m in self.waiting)

    def _next_index(self) -> int:
        """Highest priority wins; FIFO within a priority."""
        best = 0
        best_priority = self._priority(self.waiting[0])
        for i in range(1, len(self.waiting)):
            priority = self._priority(self.waiting[i])
            if priority > best_priority:
                best, best_priority = i, priority
        return best

    def _eviction_index(self, priority: int) -> int | None:
        """Youngest waiter with the strictly worst priority below ``priority``."""
        worst = None
        worst_priority = priority
        for i, message in enumerate(self.waiting):
            candidate = self._priority(message)
            if candidate < worst_priority or (
                worst is not None and candidate == worst_priority
            ):
                worst, worst_priority = i, candidate
        return worst

    def _dispatch(self, message: Message) -> None:
        if isinstance(message.payload, BatchInvocation):
            self.server._dispatch_batch(message)
        else:
            self.server._dispatch_request(message)

    def _shed(self, message: Message, reason: str) -> None:
        config = self.config
        retry_after = max(
            config.service_estimate,
            (self._backlog() + self._size(message))
            * config.service_estimate
            / config.capacity,
        )
        self.stats.shed[reason] = self.stats.shed.get(reason, 0) + self._size(message)
        self.server._shed_reply(message, retry_after, reason)
