"""FlowConfig: the single knob bundle of the flow-control subsystem.

Section 5's distributed-systems principle -- the number of requests to
any single component must not grow with system size -- is enforced
*structurally* by combining trees, caches and clones.  FlowConfig adds
the *dynamic* half: what happens when offered load exceeds a component's
capacity anyway.  Three cooperating mechanisms, all off by default:

* **admission control** (``capacity``/``queue_limit``): every
  ObjectServer of an admitted kind dispatches at most ``capacity``
  requests concurrently and queues at most ``queue_limit`` more; the
  rest are shed with a first-class :class:`~repro.errors.Overloaded`
  reply carrying a ``retry_after`` pushback hint.
* **credit-based backpressure** (``credit_window``): callers hold
  per-(LOID identity, address element) credit windows replenished by
  replies, bounding in-flight work toward any one component end-to-end.
* **request batching** (``batch_window``/``batch_limit``): runtimes that
  opt methods in (binding agents for GetBinding, clone routers for
  GetClonePool/CloneEpoch) coalesce compatible calls inside one
  simulated-time window into a single upstream message with fan-out
  replies -- the combining tree, made real on the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.metrics.counters import ComponentKind


@dataclass(frozen=True)
class FlowConfig:
    """Immutable flow-control settings, shared via ``SystemServices.flow``."""

    #: Max concurrently-dispatched requests per ObjectServer; ``None``
    #: disables admission control entirely.
    capacity: Optional[int] = None
    #: Bounded wait queue behind the capacity; 0 = shed on a full server.
    queue_limit: int = 0
    #: Estimated per-request service time (simulated ms); drives the
    #: ``retry_after`` pushback hint and the hopeless-deadline check.
    service_estimate: float = 1.0
    #: Component kinds admission control applies to; ``None`` = all kinds.
    #: Experiments typically restrict it to ``{ComponentKind.APPLICATION}``
    #: so bootstrap and infrastructure traffic stay unthrottled.
    admit_kinds: Optional[FrozenSet[ComponentKind]] = None
    #: Caller-side credits per (LOID identity, address element); ``None``
    #: disables credit windows.
    credit_window: Optional[int] = None
    #: Simulated-ms coalescing window for batched methods; 0 disables
    #: batching.  Methods still have to be opted in per runtime via
    #: ``LegionRuntime.enable_batching`` (or ``batch_methods`` below).
    batch_window: float = 0.0
    #: Max calls coalesced into one upstream message (flushes early).
    batch_limit: int = 16
    #: Methods every runtime batches without an explicit opt-in.
    batch_methods: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ValueError("capacity must be >= 1 (or None to disable)")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if self.service_estimate <= 0.0:
            raise ValueError("service_estimate must be > 0")
        if self.credit_window is not None and self.credit_window < 1:
            raise ValueError("credit_window must be >= 1 (or None to disable)")
        if self.batch_window < 0.0:
            raise ValueError("batch_window must be >= 0")
        if self.batch_limit < 2:
            raise ValueError("batch_limit must be >= 2")

    def admits(self, kind: ComponentKind) -> bool:
        """True when admission control governs servers of ``kind``."""
        if self.capacity is None:
            return False
        return self.admit_kinds is None or kind in self.admit_kinds
