"""Request batching: coalesce compatible calls into one upstream message.

The paper's combining tree bounds fan-in structurally: each binding-agent
tier absorbs its children's queries.  Batching makes the combining real
on the data plane: when a runtime opts a method in (binding agents for
GetBinding, clone-pool routers for GetClonePool/CloneEpoch -- idempotent
metadata reads), calls issued within one simulated-time window toward
the same (element, target, method) ride a single wire REQUEST whose
reply fans back out to every caller.

A :class:`BatchInvocation` quacks enough like a MethodInvocation
(``method``, ``env``, ``arity``) that the runtime's send path handles it
unchanged; the server unpacks it into per-call dispatches and combines
the per-call MethodResults into one tuple-valued reply.  One wire
message per batch means one requests_sent, one timeout deadline, one
settlement -- a whole-batch delivery failure or shed fails every member
with the same exception, and each member's invoke retries on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.method import MethodInvocation, MethodResult
from repro.naming.loid import LOID
from repro.simkernel.futures import SimFuture


@dataclass(frozen=True, slots=True)
class BatchInvocation:
    """The payload of one coalesced upstream REQUEST."""

    target: LOID
    method: str
    calls: Tuple[MethodInvocation, ...]

    @property
    def env(self):
        """First member's environment (parents the wire request's span)."""
        return self.calls[0].env

    @property
    def arity(self) -> int:
        """Members in the batch (diagnostics; dispatch unpacks per call)."""
        return len(self.calls)

    def __str__(self) -> str:
        return f"{self.target}.{self.method}[x{len(self.calls)}]"


class _OpenBatch:
    """Calls collected for one (element, target identity, method) key."""

    __slots__ = ("element", "target", "timeout", "entries")

    def __init__(self, element, target, timeout) -> None:
        self.element = element
        self.target = target
        self.timeout = timeout
        self.entries: List[Tuple[MethodInvocation, SimFuture]] = []


class RequestBatcher:
    """Per-runtime coalescing of opted-in methods (see module docstring)."""

    __slots__ = ("runtime", "window", "limit", "methods", "_open", "batches_sent", "calls_batched")

    def __init__(self, runtime, window: float, limit: int, methods) -> None:
        self.runtime = runtime
        self.window = window
        self.limit = limit
        self.methods = set(methods)
        self._open: Dict[Tuple, _OpenBatch] = {}
        self.batches_sent = 0
        self.calls_batched = 0

    def submit(
        self, element, invocation: MethodInvocation, timeout: Optional[float]
    ) -> SimFuture:
        """Queue one call; returns a future resolving to its MethodResult."""
        key = (element, invocation.target.identity, invocation.method)
        fut = SimFuture("batched " + invocation.method)
        batch = self._open.get(key)
        if batch is None:
            batch = _OpenBatch(element, invocation.target, timeout)
            self._open[key] = batch
            batch.entries.append((invocation, fut))
            self.runtime.kernel.schedule(self.window, self._flush_key, key)
        else:
            batch.entries.append((invocation, fut))
            if len(batch.entries) >= self.limit:
                del self._open[key]
                self._flush(batch)
        return fut

    def _flush_key(self, key) -> None:
        batch = self._open.pop(key, None)
        if batch is not None:
            self._flush(batch)

    def _flush(self, batch: _OpenBatch) -> None:
        runtime = self.runtime
        entries = batch.entries
        if len(entries) == 1:
            # Nothing coalesced inside the window: degrade to a plain
            # request so single calls cost one message, not a wrapper.
            invocation, fut = entries[0]
            wire = runtime.send_request(batch.element, invocation, batch.timeout)
            wire.add_done_callback(lambda settled: self._settle_one(settled, fut))
            return
        self.batches_sent += 1
        self.calls_batched += len(entries)
        payload = BatchInvocation(
            batch.target, entries[0][0].method, tuple(inv for inv, _f in entries)
        )
        tracer = runtime.services.tracer
        if tracer is not None and tracer.active:
            tracer.instant(
                "batch " + payload.method,
                "batch",
                parent=payload.env.trace,
                component=runtime.component_label,
                n=len(entries),
            )
        wire = runtime.send_request(batch.element, payload, batch.timeout)
        wire.add_done_callback(lambda settled: self._settle(settled, entries))

    @staticmethod
    def _settle_one(wire: SimFuture, fut: SimFuture) -> None:
        if fut.done():
            return
        if wire.failed():
            fut.set_exception(wire.exception())
        else:
            fut.set_result(wire.result())

    @staticmethod
    def _settle(wire: SimFuture, entries) -> None:
        """Fan the combined reply (or the shared failure) back out."""
        if wire.failed():
            exc = wire.exception()
            for _invocation, fut in entries:
                if not fut.done():
                    fut.set_exception(exc)
            return
        combined: MethodResult = wire.result()
        if not combined.ok:
            # The whole batch was refused (e.g. shed Overloaded): every
            # member fails with the reconstructed remote error.
            try:
                combined.unwrap()
            except Exception as exc:  # noqa: BLE001 - re-fanned to members
                for _invocation, fut in entries:
                    if not fut.done():
                        fut.set_exception(exc)
            return
        for (_invocation, fut), result in zip(entries, combined.value, strict=True):
            if not fut.done():
                fut.set_result(result)
