"""Per-component request counters.

A *component* is one Legion object playing an infrastructure role: a class
object, LegionClass itself, a Binding Agent, a Magistrate, a Host Object.
Counters are keyed by (kind, name) so experiments can ask questions like
"what is the maximum request count over all binding agents?" or "how many
requests did LegionClass itself serve during the measurement phase?".
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class ComponentKind(enum.Enum):
    """Infrastructure roles whose load the paper reasons about."""

    LEGION_CLASS = "legion-class"      # the single logical LegionClass object
    CLASS_OBJECT = "class-object"      # ordinary class objects
    BINDING_AGENT = "binding-agent"
    MAGISTRATE = "magistrate"
    HOST_OBJECT = "host-object"
    SCHEDULER = "scheduler"
    APPLICATION = "application"        # user-level objects (not infrastructure)
    OTHER = "other"


@dataclass(frozen=True)
class ComponentId:
    """Identity of one counted component."""

    kind: ComponentKind
    name: str

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.name}"


class MetricsRegistry:
    """Central counter store; one per LegionSystem.

    ``incr(component, event)`` bumps a named event counter; ``requests``
    is the conventional event name every ObjectServer uses for an incoming
    REQUEST, so the scalability experiments have a uniform metric.
    """

    REQUESTS = "requests"
    #: Conventional event name for requests shed by admission control
    #: (repro.flow): counted *instead of* REQUESTS, never both, so
    #: ``requests`` keeps meaning "admitted into dispatch".
    SHED = "shed"

    def __init__(self) -> None:
        self._counts: Dict[ComponentId, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    # -- writing ---------------------------------------------------------------

    def incr(self, component: ComponentId, event: str, amount: int = 1) -> None:
        """Add ``amount`` to the component's ``event`` counter."""
        self._counts[component][event] += amount

    def reset(self) -> None:
        """Zero everything (between warm-up and measurement phases)."""
        self._counts.clear()

    # -- reading ---------------------------------------------------------------

    def get(self, component: ComponentId, event: str = REQUESTS) -> int:
        """The counter value (0 if the component never reported)."""
        return self._counts.get(component, {}).get(event, 0)

    def components(self, kind: Optional[ComponentKind] = None) -> List[ComponentId]:
        """All known components, optionally filtered by kind."""
        return sorted(
            (c for c in self._counts if kind is None or c.kind == kind),
            key=str,
        )

    def totals_by_kind(self, event: str = REQUESTS) -> Dict[ComponentKind, int]:
        """Sum of ``event`` over all components of each kind."""
        out: Dict[ComponentKind, int] = defaultdict(int)
        for comp, events in self._counts.items():
            out[comp.kind] += events.get(event, 0)
        return dict(out)

    def max_by_kind(self, kind: ComponentKind, event: str = REQUESTS) -> int:
        """The *maximum* ``event`` count over components of ``kind``.

        This is the paper's bottleneck metric: a kind scales if its max
        per-component load stays bounded as the system grows.
        """
        loads = [
            events.get(event, 0)
            for comp, events in self._counts.items()
            if comp.kind == kind
        ]
        return max(loads, default=0)

    def loads(self, kind: ComponentKind, event: str = REQUESTS) -> Dict[str, int]:
        """Per-component ``event`` counts for one kind, keyed by name."""
        return {
            comp.name: events.get(event, 0)
            for comp, events in self._counts.items()
            if comp.kind == kind
        }

    def labelled_counts(self, event: str = REQUESTS) -> Dict[str, int]:
        """All ``event`` counts keyed by the "kind:name" component label.

        The labels are exactly the ``component`` strings causal-trace
        spans carry, so a trace-derived load ledger can be reconciled
        against these counters entry by entry (see repro.trace.audit).
        """
        return {
            str(comp): events.get(event, 0)
            for comp, events in self._counts.items()
            if events.get(event, 0)
        }

    def snapshot(
        self, kind: Optional[ComponentKind] = None, event: str = REQUESTS
    ) -> Dict[str, int]:
        """A point-in-time copy of ``event`` counts for delta computation.

        Keyed by component name when ``kind`` is given, by the full
        "kind:name" label otherwise.  The autoscaler's LoadMonitor diffs
        consecutive snapshots to turn cumulative counters into rates.
        """
        if kind is not None:
            return self.loads(kind, event)
        return {
            str(comp): events.get(event, 0)
            for comp, events in self._counts.items()
        }

    def top(
        self, n: int = 10, event: str = REQUESTS, kind: Optional[ComponentKind] = None
    ) -> List[Tuple[ComponentId, int]]:
        """The ``n`` most-loaded components (the would-be bottlenecks)."""
        items = [
            (comp, events.get(event, 0))
            for comp, events in self._counts.items()
            if kind is None or comp.kind == kind
        ]
        items.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return items[:n]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry components={len(self._counts)}>"
