"""Request accounting for the Section 5 scalability experiments.

The paper's scalability criterion is the "distributed systems principle":
"the number of requests to any particular system component must not be an
increasing function of the number of hosts in the system" (section 5.2).
Verifying that requires counting requests *per component*; this package is
that bookkeeping.  Every ObjectServer increments its component's counter on
each request it receives, and experiments read per-component loads, maxima,
and slopes across system-size sweeps.
"""

from repro.metrics.counters import ComponentKind, MetricsRegistry
from repro.metrics.recorder import SeriesRecorder

__all__ = ["ComponentKind", "MetricsRegistry", "SeriesRecorder"]
