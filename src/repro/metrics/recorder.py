"""Time-series and sweep-result recording for experiments.

:class:`SeriesRecorder` accumulates (x, series → value) rows from a
parameter sweep and renders them as the aligned text tables the benchmark
harness prints -- the reproduction's analogue of the paper's would-be
results tables.  Slope estimation (ordinary least squares on log-log or
linear axes) backs the "not an increasing function of system size" checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SeriesRecorder:
    """Rows of sweep results: one x value, many named series."""

    x_label: str = "x"
    _rows: List[Tuple[float, Dict[str, float]]] = field(default_factory=list)

    def add(self, x: float, **values: float) -> None:
        """Record one sweep point."""
        self._rows.append((float(x), {k: float(v) for k, v in values.items()}))

    @property
    def xs(self) -> List[float]:
        """The sweep axis, in insertion order."""
        return [x for x, _ in self._rows]

    def series_names(self) -> List[str]:
        """All series names seen, in first-appearance order."""
        names: List[str] = []
        for _, values in self._rows:
            for name in values:
                if name not in names:
                    names.append(name)
        return names

    def series(self, name: str) -> List[Optional[float]]:
        """One series aligned to :attr:`xs` (None where missing)."""
        return [values.get(name) for _, values in self._rows]

    # -- analysis ---------------------------------------------------------------

    def slope(self, name: str, log_log: bool = False) -> float:
        """OLS slope of ``name`` vs x (optionally on log-log axes).

        On log-log axes the slope is the growth *exponent*: ~0 means the
        series is flat in system size (the distributed-systems-principle
        pass condition), ~1 means linear growth (a bottleneck).

        Log-log handling of awkward values: points at ``x <= 0`` have no
        log image and are *skipped* (a sweep may legitimately start at 0);
        zero ``y`` values are clamped to a tiny positive floor, so an
        all-zero series fits as flat instead of blowing up; negative ``y``
        counts indicate a recording bug and raise.
        """
        pts = [
            (x, v)
            for (x, values), v in zip(self._rows, self.series(name), strict=True)
            if v is not None
        ]
        if log_log:
            negative = [(x, v) for x, v in pts if v < 0]
            if negative:
                raise ValueError(
                    f"log-log slope of {name!r}: negative value "
                    f"{negative[0][1]} at x={negative[0][0]}"
                )
            dropped = len(pts)
            pts = [(x, v) for x, v in pts if x > 0]
            dropped -= len(pts)
        if len(pts) < 2:
            extra = f" ({dropped} point(s) at x<=0 dropped)" if log_log and dropped else ""
            raise ValueError(
                f"need >= 2 points to fit a slope for {name!r}, "
                f"have {len(pts)}{extra}"
            )
        xs = [float(p[0]) for p in pts]
        ys = [float(p[1]) for p in pts]
        if log_log:
            xs = [math.log(x) for x in xs]
            ys = [math.log(max(y, 1e-12)) for y in ys]
        # Ordinary least squares, closed form.  Pure Python keeps the
        # core reproduction numpy-free (numpy is the ``repro[mega]``
        # extra, needed only by the columnar mega-scale backend).
        n = len(xs)
        mx = sum(xs) / n
        my = sum(ys) / n
        denom = sum((x - mx) ** 2 for x in xs)
        if denom == 0.0:
            raise ValueError("slope: all x values coincide after transform")
        return sum((x - mx) * (y - my) for x, y in zip(xs, ys, strict=True)) / denom

    def ratio(self, name: str) -> float:
        """last/first value of a series (coarse growth factor)."""
        values = [v for v in self.series(name) if v is not None]
        if len(values) < 2:
            raise ValueError(f"need >= 2 points for a ratio of {name!r}")
        first = values[0]
        return values[-1] / first if first else math.inf

    # -- rendering ----------------------------------------------------------------

    def to_table(self, title: str = "", float_fmt: str = "{:.2f}") -> str:
        """An aligned text table of all rows and series."""
        names = self.series_names()
        header = [self.x_label] + names
        rows: List[List[str]] = []
        for x, values in self._rows:
            row = [self._fmt(x, float_fmt)]
            for name in names:
                v = values.get(name)
                row.append("-" if v is None else self._fmt(v, float_fmt))
            rows.append(row)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = []
        if title:
            lines.append(title)
        lines.append(
            "  ".join(h.rjust(w) for h, w in zip(header, widths, strict=True))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths, strict=True))
            )
        return "\n".join(lines)

    @staticmethod
    def _fmt(value: float, float_fmt: str) -> str:
        if float(value).is_integer() and abs(value) < 1e15:
            return str(int(value))
        return float_fmt.format(value)

    def __len__(self) -> int:
        return len(self._rows)
