"""SystemServices: the ambient substrate every Legion object shares.

A real Legion deployment gives every object access to the host OS's
communication facilities, the well-known core class objects, and the
implementation binaries on disk.  In the reproduction those ambient
facilities are gathered in one :class:`SystemServices` value that the
bootstrap procedure builds and threads through object activation:

* the simulation kernel and network,
* the system secret (public-key derivation, section 3.2),
* the implementation registry (name → factory; the simulated analogue of
  "an executable program, the name of an executable", section 4.2),
* well-known LOIDs of the core Abstract class objects (section 2.1.3),
* the metrics registry and relation graph used by experiments and tests.

SystemServices contains *no policy* and makes *no decisions*; it is pure
plumbing, so sharing one instance between all objects does not violate the
address-space-disjoint object model the simulation enforces at the message
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import BootstrapError
from repro.metrics.counters import MetricsRegistry
from repro.naming.loid import LOID
from repro.net.network import Network
from repro.simkernel.kernel import SimKernel
from repro.simkernel.rng import RngStreams

ImplFactory = Callable[..., Any]


class ImplRegistry:
    """Name → implementation-factory map (the 'executables on disk').

    An Object Persistent Representation names its implementation by
    factory name; activation looks the factory up here and calls it with
    the OPR's stored init arguments.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, ImplFactory] = {}

    def register(self, name: str, factory: ImplFactory, replace: bool = False) -> None:
        """Publish a factory under ``name``."""
        if name in self._factories and not replace:
            raise BootstrapError(f"implementation {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str, /, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the implementation registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise BootstrapError(f"no implementation registered as {name!r}") from None
        return factory(*args, **kwargs)

    def get(self, name: str) -> Optional[ImplFactory]:
        """The factory registered under ``name``, or None."""
        return self._factories.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def names(self):
        """Registered factory names, sorted."""
        return sorted(self._factories)


@dataclass
class SystemServices:
    """The shared substrate bundle (see module docstring)."""

    kernel: SimKernel
    network: Network
    rng: RngStreams
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    secret: int = 0x1E610
    #: Deadline applied to every request that does not set its own (in
    #: simulated ms).  Far above any legitimate round trip (WAN RTT is
    #: ~80 ms and even activation chains finish well under a second), so
    #: it never fires spuriously; its job is turning silently lost
    #: messages into InvocationTimeout (and thence refresh/retry) instead
    #: of a hang.  Kept modest because timeouts nest across hops.
    default_invocation_timeout: float = 2_000.0
    impls: ImplRegistry = field(default_factory=ImplRegistry)
    #: Well-known core objects by role name ("LegionClass", "LegionHost", ...).
    well_known: Dict[str, LOID] = field(default_factory=dict)
    #: Bindings of the core objects; seeded into every new object's binding
    #: cache at activation (the simulated analogue of compiled-in addresses
    #: of well-known services).
    core_bindings: Dict[str, Any] = field(default_factory=dict)
    #: The Binding Agent newly activated objects are configured with, unless
    #: their creator overrides it.  "The persistent state of each Legion
    #: object contains the Object Address of its Binding Agent" (3.6).
    default_binding_agent: Any = None
    #: Lazily-imported relation graph (set by bootstrap; avoids import cycle).
    relations: Any = None
    #: The causal-tracing recorder (:class:`repro.trace.SpanRecorder`), or
    #: ``None`` when tracing is off.  Every instrumented hot path guards on
    #: ``tracer is not None and tracer.active`` -- the zero-overhead no-op
    #: mode -- so installing a recorder is the *only* cost switch.
    tracer: Any = None
    #: The chaos subsystem's :class:`repro.faults.FaultLog`, or ``None``
    #: outside fault experiments.  Recovery paths append *observed*
    #: incidents here so injected-vs-observed reconciliation works.
    fault_log: Any = None
    #: The flow-control configuration (:class:`repro.flow.FlowConfig`), or
    #: ``None`` for the historical unthrottled behaviour.  When set, new
    #: ObjectServers gain bounded admission queues, runtimes gain credit
    #: windows and (opt-in) request batching.  Like ``tracer``, every hot
    #: path guards on ``flow is None`` so the default costs nothing.
    flow: Any = None
    #: The geo-replication directory (:class:`repro.replication.ReplicaDirectory`),
    #: or ``None`` when the data plane is off.  When set, runtimes compile a
    #: locality-aware replica selector into their call path (FIRST groups are
    #: tried nearest-first by link class) and class objects gossip replica
    #: placement news to the per-site ReplicaCatalogs.  Installed once by
    #: ``repro.replication.enable_replication``; assignment bumps the epoch
    #: exactly once, so the compiled fast path never pays a per-call check.
    replication: Any = None
    #: Monotonic configuration epoch for the call-path compiler
    #: (:mod:`repro.core.callpath`).  Bumped automatically whenever
    #: ``tracer``, ``flow``, or ``replication`` is (re)assigned; compiled
    #: invoke/dispatch pipelines compare their stamped epoch against this
    #: one integer and recompile lazily when stale.
    callpath_epoch: int = 0

    def __setattr__(self, name: str, value: Any) -> None:
        object.__setattr__(self, name, value)
        if name in ("tracer", "flow", "replication"):
            # getattr-with-default: during dataclass __init__ the epoch
            # field has not been assigned yet when tracer/flow land.
            object.__setattr__(
                self, "callpath_epoch", getattr(self, "callpath_epoch", 0) + 1
            )

    def well_known_loid(self, role: str) -> LOID:
        """The LOID of a core object by role; raises if not bootstrapped."""
        try:
            return self.well_known[role]
        except KeyError:
            raise BootstrapError(
                f"core object {role!r} not registered; did bootstrap run?"
            ) from None
