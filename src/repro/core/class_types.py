"""The special Legion class types: Abstract, Private, Fixed (section 2.1.2).

"The creators of a Legion class may overload or redefine any of Create(),
Derive(), and InheritFrom() to be possibly empty member functions":

* **Abstract** -- empty Create(): no direct instances can exist;
* **Private** -- empty Derive(): no derived classes, just instances;
* **Fixed** -- empty InheritFrom(): inherits only from its superclass.

A class can combine flags (an Abstract *and* Fixed class is a pure
interface node of the hierarchy, like the core LegionHost).
"""

from __future__ import annotations

import enum

from repro.errors import (
    AbstractClassError,
    FixedClassError,
    PrivateClassError,
)


class ClassFlavor(enum.Flag):
    """Bit flags marking which class-mandatory functions are empty."""

    REGULAR = 0
    ABSTRACT = enum.auto()
    PRIVATE = enum.auto()
    FIXED = enum.auto()

    def check_create(self, class_name: str) -> None:
        """Raise if Create() is empty for this flavor."""
        if self & ClassFlavor.ABSTRACT:
            raise AbstractClassError(
                f"class {class_name} is Abstract: Create() is empty, "
                "no direct instances can exist"
            )

    def check_derive(self, class_name: str) -> None:
        """Raise if Derive() is empty for this flavor."""
        if self & ClassFlavor.PRIVATE:
            raise PrivateClassError(
                f"class {class_name} is Private: Derive() is empty, "
                "it can have no derived classes"
            )

    def check_inherit_from(self, class_name: str) -> None:
        """Raise if InheritFrom() is empty for this flavor."""
        if self & ClassFlavor.FIXED:
            raise FixedClassError(
                f"class {class_name} is Fixed: InheritFrom() is empty, "
                "it inherits only from its superclass"
            )

    def describe(self) -> str:
        """Human-readable flag list, e.g. ``"Abstract+Fixed"``."""
        if self is ClassFlavor.REGULAR:
            return "Regular"
        parts = []
        if self & ClassFlavor.ABSTRACT:
            parts.append("Abstract")
        if self & ClassFlavor.PRIVATE:
            parts.append("Private")
        if self & ClassFlavor.FIXED:
            parts.append("Fixed")
        return "+".join(parts)
