"""CompositeImpl: run-time composed instances (active multiple inheritance).

Paper section 2.1.1: "multiple inheritance in Legion is a two step process.
First, the class is created by calling Derive() ... Second, the composition
of future instances of the class is set via calls to the InheritFrom()
method ...  When the instances of the class are created via the Create()
method, their composition reflects the way the class was defined in the
inheritance process."

We make that composition literal: an instance of a class that inherits
from base classes is a :class:`CompositeImpl` wrapping an ordered chain of
part implementations -- its own first, then one per base, in InheritFrom()
order.  Method dispatch searches the chain; the first part exporting the
(name, arity) wins, so the class's own methods override inherited ones.
All parts share the composite's LOID, runtime, and services: they are one
Legion object.
"""

from __future__ import annotations

import pickle
from typing import Any, List, Optional

from repro.core.object_base import LegionObjectImpl, _Export
from repro.idl.interface import Interface
from repro.security.environment import CallEnvironment


class _BoundExport:
    """An export re-targeted at a specific part of the composite.

    Mimics the :class:`_Export` protocol the ObjectServer dispatches on
    (``signature``, ``fn``, ``wants_ctx``) but closes over the part, so
    ``fn(composite, *args)`` actually runs ``part_method(part, *args)``.
    """

    __slots__ = ("signature", "fn", "wants_ctx")

    def __init__(self, export: _Export, part: LegionObjectImpl) -> None:
        self.signature = export.signature
        self.wants_ctx = export.wants_ctx
        inner = export.fn

        def fn(_composite: LegionObjectImpl, *args: Any, **kwargs: Any) -> Any:
            return inner(part, *args, **kwargs)

        self.fn = fn


class CompositeImpl(LegionObjectImpl):
    """One Legion object assembled from an ordered chain of part impls.

    ``exposures`` optionally restricts which method *names* each part
    contributes (None = everything): the enforcement half of selective
    inheritance (the paper's "select the components that it wishes to
    inherit" footnote).  Object-mandatory methods are always exposed --
    an object cannot select away MayI/SaveState/etc.
    """

    #: Method names every Legion object must keep exporting.
    _ALWAYS_EXPOSED = frozenset(
        {"MayI", "Iam", "Ping", "GetInterface", "SaveState", "RestoreState"}
    )

    def __init__(
        self,
        parts: List[LegionObjectImpl],
        exposures: Optional[List[Optional[set]]] = None,
    ) -> None:
        if not parts:
            raise ValueError("a composite needs at least one part")
        self.parts = list(parts)
        if exposures is None:
            exposures = [None] * len(parts)
        if len(exposures) != len(parts):
            raise ValueError("exposures must align with parts")
        self.exposures: List[Optional[set]] = [
            None if e is None else set(e) for e in exposures
        ]
        # The composite's policy is its primary part's policy.
        self.mayi_policy = self.parts[0].mayi_policy

    def _exposes(self, index: int, name: str) -> bool:
        allowed = self.exposures[index]
        return (
            allowed is None
            or name in allowed
            or name in self._ALWAYS_EXPOSED
        )

    #: Methods whose wire-level behaviour must aggregate over the whole
    #: composite rather than any single part: interface introspection and
    #: state capture.  Routed to the composite's own implementations.
    _COMPOSITE_OWNED = frozenset(
        {
            ("GetInterface", 0),
            ("SaveState", 0),
            ("RestoreState", 1),
            ("MayI", 1),
            ("Iam", 1),
        }
    )

    # -- dispatch ------------------------------------------------------------

    def find_export(self, method: str, arity: int) -> Optional[Any]:
        """First part (chain order) exposing (method, arity) wins."""
        if (method, arity) in self._COMPOSITE_OWNED:
            # e.g. a remote SaveState() must capture every part's state,
            # not just the first part's.
            return super().find_export(method, arity)
        for index, part in enumerate(self.parts):
            if not self._exposes(index, method):
                continue
            export = type(part).exports().get((method, arity))
            if export is not None:
                return _BoundExport(export, part)
        # Fall back to methods defined on CompositeImpl itself (none extra
        # today, but keeps the contract of the base class).
        return super().find_export(method, arity)

    def get_interface(self) -> Interface:
        """The union of the parts' exposed interfaces."""
        merged = type(self.parts[0]).exported_interface()
        if self.exposures[0] is not None:
            merged = merged.restricted_to(
                self.exposures[0] | self._ALWAYS_EXPOSED
            )
        for index, part in enumerate(self.parts[1:], start=1):
            contribution = type(part).exported_interface()
            if self.exposures[index] is not None:
                contribution = contribution.restricted_to(
                    self.exposures[index] | self._ALWAYS_EXPOSED
                )
            merged = merged.merged_with(contribution)
        return merged

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        """Primary part's policy governs the whole composite."""
        return self.parts[0].may_i(method, env)

    # -- wiring --------------------------------------------------------------------

    def on_activated(self) -> None:
        """Wire every part with the shared identity and runtime."""
        for part in self.parts:
            part.loid = self.loid
            part.runtime = self.runtime
            part.services = self.services
            part.server = getattr(self, "server", None)  # type: ignore[attr-defined]
            part.on_activated()

    def on_deactivating(self) -> None:
        for part in self.parts:
            part.on_deactivating()

    def handle_event(self, payload: Any, source: Any) -> None:
        """Events go to the primary part (override by part order)."""
        self.parts[0].handle_event(payload, source)

    # -- persistence -------------------------------------------------------------------

    def save_state(self) -> bytes:
        """Concatenate each part's state, preserving chain order."""
        return pickle.dumps(
            [part.save_state() for part in self.parts],
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def restore_state(self, blob: bytes) -> None:
        """Inverse of :meth:`save_state`; chain shapes must match."""
        blobs = pickle.loads(blob)
        for part, part_blob in zip(self.parts, blobs, strict=True):
            part.restore_state(part_blob)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "+".join(type(p).__name__ for p in self.parts)
        return f"<CompositeImpl {self.loid} [{names}]>"
