"""Method invocation as data.

"Legion is an object-oriented system comprised of independent, address
space disjoint objects that communicate with one another via method
invocation.  Method calls are non-blocking and may be accepted in any
order by the called object." (paper section 2)

A :class:`MethodInvocation` is the payload of a REQUEST message: method
name, positional arguments, and the (RA, SA, CA) call environment.  A
:class:`MethodResult` is the payload of the REPLY: either a value or a
marshalled error.  Errors cross the network as (type-name, message) pairs
and are reconstructed as the closest :class:`~repro.errors.RemoteError`
subclass at the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro import errors
from repro.naming.loid import LOID
from repro.security.environment import CallEnvironment

#: Error type names that re-raise as themselves at the caller.
_REMOTE_ERROR_TYPES = {
    "MethodNotFound": errors.MethodNotFound,
    "SecurityDenied": errors.SecurityDenied,
    "RequestRefused": errors.RequestRefused,
    "ObjectDeleted": errors.ObjectDeleted,
    "BindingNotFound": errors.BindingNotFound,
    "UnknownObject": errors.UnknownObject,
    "AbstractClassError": errors.AbstractClassError,
    "PrivateClassError": errors.PrivateClassError,
    "FixedClassError": errors.FixedClassError,
    "NoCapacity": errors.NoCapacity,
    "HostError": errors.HostError,
    "StorageError": errors.StorageError,
    "LifecycleError": errors.LifecycleError,
    "SchedulingError": errors.SchedulingError,
    "InterfaceError": errors.InterfaceError,
    "ObjectModelError": errors.ObjectModelError,
    "ReplicationError": errors.ReplicationError,
    "ContextError": errors.ContextError,
}


@dataclass(frozen=True, slots=True)
class MethodInvocation:
    """One non-blocking method call travelling to a target object."""

    target: LOID
    method: str
    args: Tuple[Any, ...]
    env: CallEnvironment
    #: Admission-control metadata (repro.flow).  ``priority`` breaks ties
    #: when a bounded server queue must shed (higher wins); ``deadline``
    #: is the caller's absolute simulated-time deadline so a server can
    #: shed requests that are already hopeless instead of serving corpses.
    #: Both stay at their defaults when no FlowConfig is installed.
    priority: int = 0
    deadline: Optional[float] = None

    @property
    def arity(self) -> int:
        """Number of arguments; dispatch is by (method, arity)."""
        return len(self.args)

    def __str__(self) -> str:
        return f"{self.target}.{self.method}/{self.arity}"


@dataclass(frozen=True, slots=True)
class MethodResult:
    """The reply to an invocation: a value, or a marshalled error."""

    value: Any = None
    error_type: str = ""
    error_message: str = ""
    #: Structured side-channel for errors whose constructor needs more
    #: than a message: today only Overloaded's ``retry_after`` hint.
    error_detail: Any = None

    @property
    def ok(self) -> bool:
        """True when the invocation succeeded."""
        return not self.error_type

    @classmethod
    def success(cls, value: Any = None) -> "MethodResult":
        """A successful result."""
        return cls(value=value)

    @classmethod
    def failure(cls, exc: BaseException) -> "MethodResult":
        """Marshal an exception raised by the remote method."""
        return cls(
            value=None,
            error_type=type(exc).__name__,
            error_message=str(exc),
            error_detail=getattr(exc, "retry_after", None),
        )

    def unwrap(self) -> Any:
        """Return the value or raise the reconstructed remote error."""
        if self.ok:
            return self.value
        if self.error_type == "Overloaded":
            raise errors.Overloaded(
                self.error_message, retry_after=float(self.error_detail or 0.0)
            )
        exc_type = _REMOTE_ERROR_TYPES.get(self.error_type)
        if exc_type is not None:
            raise exc_type(self.error_message)
        raise errors.InvocationFailed(
            f"{self.error_type}: {self.error_message}", remote_type=self.error_type
        )


@dataclass
class InvocationContext:
    """Server-side context handed to method implementations.

    Methods that declare a keyword-only ``ctx`` parameter receive one of
    these; it carries the call environment (for policy decisions and for
    forwarding nested calls with a correct CA) plus the identities involved.
    """

    env: CallEnvironment
    target: LOID
    method: str

    def nested_env(self, self_loid: LOID) -> CallEnvironment:
        """Environment for calls this method makes on other objects."""
        return self.env.forwarded_by(self_loid)
