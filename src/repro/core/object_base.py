"""LegionObjectImpl: the base of every object implementation.

Implements the paper's LegionObject abstract class (section 2.1.3):
"LegionObject provides the full set of object-mandatory member functions
... all Legion objects are instances of classes that are eventually derived
from the class LegionObject, and thus they inherit all of the member
functions defined in LegionObject."

The object-mandatory member functions are MayI(), Iam(), Ping(),
GetInterface(), SaveState(), and RestoreState() (sections 2.1, 2.4, 3.1.1).

Exporting a method
------------------
Python methods become Legion member functions via the
:func:`legion_method` decorator, which attaches an IDL signature::

    class Counter(LegionObjectImpl):
        @legion_method("int Increment(int)")
        def increment(self, amount, *, ctx=None):
            self.value += amount
            return self.value

Dispatch is by (method name, arity).  A method may be a plain function
(returns its value) or a generator (it is run as a simulation process and
may ``yield`` futures -- this is how one Legion method awaits another
object's method without blocking its server).  Declaring a keyword-only
``ctx`` parameter opts in to receiving the :class:`InvocationContext`.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.idl.interface import Interface
from repro.idl.parser import parse_signature
from repro.idl.signature import MethodSignature
from repro.core.method import InvocationContext
from repro.naming.loid import LOID
from repro.security.environment import CallEnvironment
from repro.security.identity import Credentials
from repro.security.mayi import AllowAll, MayIPolicy


def legion_method(idl: str) -> Callable[[Callable], Callable]:
    """Export the decorated Python method with the given IDL signature."""
    signature = parse_signature(idl)

    def decorate(fn: Callable) -> Callable:
        fn._legion_signature = signature  # type: ignore[attr-defined]
        return fn

    return decorate


class _Export:
    """One exported method: signature + callable + ctx-awareness."""

    __slots__ = ("signature", "fn", "wants_ctx")

    def __init__(self, signature: MethodSignature, fn: Callable) -> None:
        self.signature = signature
        self.fn = fn
        params = inspect.signature(fn).parameters
        self.wants_ctx = "ctx" in params and params["ctx"].kind is inspect.Parameter.KEYWORD_ONLY


def _collect_exports(cls: type) -> Dict[Tuple[str, int], _Export]:
    """Walk the MRO gathering exported methods; subclasses override.

    A subclass may override an exported method *without* repeating the
    decorator: the override inherits the ancestor's signature (tracked by
    Python attribute name), exactly like ordinary Python overriding.
    """
    exports: Dict[Tuple[str, int], _Export] = {}
    signature_of_attr: Dict[str, MethodSignature] = {}
    for klass in reversed(cls.__mro__):
        for attr_name, attr in vars(klass).items():
            signature = getattr(attr, "_legion_signature", None)
            if signature is None:
                signature = signature_of_attr.get(attr_name)
                if signature is None or not callable(attr):
                    continue
            else:
                signature_of_attr[attr_name] = signature
            key = (signature.name, signature.arity)
            exports[key] = _Export(signature, attr)
    return exports


class LegionObjectImpl:
    """Base implementation class; see module docstring.

    Lifecycle hooks (all optional to override):

    * :meth:`save_state` / :meth:`restore_state` -- the mechanism
      magistrates use to build and interpret Object Persistent
      Representations (section 3.1.1).  The default (de)serialises the
      attribute dict returned by :meth:`persistent_attributes`.
    * :meth:`on_activated` -- called once the object is live on a host and
      its runtime is wired.
    * :meth:`on_deactivating` -- called just before the endpoint is torn
      down.
    * :meth:`handle_event` -- receives one-way EVENT messages.
    """

    #: Set by the ObjectServer when the object is activated.
    loid: LOID = None  # type: ignore[assignment]
    runtime: Any = None
    services: Any = None

    #: The object's MayI() policy; AllowAll is the paper's empty default.
    mayi_policy: MayIPolicy = AllowAll()

    _exports_cache: Dict[type, Dict[Tuple[str, int], _Export]] = {}

    # -- export machinery --------------------------------------------------------

    @classmethod
    def exports(cls) -> Dict[Tuple[str, int], _Export]:
        """The (name, arity) → export map for this implementation class."""
        cached = LegionObjectImpl._exports_cache.get(cls)
        if cached is None:
            cached = _collect_exports(cls)
            LegionObjectImpl._exports_cache[cls] = cached
        return cached

    @classmethod
    def exported_interface(cls, name: str = "") -> Interface:
        """The Interface implied by this class's exported methods."""
        return Interface(
            (e.signature for e in cls.exports().values()),
            name=name or cls.__name__,
        )

    def find_export(self, method: str, arity: int) -> Optional[_Export]:
        """The export handling (method, arity), or None."""
        return type(self).exports().get((method, arity))

    # -- security hooks -----------------------------------------------------------

    def may_i(self, method: str, env: CallEnvironment) -> bool:
        """The MayI() check run before every dispatch."""
        return self.mayi_policy.may_i(method, env)

    @legion_method("bool MayI(string)")
    def mayi_method(self, method_name: str, *, ctx: Optional[InvocationContext] = None) -> bool:
        """Wire-level MayI(): would ``method_name`` be admitted for the
        caller's environment?  Lets callers probe policy without tripping it."""
        env = ctx.env if ctx is not None else self.own_env()
        return self.may_i(method_name, env)

    @legion_method("credentials Iam(int)")
    def iam(self, challenge: int) -> Credentials:
        """Prove identity by binding our LOID to the challenge nonce."""
        secret = self.services.secret if self.services is not None else 0
        return Credentials.respond(self.loid, challenge, secret)

    # -- object-mandatory member functions ------------------------------------------

    @legion_method("string Ping()")
    def ping(self) -> str:
        """Liveness probe; also handy as a minimal round-trip for tests."""
        return "pong"

    @legion_method("interface GetInterface()")
    def get_interface(self) -> Interface:
        """The complete set of method signatures this object exports."""
        return type(self).exported_interface()

    @legion_method("int PendingDispatches()")
    def pending_dispatches(self) -> int:
        """Requests dispatched but not yet replied to, excluding this probe.

        The autoscaler's retirement drain polls this to know when a clone
        has finished its in-flight work (the probe itself is in flight
        while we answer, hence the ``- 1``).
        """
        server = getattr(self, "server", None)
        return max(0, getattr(server, "in_flight", 1) - 1)

    @legion_method("bytes SaveState()")
    def save_state_method(self) -> bytes:
        """Wire-level SaveState(): serialised persistent state."""
        return self.save_state()

    @legion_method("RestoreState(bytes)")
    def restore_state_method(self, blob: bytes) -> None:
        """Wire-level RestoreState()."""
        self.restore_state(blob)

    # -- persistence hooks ---------------------------------------------------------

    def persistent_attributes(self) -> List[str]:
        """Names of attributes captured by the default save_state().

        Subclasses list their durable fields here; the default is empty
        (a stateless object's OPR is just its factory reference).
        """
        return []

    def save_state(self) -> bytes:
        """Serialise durable state for an Object Persistent Representation."""
        import pickle

        state = {name: getattr(self, name) for name in self.persistent_attributes()}
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    def restore_state(self, blob: bytes) -> None:
        """Inverse of :meth:`save_state`."""
        import pickle

        state = pickle.loads(blob)
        for name, value in state.items():
            setattr(self, name, value)

    # -- lifecycle hooks -------------------------------------------------------------

    def on_activated(self) -> None:
        """Called once live: ``self.loid``, ``self.runtime`` are wired."""

    def on_deactivating(self) -> None:
        """Called before the endpoint is unregistered."""

    def handle_event(self, payload: Any, source: Any) -> None:
        """One-way EVENT messages land here (default: ignored)."""

    # -- conveniences -----------------------------------------------------------------

    def own_env(self) -> CallEnvironment:
        """A fresh call environment rooted at this object."""
        return CallEnvironment.originating(self.loid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.loid}>"


#: The object-mandatory interface (what LegionObject's instances export).
OBJECT_MANDATORY_INTERFACE = LegionObjectImpl.exported_interface("LegionObject")
