"""Class objects: the class-mandatory member functions (sections 2.1, 3.7).

"Each class object exports class-mandatory member functions to create new
instances (Create()) and subclasses (Derive()), to delete instances and
subclasses (Delete()), and to find instances and subclasses (GetBinding()).
A class object is responsible for assigning LOIDs to its instances and
subclasses upon their creation."

:class:`ClassObjectImpl` implements all of that, plus:

* the **logical table** of Fig. 16 (via :mod:`repro.core.table`), kept
  current by notification methods magistrates call on lifecycle events;
* **InheritFrom()** -- the active, run-time multiple-inheritance step that
  alters the composition (interface *and* implementation chain) of future
  instances;
* the **Abstract / Private / Fixed** class types (section 2.1.2);
* **cloning** (section 5.2.2): "the cloned class is derived from the
  heavily used class without changing the interface in any way.  New
  instantiation and derivation requests are passed to the cloned object,
  making it responsible for the new objects";
* the reflective field hooks ("objects may be given the opportunity by
  their class to directly manipulate these fields", section 3.7).

Class objects are themselves ordinary active Legion objects: creation and
derivation go through a Magistrate and a Host Object exactly like any
other object (section 4.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    BindingNotFound,
    DeliveryFailure,
    InvocationFailed,
    LegionError,
    NoCapacity,
    ObjectDeleted,
    ObjectModelError,
    RequestRefused,
    SchedulingError,
    UnknownObject,
)
from repro.core.class_types import ClassFlavor
from repro.core.method import InvocationContext
from repro.core.object_base import (
    LegionObjectImpl,
    OBJECT_MANDATORY_INTERFACE,
    legion_method,
)
from repro.core.table import LogicalTable, TableRow
from repro.idl.interface import Interface
from repro.naming.binding import Binding, NEVER_EXPIRES
from repro.naming.loid import LOID
from repro.persistence.opr import OPRecord
from repro.security.environment import CallEnvironment
from repro.simkernel.futures import SimFuture
from repro.simkernel.kernel import Timeout

#: Factory-registry name under which the class-object implementation itself
#: is registered; Derive() creates new class objects through it.
CLASS_OBJECT_FACTORY = "legion.class-object"

#: RetireClone() drain loop: poll the clone's PendingDispatches() every
#: ``RETIRE_POLL`` simulated ms, giving up after ``RETIRE_DRAIN_BUDGET``
#: (a crashed clone must not wedge the retirement forever).
RETIRE_POLL = 2.0
RETIRE_DRAIN_BUDGET = 200.0

#: Per-attempt timeout for seeding a fresh replica (SaveState +
#: RestoreState during AddReplica): generous enough for a wide-area
#: round trip plus a loaded server's queue.
SEED_TIMEOUT = 500.0


class ClassObjectImpl(LegionObjectImpl):
    """A Legion class object.  See module docstring."""

    def __init__(
        self,
        class_name: str,
        class_id: int,
        flavor: ClassFlavor = ClassFlavor.REGULAR,
        instance_factory: str = "",
        instance_init: Optional[Dict[str, Any]] = None,
        instance_interface: Optional[Interface] = None,
        superclass: Optional[LOID] = None,
        candidate_magistrates: Optional[List[LOID]] = None,
        scheduling_agent: Optional[LOID] = None,
        binding_ttl: Optional[float] = None,
        instance_component_kind: str = "application",
        base_chain: Optional[List[Tuple[str, Dict[str, Any]]]] = None,
        bases: Optional[List[LOID]] = None,
        next_sequence: int = 1,
        consistency: str = "primary-copy",
    ) -> None:
        self.class_name = class_name
        self.class_id = class_id
        if isinstance(flavor, int):  # OPR round-trips flags as ints
            flavor = ClassFlavor(flavor)
        self.flavor = flavor
        self.instance_factory = instance_factory
        self.instance_init = dict(instance_init or {})
        self.instance_interface = instance_interface or OBJECT_MANDATORY_INTERFACE
        self.superclass = superclass
        self.candidate_magistrates = (
            list(candidate_magistrates) if candidate_magistrates is not None else None
        )
        self.scheduling_agent = scheduling_agent
        self.binding_ttl = binding_ttl
        self.instance_component_kind = instance_component_kind
        #: Per-class consistency policy for replicated instances (the
        #: Multicomputer-Object-Store idea: mechanism chosen by access
        #: pattern, not one global policy).  A string key into
        #: :class:`repro.replication.ConsistencyPolicy`; purely advisory
        #: metadata here -- sessions read it via GetConsistencyPolicy().
        self.consistency = consistency
        #: Implementation chain contributed by InheritFrom() bases.
        self.base_chain: List[Tuple[str, Dict[str, Any]]] = list(base_chain or [])
        self.bases: List[LOID] = list(bases or [])
        self.table = LogicalTable()
        self._next_sequence = next_sequence
        self._magistrate_rr = 0
        #: loid identity -> in-flight AddReplica future: concurrent grows
        #: of one group coalesce (see :meth:`add_replica`).  Runtime-only
        #: state, deliberately not persistent.
        self._growing: Dict[Tuple[int, int], SimFuture] = {}
        #: Binding Agents subscribed to explicit invalidation news
        #: (section 4.1.4: "some classes may even attempt to reduce the
        #: number of stale bindings by explicitly propagating news of an
        #: object's migration or removal").
        self.invalidation_subscribers: List[Binding] = []
        #: Clones (section 5.2.2): bindings of classes now responsible for
        #: new creations; round-robin when non-empty.
        self.clones: List[Binding] = []
        self._clone_rr = 0
        #: Bumped whenever the clone pool changes membership or addresses;
        #: clients cache GetClonePool() results keyed by this epoch.
        self.clone_epoch = 0

    # ------------------------------------------------------------------ identity

    def persistent_attributes(self) -> List[str]:
        return [
            "class_name",
            "class_id",
            "instance_factory",
            "instance_init",
            "superclass",
            "candidate_magistrates",
            "scheduling_agent",
            "binding_ttl",
            "instance_component_kind",
            "consistency",
            "base_chain",
            "bases",
            "_next_sequence",
            "table",
            "clones",
            "_clone_rr",
            "clone_epoch",
        ]

    def _allocate_instance_loid(self) -> LOID:
        """Assign a fresh instance LOID: our class_id + a sequence number."""
        sequence = self._next_sequence
        self._next_sequence += 1
        return LOID.for_instance(self.class_id, sequence, self.services.secret)

    def _binding_for(self, loid: LOID, address) -> Binding:
        expires = (
            NEVER_EXPIRES
            if self.binding_ttl is None
            else self.services.kernel.now + self.binding_ttl
        )
        return Binding(loid, address, expires)

    # ------------------------------------------------------------ magistrate choice

    def _choose_magistrate(self, hints: Dict[str, Any], env: CallEnvironment):
        """Pick the Magistrate that will create/host a new object.

        "Selecting these two objects is a scheduling decision that is left
        up to the class, which may choose to employ the services of a
        Scheduling Agent.  Some classes may allow the creating object to
        suggest a Magistrate" (section 4.2).
        """
        hinted = hints.get("magistrate")
        if hinted is not None:
            if self.candidate_magistrates is not None and hinted not in self.candidate_magistrates:
                raise SchedulingError(
                    f"magistrate {hinted} is not a candidate for class {self.class_name}"
                )
            return hinted
        if self.scheduling_agent is not None:
            choice = yield from self.runtime.invoke(
                self.scheduling_agent,
                "ChooseMagistrate",
                self.loid,
                self.candidate_magistrates,
                env=env,
            )
            if choice is None:
                raise SchedulingError(
                    f"scheduling agent {self.scheduling_agent} found no magistrate "
                    f"for class {self.class_name}"
                )
            return choice
        if self.candidate_magistrates:
            self._magistrate_rr = (self._magistrate_rr + 1) % len(self.candidate_magistrates)
            return self.candidate_magistrates[self._magistrate_rr]
        raise SchedulingError(
            f"class {self.class_name} knows no magistrates "
            "(no hint, no scheduling agent, no candidates)"
        )

    # ------------------------------------------------------------------- Create

    @legion_method("binding Create()")
    def create_default(self, *, ctx: Optional[InvocationContext] = None):
        """Create() with no hints."""
        return self.create_with_hints({}, ctx=ctx)

    @legion_method("binding Create(hints)")
    def create_with_hints(self, hints: Dict[str, Any], *, ctx: Optional[InvocationContext] = None):
        """Create a new instance; returns its Binding.

        Recognised hints: ``magistrate`` (LOID suggestion), ``host`` (LOID
        of a Host Object in the magistrate's jurisdiction), ``init``
        (extra factory kwargs), ``no_delegate`` (bypass clone delegation,
        used internally and by tests).
        """
        self.flavor.check_create(self.class_name)
        env = ctx.nested_env(self.loid) if ctx else self.own_env()

        if self.clones and not hints.get("no_delegate"):
            # Section 5.2.2: pass new instantiation requests to a clone.
            clone = self.clones[self._clone_rr % len(self.clones)]
            self._clone_rr = (self._clone_rr + 1) % len(self.clones)
            binding = yield from self.runtime.invoke(
                clone.loid, "Create", hints, env=env
            )
            return binding

        if not self.instance_factory:
            raise ObjectModelError(
                f"class {self.class_name} has no instance implementation registered"
            )
        loid = self._allocate_instance_loid()
        magistrate = yield from self._choose_magistrate(hints, env)
        init = dict(self.instance_init)
        init.update(hints.get("init", {}))
        chain: List[Tuple[str, Dict[str, Any]]] = [(self.instance_factory, init)]
        chain.extend(self.base_chain)
        opr = OPRecord(
            loid=loid,
            class_loid=self.loid,
            factory_chain=chain,
            component_kind=self.instance_component_kind,
        )
        address = yield from self.runtime.invoke(
            magistrate, "CreateObject", opr, hints.get("host"), env=env
        )
        row = TableRow(
            loid=loid,
            object_address=address,
            current_magistrates=[magistrate],
            scheduling_agent=self.scheduling_agent,
            candidate_magistrates=(
                list(self.candidate_magistrates)
                if self.candidate_magistrates is not None
                else None
            ),
        )
        self.table.add(row)
        if self.services.relations is not None:
            self.services.relations.record_is_a(loid, self.loid)
        return self._binding_for(loid, address)

    @legion_method("binding CreateReplicated(int, string, int)")
    def create_replicated(
        self, n: int, semantic: str, k: int, *, ctx: Optional[InvocationContext] = None
    ):
        """Create one object implemented as ``n`` replica processes (4.3).

        "Replicating an object at the Legion level is a matter of creating
        an Object Address with multiple physical addresses in its list,
        assigning the address semantic appropriately, and binding the LOID
        of the object to this Object Address."  Replicas are spread
        round-robin over the candidate magistrates (and over hosts within
        each jurisdiction).  ``semantic`` is an
        :class:`~repro.net.address.AddressSemantic` value string.
        """
        from repro.net.address import AddressSemantic, ObjectAddress

        self.flavor.check_create(self.class_name)
        if n < 1:
            raise ObjectModelError(f"replica count must be >= 1, got {n}")
        if not self.instance_factory:
            raise ObjectModelError(
                f"class {self.class_name} has no instance implementation registered"
            )
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        loid = self._allocate_instance_loid()
        chain: List[Tuple[str, Dict[str, Any]]] = [
            (self.instance_factory, dict(self.instance_init))
        ]
        chain.extend(self.base_chain)
        opr = OPRecord(
            loid=loid,
            class_loid=self.loid,
            factory_chain=chain,
            component_kind=self.instance_component_kind,
        )
        elements = []
        magistrates_used: List[LOID] = []
        for _i in range(n):
            magistrate = yield from self._choose_magistrate({}, env)
            address = yield from self.runtime.invoke(
                magistrate, "CreateReplica", opr, None, env=env
            )
            elements.append(address.primary())
            if magistrate not in magistrates_used:
                magistrates_used.append(magistrate)
        combined = ObjectAddress.replicated(
            elements, semantic=AddressSemantic(semantic), k=k
        )
        row = TableRow(
            loid=loid,
            object_address=combined,
            current_magistrates=magistrates_used,
            scheduling_agent=self.scheduling_agent,
            candidate_magistrates=(
                list(self.candidate_magistrates)
                if self.candidate_magistrates is not None
                else None
            ),
            replica_want=n,
        )
        self.table.add(row)
        if self.services.relations is not None:
            self.services.relations.record_is_a(loid, self.loid)
        self._replication_news("group", loid, tuple(elements), want=n)
        return self._binding_for(loid, combined)

    @legion_method("binding ReportDeadReplica(LOID, element)")
    def report_dead_replica(self, loid: LOID, element, *, ctx: Optional[InvocationContext] = None):
        """Shrink a replica group after a member failed; returns the new
        binding (or raises BindingNotFound when no replica remains)."""
        row = self.table.find(loid)
        if row is None:
            raise UnknownObject(f"class {self.class_name} never created {loid}")
        if row.deleted:
            raise ObjectDeleted(f"{loid} was deleted")
        if row.object_address is None:
            raise BindingNotFound(f"{loid} has no current address", loid=loid)
        shrunk = row.object_address.without(element)
        self._replication_news("remove", loid, (element,))
        if shrunk is None:
            row.object_address = None
            raise BindingNotFound(
                f"last replica of {loid} reported dead", loid=loid
            )
        row.object_address = shrunk
        return self._binding_for(loid, shrunk)

    @legion_method("binding AddReplica(LOID)")
    def add_replica_default(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """AddReplica with no magistrate hint."""
        binding = yield from self.add_replica(loid, None, ctx=ctx)
        return binding

    @legion_method("binding AddReplica(LOID, LOID)")
    def add_replica(
        self, loid: LOID, magistrate_hint: Optional[LOID], *,
        ctx: Optional[InvocationContext] = None,
    ):
        """Grow a replica group by one member; returns the new binding.

        The repair half of section 4.3's replication story: the class
        re-instantiates the object's implementation chain through a
        magistrate's CreateReplica and appends the fresh element to the
        group address (semantic and k preserved).  The hinted magistrate
        is tried first (the repair service points it at the jurisdiction
        that lost a replica), then candidates not yet hosting the group,
        then the rest -- so regrowth prefers spreading.  The fresh
        process is seeded from a surviving member (object-mandatory
        SaveState/RestoreState) *before* it joins the group address, so
        an unseeded replica can never serve reads -- even if the caller
        times out while the grow completes server-side.

        Growth is serialised per group and capped at the row's recorded
        target size: every jurisdiction's repair sweep may report the
        same under-replicated group concurrently, and without the cap
        each racing AddReplica would append its own fresh member.
        Concurrent calls coalesce onto one in-flight grow; a call that
        arrives when the group is already at target is a no-op returning
        the current binding.
        """
        row = self.table.find(loid)
        if row is None:
            raise UnknownObject(f"class {self.class_name} never created {loid}")
        if row.deleted:
            raise ObjectDeleted(f"{loid} was deleted")
        if row.object_address is None:
            raise BindingNotFound(
                f"{loid} has no current address to grow", loid=loid
            )
        inflight = self._growing.get(loid.identity)
        if inflight is not None:
            binding = yield inflight
            return binding
        if 0 < row.replica_want <= len(row.object_address):
            return self._binding_for(loid, row.object_address)
        fut = SimFuture(f"grow {loid}")
        self._growing[loid.identity] = fut
        try:
            binding = yield from self._grow_replica(row, loid, magistrate_hint, ctx)
        except BaseException as exc:
            self._growing.pop(loid.identity, None)
            fut.set_exception(exc)
            raise
        self._growing.pop(loid.identity, None)
        fut.set_result(binding)
        return binding

    def _grow_replica(
        self, row, loid: LOID, magistrate_hint: Optional[LOID], ctx
    ):
        """The uncoalesced grow-by-one body behind :meth:`add_replica`."""
        from repro.net.address import ObjectAddress

        if not self.instance_factory:
            raise ObjectModelError(
                f"class {self.class_name} has no instance implementation registered"
            )
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        chain: List[Tuple[str, Dict[str, Any]]] = [
            (self.instance_factory, dict(self.instance_init))
        ]
        chain.extend(self.base_chain)
        opr = OPRecord(
            loid=loid,
            class_loid=self.loid,
            factory_chain=chain,
            component_kind=self.instance_component_kind,
        )
        pool: List[LOID] = []
        if magistrate_hint is not None:
            pool.append(magistrate_hint)
        candidates = list(self.candidate_magistrates or [])
        pool.extend(
            m for m in candidates
            if m not in pool and m not in row.current_magistrates
        )
        pool.extend(m for m in candidates if m not in pool)
        pool.extend(m for m in row.current_magistrates if m not in pool)
        last: Optional[BaseException] = None
        for magistrate in pool:
            try:
                address = yield from self.runtime.invoke(
                    magistrate, "CreateReplica", opr, None, env=env
                )
            except (NoCapacity, RequestRefused, DeliveryFailure, InvocationFailed) as exc:
                last = exc
                continue
            element = address.primary()
            seeded = yield from self._seed_replica(row, loid, element, env)
            if not seeded:
                # The new process exists but holds no state; it must not
                # join the group.  (It stays an orphan on its host -- out
                # of the address, nothing routes to it.)  A later sweep
                # retries once a source is reachable again.
                raise NoCapacity(
                    f"class {self.class_name} started a new replica of "
                    f"{loid} but no surviving member could seed it"
                )
            grown = ObjectAddress.replicated(
                list(row.object_address.elements) + [element],
                semantic=row.object_address.semantic,
                k=row.object_address.k,
            )
            row.object_address = grown
            if magistrate not in row.current_magistrates:
                row.current_magistrates.append(magistrate)
            binding = self._binding_for(loid, grown)
            self._propagate("add-binding", binding)
            self._replication_news("add", loid, (element,))
            return binding
        raise NoCapacity(
            f"class {self.class_name} could not grow the replica group of "
            f"{loid}: no magistrate accepted a new replica"
        ) from last

    def _seed_replica(self, row, loid: LOID, element, env):
        """Object-mandatory state transfer onto a fresh group member.

        SaveState from the nearest reachable current member (same-host
        before same-site before wide-area, measured from the new
        process), RestoreState onto ``element``.  Runs before the
        element joins the group address.  Returns False when no source
        yielded its state -- every member dead, partitioned away, or
        shedding under overload.
        """
        from repro.net.latency import LinkClass

        sources = list(row.object_address.elements)
        network = getattr(self.services, "network", None)
        if network is not None:
            rank = {
                LinkClass.SAME_HOST: 0,
                LinkClass.SAME_SITE: 1,
                LinkClass.WIDE_AREA: 2,
            }
            classify = network.latency.classify
            sources.sort(key=lambda s: rank[classify(element.host, s.host)])
        for source in sources:
            try:
                blob = yield from self.runtime.call_element(
                    source, loid, "SaveState", (), env, SEED_TIMEOUT, 0
                )
            except LegionError:
                continue  # dead, shedding, or partitioned: next source
            yield from self.runtime.call_element(
                element, loid, "RestoreState", (blob,), env, SEED_TIMEOUT, 0
            )
            return True
        return False

    @legion_method("string GetConsistencyPolicy()")
    def get_consistency_policy(self) -> str:
        """The per-class consistency policy key (repro.replication)."""
        return self.consistency

    def _replication_news(self, kind: str, loid: LOID, elements, want: int = 0) -> None:
        """One-way placement gossip to the per-jurisdiction ReplicaCatalogs.

        Fire-and-forget EVENTs grouped by the site each element lives on,
        so keeping the catalogs (and through them the global index)
        current costs no round trips on creation, growth, or shrink
        paths.  A no-op unless ``enable_replication`` installed the
        directory -- replication-off runs send nothing.
        """
        directory = getattr(self.services, "replication", None)
        runtime = getattr(self, "runtime", None)
        if directory is None or runtime is None or not elements:
            return
        site_of = self.services.network.latency.site_of
        by_site: Dict[Optional[str], List[Any]] = {}
        for element in elements:
            by_site.setdefault(site_of(element.host), []).append(element)
        for site in sorted(by_site, key=lambda s: (s is None, s or "")):
            catalog = directory.catalog_element(site)
            if catalog is None:
                continue
            runtime.send_event(
                catalog,
                ("replica-news", kind, loid, tuple(by_site[site]), want, self.loid),
            )

    # -------------------------------------------------------------------- Derive

    @legion_method("binding Derive(string)")
    def derive_named(self, name: str, *, ctx: Optional[InvocationContext] = None):
        """Derive(name) with default options."""
        return self.derive_with_options(name, {}, ctx=ctx)

    @legion_method("binding Derive(string, options)")
    def derive_with_options(
        self, name: str, options: Dict[str, Any], *, ctx: Optional[InvocationContext] = None
    ):
        """Create a subclass; returns the new class object's Binding.

        The new class inherits this class's instance interface, factory,
        implementation chain, candidate magistrates, and scheduling agent,
        each overridable through ``options`` (keys: ``instance_factory``,
        ``instance_init``, ``flavor``, ``candidate_magistrates``,
        ``scheduling_agent``, ``binding_ttl``, ``magistrate``, ``host``,
        ``instance_component_kind``, ``consistency``).
        """
        self.flavor.check_derive(self.class_name)
        env = ctx.nested_env(self.loid) if ctx else self.own_env()

        if self.clones and not options.get("no_delegate"):
            clone = self.clones[self._clone_rr % len(self.clones)]
            self._clone_rr = (self._clone_rr + 1) % len(self.clones)
            binding = yield from self.runtime.invoke(
                clone.loid, "Derive", name, options, env=env
            )
            return binding

        legion_class = self.services.well_known_loid("LegionClass")
        new_class_id = yield from self.runtime.invoke(
            legion_class, "AllocateClassID", self.loid, name, env=env
        )
        new_loid = LOID.for_class(new_class_id, self.services.secret)

        flavor = options.get("flavor", ClassFlavor.REGULAR)
        init = {
            "class_name": name,
            "class_id": new_class_id,
            "flavor": flavor.value if isinstance(flavor, ClassFlavor) else flavor,
            "instance_factory": options.get("instance_factory", self.instance_factory),
            "instance_init": options.get("instance_init", dict(self.instance_init)),
            "instance_interface": options.get(
                "instance_interface", self.instance_interface
            ),
            "superclass": self.loid,
            "candidate_magistrates": options.get(
                "candidate_magistrates",
                list(self.candidate_magistrates)
                if self.candidate_magistrates is not None
                else None,
            ),
            "scheduling_agent": options.get("scheduling_agent", self.scheduling_agent),
            "binding_ttl": options.get("binding_ttl", self.binding_ttl),
            "instance_component_kind": options.get(
                "instance_component_kind", self.instance_component_kind
            ),
            "consistency": options.get("consistency", self.consistency),
            "base_chain": list(self.base_chain),
            "bases": list(self.bases),
        }
        opr = OPRecord(
            loid=new_loid,
            class_loid=self.loid,
            factory_chain=[(CLASS_OBJECT_FACTORY, init)],
            component_kind="class-object",
        )
        magistrate = yield from self._choose_magistrate(options, env)
        address = yield from self.runtime.invoke(
            magistrate, "CreateObject", opr, options.get("host"), env=env
        )
        row = TableRow(
            loid=new_loid,
            object_address=address,
            current_magistrates=[magistrate],
            scheduling_agent=self.scheduling_agent,
            candidate_magistrates=(
                list(self.candidate_magistrates)
                if self.candidate_magistrates is not None
                else None
            ),
            is_subclass=True,
        )
        self.table.add(row)
        if self.services.relations is not None:
            self.services.relations.record_kind_of(new_loid, self.loid)
        return self._binding_for(new_loid, address)

    # --------------------------------------------------------------- InheritFrom

    @legion_method("InheritFrom(LOID)")
    def inherit_from(self, base: LOID, *, ctx: Optional[InvocationContext] = None):
        """Add a base class: merge its instance interface and impl chain.

        "Invoking InheritFrom() on an existing class object A, and passing
        the name of an existing class object B, causes A to inherit from
        B" -- an active, run-time process affecting *future* instances.
        """
        yield from self.inherit_from_selective(base, None, ctx=ctx)

    @legion_method("InheritFrom(LOID, list)")
    def inherit_from_selective(
        self,
        base: LOID,
        only: Optional[List[str]],
        *,
        ctx: Optional[InvocationContext] = None,
    ):
        """InheritFrom with component selection.

        The paper's footnote: "Legion may allow a class to select the
        components that it wishes to inherit from its superclass."  We
        support it for InheritFrom bases: ``only`` is a list of method
        names to take from the base (None means all).  The base's
        implementation chain is still spliced in -- the parts are one
        implementation -- but the selection is enforced at dispatch by an
        exposure filter recorded in the factory chain, so unselected
        methods neither appear in the interface nor execute.
        """
        self.flavor.check_inherit_from(self.class_name)
        if not base.is_class:
            raise ObjectModelError(f"InheritFrom target {base} is not a class object")
        if base.identity == self.loid.identity:
            raise ObjectModelError(f"class {self.class_name} cannot inherit from itself")
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        base_interface = yield from self.runtime.invoke(
            base, "GetInstanceInterface", env=env
        )
        base_spec = yield from self.runtime.invoke(
            base, "GetImplementationSpec", env=env
        )
        if only is not None:
            base_interface = base_interface.restricted_to(only)
        # Record the relation first: it validates against cycles.
        if self.services.relations is not None:
            self.services.relations.record_inherits_from(self.loid, base)
        self.instance_interface = self.instance_interface.merged_with(
            base_interface, name=self.class_name
        )
        known = {entry[0] for entry in self.base_chain}
        known.add(self.instance_factory)
        for factory, init in base_spec:
            if factory not in known:
                entry_init = dict(init)
                if only is not None:
                    entry_init["__expose__"] = list(only)
                self.base_chain.append((factory, entry_init))
                known.add(factory)
        if base not in self.bases:
            self.bases.append(base)

    # ------------------------------------------------------------------- Delete

    @legion_method("Delete(LOID)")
    def delete_object(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """Remove an instance or subclass from existence (section 3.8).

        Both Active and Inert copies are removed; later GetBinding()
        requests for the LOID report the deletion.
        """
        row = self.table.find(loid)
        if row is None:
            raise UnknownObject(f"class {self.class_name} never created {loid}")
        if row.deleted:
            return  # idempotent
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        for magistrate in list(row.current_magistrates):
            yield from self.runtime.invoke(magistrate, "Delete", loid, env=env)
        self.table.mark_deleted(loid)
        if self.services.relations is not None:
            self.services.relations.forget(loid)
        self._propagate("invalidate", loid)

    # ----------------------------------------------------------------- GetBinding

    @legion_method("binding GetBinding(LOID)")
    def get_binding(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """Find an instance/subclass: the class's side of section 4.1.2.

        Consults the logical table; if the Object Address field is NIL the
        class asks a Current Magistrate to Activate() the object -- so
        referring to an Inert object's LOID activates it.

        Overloading note: the paper's GetBinding(LOID) and
        GetBinding(binding) share a name and arity, so this method accepts
        either; a Binding argument means "this binding is stale, give me a
        fresh one" and is routed to :meth:`get_binding_stale`.
        """
        if isinstance(loid, Binding):
            result = yield from self.get_binding_stale(loid, ctx=ctx)
            return result
        row = self.table.find(loid)
        if row is None:
            raise UnknownObject(f"class {self.class_name} never created {loid}")
        if row.deleted:
            raise ObjectDeleted(f"{loid} was deleted")
        if row.object_address is not None:
            return self._binding_for(loid, row.object_address)
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        for magistrate in list(row.current_magistrates):
            try:
                address = yield from self.runtime.invoke(
                    magistrate, "Activate", loid, env=env
                )
            except (RequestRefused, DeliveryFailure, InvocationFailed):
                # Refused us, or we cannot reach it (partition, loss, the
                # magistrate's own hop failing): try the next magistrate;
                # the BindingNotFound below is retryable for the caller.
                continue
            row.object_address = address
            return self._binding_for(loid, address)
        raise BindingNotFound(
            f"class {self.class_name} cannot produce a binding for {loid}: "
            f"no Object Address and no magistrate could activate it",
            loid=loid,
        )

    @legion_method("binding GetBindingStale(binding)")
    def get_binding_stale(self, stale: Binding, *, ctx: Optional[InvocationContext] = None):
        """GetBinding(binding): the caller's binding didn't work.

        If our table still holds the same address, it is stale knowledge:
        ask a Current Magistrate to *recover* the object -- the magistrate
        probes the recorded host and, if the process is gone, reactivates
        it from its persisted OPR on a surviving host (state preserved).
        A plain Activate() would trust the magistrate's Active record and
        hand the dead address straight back.
        """
        row = self.table.find(stale.loid)
        if row is None:
            raise UnknownObject(f"class {self.class_name} never created {stale.loid}")
        if row.deleted:
            raise ObjectDeleted(f"{stale.loid} was deleted")
        if row.object_address == stale.address:
            if row.object_address is not None and (
                row.replicated or len(row.object_address) > 1
            ):
                # A replica group: a partial failure does not invalidate
                # the group address -- the semantic (FIRST/ANY/K-of-N)
                # handles it, and ReportDeadReplica() shrinks the group.
                # The flag matters at group size 1: magistrates refuse to
                # recover replica groups (the class owns the address), so
                # clearing the row here would lose the object forever.
                return self._binding_for(stale.loid, row.object_address)
            if not row.current_magistrates:
                # An out-of-band object (bootstrap host/magistrate/agent):
                # no magistrate could ever re-activate it, so clearing the
                # address would lose the object forever.  The caller's
                # failure may be transient (timeout, partition); keep the
                # address and let the caller's retry budget decide.
                return self._binding_for(stale.loid, row.object_address)
            env = ctx.nested_env(self.loid) if ctx else self.own_env()
            row.object_address = None
            for magistrate in list(row.current_magistrates):
                try:
                    address = yield from self.runtime.invoke(
                        magistrate, "RecoverObject", stale.loid, env=env
                    )
                except (
                    RequestRefused,
                    BindingNotFound,
                    NoCapacity,
                    ObjectModelError,
                    DeliveryFailure,
                    InvocationFailed,
                ):
                    # "Didn't produce an address" for any reason -- refusal,
                    # nothing to recover with, or the magistrate unreachable
                    # (partition/loss, possibly wrapped by its dispatcher) --
                    # means try the next one; exhaustion raises a retryable
                    # BindingNotFound, never a raw transport error.
                    continue
                row.object_address = address
                binding = self._binding_for(stale.loid, address)
                self._propagate("add-binding", binding)
                return binding
            raise BindingNotFound(
                f"class {self.class_name} could not recover {stale.loid}: "
                "no Current Magistrate produced a working address",
                loid=stale.loid,
            )
        result = yield from self.get_binding(stale.loid, ctx=ctx)
        return result

    # --------------------------------------------------------- lifecycle notifications

    @legion_method("SubscribeInvalidations(binding)")
    def subscribe_invalidations(self, agent: Binding) -> None:
        """A Binding Agent asks to be told about migrations and removals.

        Subscribed agents receive one-way EVENTs ("invalidate", loid) when
        an object's address dies and ("add-binding", binding) when a new
        address is known -- the explicit propagation of section 4.1.4.
        """
        if all(a.loid != agent.loid for a in self.invalidation_subscribers):
            self.invalidation_subscribers.append(agent)

    def _propagate(self, kind: str, payload) -> None:
        """Fan one-way news out to every subscribed agent."""
        for agent in self.invalidation_subscribers:
            self.runtime.send_event(agent.address.primary(), (kind, payload))

    @legion_method("NoteActivated(LOID, address, LOID)")
    def note_activated(self, loid: LOID, address, magistrate: LOID) -> None:
        """A magistrate reports it activated one of our objects."""
        row = self.table.find(loid)
        if row is None or row.deleted:
            return
        row.object_address = address
        if magistrate not in row.current_magistrates:
            row.current_magistrates.append(magistrate)
        if any(c.loid == loid for c in self.clones):
            # A clone came back at a (possibly new) address: refresh the
            # routing pool in place so delegation follows it.
            self.clones = [
                self._binding_for(loid, address) if c.loid == loid else c
                for c in self.clones
            ]
            self.clone_epoch += 1
        self._propagate("add-binding", self._binding_for(loid, address))

    @legion_method("NoteDeactivated(LOID, LOID)")
    def note_deactivated(self, loid: LOID, magistrate: LOID) -> None:
        """A magistrate reports it deactivated one of our objects."""
        row = self.table.find(loid)
        if row is None or row.deleted:
            return
        row.object_address = None
        if magistrate not in row.current_magistrates:
            row.current_magistrates.append(magistrate)
        self._drop_clone(loid)
        self._propagate("invalidate", loid)

    @legion_method("NoteMigrated(LOID, LOID, LOID)")
    def note_migrated(self, loid: LOID, source: LOID, target: LOID) -> None:
        """A Move() completed: responsibility changed magistrates."""
        row = self.table.find(loid)
        if row is None or row.deleted:
            return
        if source in row.current_magistrates:
            row.current_magistrates.remove(source)
        if target not in row.current_magistrates:
            row.current_magistrates.append(target)
        row.object_address = None
        self._drop_clone(loid)
        self._propagate("invalidate", loid)

    @legion_method("NoteCopied(LOID, LOID)")
    def note_copied(self, loid: LOID, target: LOID) -> None:
        """A Copy() completed: another magistrate now holds an OPR too."""
        row = self.table.find(loid)
        if row is None or row.deleted:
            return
        if target not in row.current_magistrates:
            row.current_magistrates.append(target)

    @legion_method("RegisterOutOfBand(binding)")
    def register_out_of_band(self, binding: Binding) -> None:
        """Adopt an instance started outside Legion (section 4.2.1).

        "Host Objects are started from outside Legion ... they are
        responsible for contacting LegionHost to notify it of the Host
        Object's existence and address.  Magistrates also get started
        'outside' of Legion, and they too contact their class."  The
        object enters the logical table so it is locatable like any
        normally created instance; it has no Current Magistrate (nothing
        manages its lifecycle but itself).
        """
        if binding.loid in self.table:
            self.table.set_address(binding.loid, binding.address)
            return
        # Keep our sequence counter ahead of externally assigned LOIDs so
        # later Create() calls cannot collide with bootstrap instances.
        if (
            binding.loid.class_id == self.class_id
            and binding.loid.class_specific >= self._next_sequence
        ):
            self._next_sequence = binding.loid.class_specific + 1
        self.table.add(
            TableRow(
                loid=binding.loid,
                object_address=binding.address,
                current_magistrates=[],
                scheduling_agent=self.scheduling_agent,
            )
        )
        if self.services.relations is not None:
            self.services.relations.record_is_a(binding.loid, self.loid)

    # ----------------------------------------------------------- interface queries

    @legion_method("interface GetInstanceInterface()")
    def get_instance_interface(self) -> Interface:
        """The interface future instances of this class will export.

        The union of (a) the interface contributed by this class's own
        implementation factory (its exported methods), (b) the interface
        inherited from the superclass at Derive() time, and (c) every
        base's interface added by InheritFrom().
        """
        iface = self.instance_interface
        factory = (
            self.services.impls.get(self.instance_factory)
            if self.services is not None and self.instance_factory
            else None
        )
        if factory is not None and hasattr(factory, "exported_interface"):
            iface = iface.merged_with(
                factory.exported_interface(), name=self.class_name
            )
        return iface

    @legion_method("spec GetImplementationSpec()")
    def get_implementation_spec(self) -> List[Tuple[str, Dict[str, Any]]]:
        """The factory chain an inheritor should splice in (own + bases)."""
        chain: List[Tuple[str, Dict[str, Any]]] = []
        if self.instance_factory:
            chain.append((self.instance_factory, dict(self.instance_init)))
        chain.extend(self.base_chain)
        return chain

    # --------------------------------------------------------------- reflective hooks

    @legion_method("SetSchedulingAgent(LOID, LOID)")
    def set_scheduling_agent(self, loid: LOID, agent: LOID) -> None:
        """Directly manipulate an object's Scheduling Agent field."""
        self.table.get(loid).scheduling_agent = agent

    @legion_method("SetCandidateMagistrates(LOID, list)")
    def set_candidate_magistrates(self, loid: LOID, magistrates: Optional[List[LOID]]) -> None:
        """Directly manipulate an object's Candidate Magistrate List."""
        self.table.get(loid).candidate_magistrates = (
            list(magistrates) if magistrates is not None else None
        )

    @legion_method("row GetRow(LOID)")
    def get_row(self, loid: LOID) -> TableRow:
        """Introspection: the logical-table row for one of our objects."""
        return self.table.get(loid)

    @legion_method("AddCandidateMagistrate(LOID)")
    def add_candidate_magistrate(self, magistrate: LOID) -> None:
        """Extend THIS class's candidate list (e.g. after a jurisdiction
        split creates a new magistrate, section 2.2).  A None list means
        'no restriction' and already admits the newcomer."""
        if self.candidate_magistrates is not None and magistrate not in self.candidate_magistrates:
            self.candidate_magistrates.append(magistrate)

    @legion_method("RemoveCandidateMagistrate(LOID)")
    def remove_candidate_magistrate(self, magistrate: LOID) -> None:
        """Withdraw a magistrate from THIS class's candidate list."""
        if self.candidate_magistrates is not None and magistrate in self.candidate_magistrates:
            self.candidate_magistrates.remove(magistrate)

    # --------------------------------------------------------------------- cloning

    def _normalize_clone_rr(self) -> None:
        """Keep the round-robin index inside the (possibly shrunken) pool.

        Without this, retiring clones leaves ``_clone_rr`` pointing past
        the list, and the modulo restart skews which survivor soaks up
        the next burst of requests.
        """
        size = len(self.clones)
        self._clone_rr = self._clone_rr % size if size else 0

    def _clones_changed(self) -> None:
        """The pool changed membership: bump the epoch, re-bound the index."""
        self.clone_epoch += 1
        self._normalize_clone_rr()

    def _drop_clone(self, loid: LOID) -> None:
        """Remove ``loid`` from the routing pool if it is a clone."""
        survivors = [c for c in self.clones if c.loid != loid]
        if len(survivors) != len(self.clones):
            self.clones = survivors
            self._clones_changed()

    @legion_method("binding Clone()")
    def clone_default(self, *, ctx: Optional[InvocationContext] = None):
        """Clone() with no options."""
        return self.clone_with_options({}, ctx=ctx)

    @legion_method("binding Clone(options)")
    def clone_with_options(self, options: Dict[str, Any], *, ctx: Optional[InvocationContext] = None):
        """Relieve a hot class: derive an interface-identical clone.

        The clone is registered so that subsequent Create()/Derive()
        requests are passed to it round-robin (several clones may exist,
        "with the different clones residing in different domains" --
        use the ``magistrate`` option to place them).
        """
        opts = dict(options)
        opts["no_delegate"] = True  # the clone is created by *us*, directly
        name = opts.pop("name", f"{self.class_name}.clone{len(self.clones) + 1}")
        binding = yield from self.derive_with_options(name, opts, ctx=ctx)
        self.clones.append(binding)
        self._clones_changed()
        self._propagate("add-binding", binding)
        return binding

    @legion_method("bool RetireClone(LOID)")
    def retire_clone(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """Drain a clone and fold it back into an OPR (autoscale scale-down).

        The clone leaves the routing pool immediately (no new work reaches
        it through us), then we poll its PendingDispatches() until its
        in-flight work drains (bounded by ``RETIRE_DRAIN_BUDGET``), and
        finally ask a Current Magistrate to Deactivate() it -- SaveState()
        into an OPR, so a straggler reference can still resurrect it
        through the ordinary GetBinding() path.  Returns True when the
        OPR reconciliation succeeded.
        """
        if all(c.loid != loid for c in self.clones):
            raise UnknownObject(f"{loid} is not a clone of {self.class_name}")
        self._drop_clone(loid)
        self._propagate("invalidate", loid)
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        deadline = self.services.kernel.now + RETIRE_DRAIN_BUDGET
        while True:
            try:
                pending = yield from self.runtime.invoke(
                    loid, "PendingDispatches", env=env
                )
            except LegionError:
                break  # crashed or unreachable: nothing left to drain
            if not pending or self.services.kernel.now >= deadline:
                break
            yield Timeout(RETIRE_POLL)
        row = self.table.find(loid)
        if row is None or row.deleted:
            return False
        for magistrate in list(row.current_magistrates):
            try:
                yield from self.runtime.invoke(magistrate, "Deactivate", loid, env=env)
                return True
            except LegionError:
                continue
        return False

    @legion_method("int CloneCount()")
    def clone_count(self) -> int:
        """How many clones currently share this class's creation load."""
        return len(self.clones)

    @legion_method("int CloneEpoch()")
    def get_clone_epoch(self) -> int:
        """Monotone counter of clone-pool changes (cheap staleness check)."""
        return self.clone_epoch

    @legion_method("list GetClones()")
    def get_clones(self) -> List[Binding]:
        """The clone bindings (for clients that spread their own requests).

        Server-side forwarding keeps naive clients correct, but the load
        only truly leaves the hot class when clients (or their binding
        agents) learn the clones and go direct -- "the different clones
        residing in different domains" (section 5.2.2).
        """
        return list(self.clones)

    @legion_method("pair GetClonePool()")
    def get_clone_pool(self) -> Tuple[int, List[Binding]]:
        """(epoch, [self + live clones]) for clone-aware client routing.

        Clients re-fetch when CloneEpoch() moves; including our own
        binding first means a client can spread Create()/method traffic
        across the whole pool without special-casing the parent.
        """
        pool = [self._binding_for(self.loid, self.server.address)]
        pool.extend(self.clones)
        return (self.clone_epoch, pool)


#: The class-mandatory interface (what every Legion class object exports).
CLASS_MANDATORY_INTERFACE = ClassObjectImpl.exported_interface("LegionClass")
