"""The class object's logical table (paper Fig. 16, section 3.7).

"To perform the functions for which it is responsible, each class object
must *logically* maintain the table depicted in Figure 16."  One row per
object the class created (instance or subclass), with the five fields the
paper specifies:

* **LOID** -- which object the row describes;
* **Object Address** -- the address if Active and known, else NIL;
* **Current Magistrate List** -- magistrates holding an Object Persistent
  Representation of the object;
* **Scheduling Agent** -- the object responsible for scheduling this one
  (a hook; scheduling policy lives outside the core model);
* **Candidate Magistrate List** -- magistrates that may be given
  responsibility for the object (None means "no restriction").

The paper notes classes "may employ other Legion objects, such as database
servers," to store the table; this implementation keeps it in-object, but
the interface is deliberately repository-like so that substitution stays
possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import UnknownObject
from repro.naming.loid import LOID
from repro.net.address import ObjectAddress


@dataclass
class TableRow:
    """One row of the logical table (Fig. 16)."""

    loid: LOID
    #: NIL (None) when the object is Inert or its address is unknown.
    object_address: Optional[ObjectAddress] = None
    #: Magistrates currently holding an OPR for the object.
    current_magistrates: List[LOID] = field(default_factory=list)
    #: The scheduling hook of section 3.7.
    scheduling_agent: Optional[LOID] = None
    #: None means "no restriction" (the paper's richer language mechanism
    #: for naming magistrate sets is represented by an explicit list or
    #: the no-restriction sentinel).
    candidate_magistrates: Optional[List[LOID]] = None
    #: True for rows created by Derive() rather than Create().
    is_subclass: bool = False
    #: Target size for system-level replica groups (CreateReplicated);
    #: 0 for plain objects.  A positive value marks the row's address as
    #: class-owned (ReportDeadReplica / AddReplica, never magistrate
    #: recovery -- even at group size 1) and caps AddReplica growth, so
    #: racing repairers cannot inflate the group past its target.
    replica_want: int = 0
    #: Set when the object has been Delete()d; retained briefly so stale
    #: lookups get a definitive "gone" rather than a confusing miss.
    deleted: bool = False

    @property
    def replicated(self) -> bool:
        """Whether this row is a system-level replica group (4.3)."""
        return self.replica_want > 0

    def magistrate_allowed(self, magistrate: LOID) -> bool:
        """Whether the candidate list admits ``magistrate``."""
        return self.candidate_magistrates is None or magistrate in self.candidate_magistrates


class LogicalTable:
    """The table a class object maintains over its instances/subclasses."""

    def __init__(self) -> None:
        self._rows: Dict[Tuple[int, int], TableRow] = {}

    # -- row management ---------------------------------------------------------

    def add(self, row: TableRow) -> None:
        """Insert the row for a freshly created object."""
        key = row.loid.identity
        if key in self._rows and not self._rows[key].deleted:
            raise UnknownObject(f"duplicate logical-table row for {row.loid}")
        self._rows[key] = row

    def get(self, loid: LOID) -> TableRow:
        """The row for ``loid``; raises :class:`UnknownObject` if absent."""
        row = self._rows.get(loid.identity)
        if row is None:
            raise UnknownObject(f"no logical-table row for {loid}")
        return row

    def find(self, loid: LOID) -> Optional[TableRow]:
        """The row for ``loid`` or None."""
        return self._rows.get(loid.identity)

    def mark_deleted(self, loid: LOID) -> TableRow:
        """Flag the row deleted (Delete() semantics); returns the row."""
        row = self.get(loid)
        row.deleted = True
        row.object_address = None
        row.current_magistrates = []
        return row

    def drop(self, loid: LOID) -> None:
        """Physically remove the row (post-deletion garbage collection)."""
        self._rows.pop(loid.identity, None)

    # -- field updates -------------------------------------------------------------

    def set_address(self, loid: LOID, address: Optional[ObjectAddress]) -> None:
        """Record the Object Address (or NIL) for an object."""
        self.get(loid).object_address = address

    def set_magistrates(self, loid: LOID, magistrates: List[LOID]) -> None:
        """Replace the Current Magistrate List."""
        self.get(loid).current_magistrates = list(magistrates)

    def add_magistrate(self, loid: LOID, magistrate: LOID) -> None:
        """Add a magistrate to the Current Magistrate List (idempotent)."""
        row = self.get(loid)
        if magistrate not in row.current_magistrates:
            row.current_magistrates.append(magistrate)

    def remove_magistrate(self, loid: LOID, magistrate: LOID) -> None:
        """Drop a magistrate from the Current Magistrate List (idempotent)."""
        row = self.get(loid)
        if magistrate in row.current_magistrates:
            row.current_magistrates.remove(magistrate)

    # -- queries ----------------------------------------------------------------------

    def instances(self) -> List[TableRow]:
        """Rows created by Create(), excluding deleted ones."""
        return [r for r in self._rows.values() if not r.is_subclass and not r.deleted]

    def subclasses(self) -> List[TableRow]:
        """Rows created by Derive(), excluding deleted ones."""
        return [r for r in self._rows.values() if r.is_subclass and not r.deleted]

    def active_rows(self) -> List[TableRow]:
        """Rows whose Object Address is currently known."""
        return [
            r
            for r in self._rows.values()
            if r.object_address is not None and not r.deleted
        ]

    def __len__(self) -> int:
        return sum(1 for r in self._rows.values() if not r.deleted)

    def __iter__(self) -> Iterator[TableRow]:
        return iter([r for r in self._rows.values() if not r.deleted])

    def __contains__(self, loid: LOID) -> bool:
        row = self._rows.get(loid.identity)
        return row is not None and not row.deleted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogicalTable rows={len(self._rows)}>"
