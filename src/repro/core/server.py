"""ObjectServer: hosts one implementation at a network endpoint.

The server is the simulated analogue of the process a Legion object runs
in while Active (paper section 3.1).  It owns the endpoint, the runtime,
and the dispatch loop:

* REQUEST messages are dispatched to exported methods.  "Method calls are
  non-blocking and may be accepted in any order" (section 2): each
  invocation runs as its own simulation process, so a slow method never
  blocks later arrivals.
* Before anything runs, the object's MayI() policy is consulted
  (section 2.4); refusals return SecurityDenied to the caller.
* REPLY / DELIVERY_FAILURE messages are routed to the runtime's pending
  futures.
* EVENT messages go to the implementation's ``handle_event`` hook.

Every REQUEST also bumps the object's component counter in the metrics
registry -- the raw data of the Section 5 scalability experiments.
"""

from __future__ import annotations

import types
from functools import partial
from typing import Optional

from repro.errors import LegionError, MethodNotFound, Overloaded, SecurityDenied
from repro.core.callpath import compile_dispatch_path
from repro.core.method import InvocationContext, MethodInvocation, MethodResult
from repro.core.object_base import LegionObjectImpl
from repro.core.runtime import LegionRuntime
from repro.flow.admission import AdmissionController
from repro.flow.batching import BatchInvocation
from repro.metrics.counters import ComponentId, ComponentKind, MetricsRegistry
from repro.naming.binding import Binding
from repro.naming.loid import LOID
from repro.net.address import ObjectAddress
from repro.net.message import Message, MessageKind

#: Sentinel expiry for bindings that never go stale on their own.
_NO_EXPIRY = float("inf")


class ObjectServer:
    """One active Legion object: implementation + endpoint + runtime."""

    def __init__(
        self,
        services,
        loid: LOID,
        impl: LegionObjectImpl,
        host: int,
        node: int = 0,
        component_kind: ComponentKind = ComponentKind.APPLICATION,
        component_name: str = "",
        cache_capacity: Optional[int] = 128,
        flow=None,
    ) -> None:
        self.services = services
        self.loid = loid
        self.impl = impl
        self.host = host
        self.element = services.network.allocate_element(host, node)
        self.runtime = LegionRuntime(
            services,
            loid,
            self.element,
            cache_capacity,
            default_timeout=getattr(services, "default_invocation_timeout", None),
        )
        self.component = ComponentId(component_kind, component_name or str(loid))
        #: Pre-rendered span label; shared with the runtime so client-side
        #: (request) and server-side (handle) spans name components alike.
        self._component_label = str(self.component)
        self.runtime.component_label = self._component_label
        self._endpoint = services.network.register(self.element, self.handle_message)
        self.active = True
        #: Requests dispatched but not yet replied to -- the server-side
        #: queue depth the autoscaler's LoadMonitor samples.  Batched
        #: dispatch adds the full member count, so coalescing never
        #: under-reports depth.
        self.in_flight = 0
        #: Bounded admission queue (repro.flow), or None for the
        #: historical accept-everything behaviour.  ``flow`` overrides the
        #: system-wide ``services.flow`` config per server.
        flow_config = flow if flow is not None else getattr(services, "flow", None)
        self.admission = (
            AdmissionController(self, flow_config)
            if flow_config is not None and flow_config.admits(component_kind)
            else None
        )
        # Compile the request-dispatch pipeline for the current
        # configuration (repro.core.callpath); sets _dispatch_key,
        # _request_path and the _dispatch_epoch staleness stamp.
        compile_dispatch_path(self)
        # Seed the runtime: well-known core bindings plus the system's
        # default Binding Agent (creators may override either afterwards).
        for core_binding in services.core_bindings.values():
            if core_binding.loid != loid:
                self.runtime.seed_binding(core_binding, permanent=True)
        if (
            services.default_binding_agent is not None
            and services.default_binding_agent.loid != loid
        ):
            self.runtime.set_binding_agent(services.default_binding_agent)
        # Wire the implementation.
        impl.loid = loid
        impl.runtime = self.runtime
        impl.services = services
        impl.server = self  # type: ignore[attr-defined]
        impl.on_activated()

    # ------------------------------------------------------------------ address

    @property
    def address(self) -> ObjectAddress:
        """This server's single-element Object Address."""
        return ObjectAddress.single(self.element)

    def binding(self, expires_at: float = _NO_EXPIRY) -> Binding:
        """A Binding for this server's LOID and address."""
        return Binding(self.loid, self.address, expires_at)

    # ----------------------------------------------------------------- dispatch

    def handle_message(self, message: Message) -> None:
        """The endpoint handler: route by message kind.

        The endpoint captures this bound method at registration, so the
        method itself stays stable; REQUESTs go through the *compiled*
        ``_request_path`` (repro.core.callpath), revalidated against the
        services config epoch with one integer compare per message.
        """
        if message.kind is MessageKind.REQUEST:
            if self._dispatch_epoch != self.services.callpath_epoch:
                compile_dispatch_path(self)
            self._request_path(message)
            return
        if message.kind is MessageKind.REPLY:
            self.runtime.handle_reply(message)
            return
        if message.kind is MessageKind.DELIVERY_FAILURE:
            self.runtime.handle_delivery_failure(message)
            return
        # EVENT
        tracer = self.services.tracer
        if tracer is not None and tracer.active:
            tracer.instant(
                "deliver event",
                "event",
                parent=message.trace,
                component=self._component_label,
            )
        self.impl.handle_event(message.payload, message.source)

    def _dispatch_plain(self, message: Message) -> None:
        """Compiled REQUEST path for the zero-middleware configuration.

        No admission queue exists, no flow config means no batched
        payloads can arrive, and no tracer is installed -- so the whole
        dispatch is the bare in_flight/metrics/execute chain.
        """
        invocation: MethodInvocation = message.payload
        self.in_flight += 1
        self.services.metrics.incr(self.component, MetricsRegistry.REQUESTS)
        self._execute(invocation, invocation.env, None, partial(self._reply, message))

    def _dispatch_flow(self, message: Message) -> None:
        """Compiled REQUEST path when a flow config exists but this
        server has no admission queue: batched payloads may arrive and
        must be unpacked."""
        if type(message.payload) is BatchInvocation:
            self._dispatch_batch(message)
            return
        self._dispatch_request(message)

    def _dispatch_request(self, message: Message) -> None:
        invocation: MethodInvocation = message.payload
        self.in_flight += 1
        self.services.metrics.incr(self.component, MetricsRegistry.REQUESTS)
        tracer = self.services.tracer
        span = None
        env = invocation.env
        if tracer is not None and tracer.active:
            # The server-side dispatch span.  Nested calls the method makes
            # flow through ctx.nested_env, whose environment carries this
            # span's context -- so the whole downstream subtree hangs here.
            span = tracer.start(
                "handle " + invocation.method,
                "handle",
                parent=message.trace,
                component=self._component_label,
            )
            env = env.with_trace(span.context)
        self._execute(invocation, env, span, partial(self._reply, message))

    def _dispatch_batch(self, message: Message) -> None:
        """Unpack a BatchInvocation into per-call dispatches + one reply.

        Each member counts fully toward ``in_flight`` (and the request
        metric) for exactly as long as it runs, so the autoscaler's queue
        depth never under-reports under coalesced dispatch; the combined
        reply leaves once the last member settles.
        """
        batch: BatchInvocation = message.payload
        count = len(batch.calls)
        self.in_flight += count
        self.services.metrics.incr(self.component, MetricsRegistry.REQUESTS, count)
        tracer = self.services.tracer
        traced = tracer is not None and tracer.active
        if traced:
            tracer.instant(
                "unbatch " + batch.method,
                "batch",
                parent=message.trace,
                component=self._component_label,
                n=count,
            )
        results: list = [None] * count
        remaining = [count]

        def member_done(index: int, result: MethodResult) -> None:
            results[index] = result
            if self.in_flight > 0:
                self.in_flight -= 1
            remaining[0] -= 1
            if remaining[0] == 0 and self.active:
                self.services.network.send(
                    message.reply_with(MethodResult.success(tuple(results)))
                )
            if self.admission is not None:
                self.admission.pump()

        for index, invocation in enumerate(batch.calls):
            span = None
            env = invocation.env
            if traced:
                span = tracer.start(
                    "handle " + invocation.method,
                    "handle",
                    parent=message.trace,
                    component=self._component_label,
                )
                env = env.with_trace(span.context)
            self._execute(
                invocation, env, span, partial(member_done, index)
            )

    def _execute(self, invocation: MethodInvocation, env, span, done) -> None:
        """Run one invocation; call ``done(MethodResult)`` exactly once."""
        tracer = self.services.tracer
        try:
            if not self.impl.may_i(invocation.method, invocation.env):
                raise SecurityDenied(
                    f"{self.loid} refused {invocation.method} for "
                    f"{invocation.env.calling_agent}"
                )
            export = self.impl.find_export(invocation.method, invocation.arity)
            if export is None:
                raise MethodNotFound(
                    f"{self.loid} exports no {invocation.method}/{invocation.arity}"
                )
        except LegionError as exc:
            if span is not None:
                tracer.finish(span, type(exc).__name__)
            done(MethodResult.failure(exc))
            return

        ctx = InvocationContext(
            env=env, target=invocation.target, method=invocation.method
        )
        try:
            if export.wants_ctx:
                outcome = export.fn(self.impl, *invocation.args, ctx=ctx)
            else:
                outcome = export.fn(self.impl, *invocation.args)
        except LegionError as exc:
            if span is not None:
                tracer.finish(span, type(exc).__name__)
            done(MethodResult.failure(exc))
            return
        except Exception as exc:  # noqa: BLE001 - marshalled to caller
            if span is not None:
                tracer.finish(span, type(exc).__name__)
            done(MethodResult.failure(exc))
            return

        if isinstance(outcome, types.GeneratorType):
            # Long-running method: its own process; reply when it returns.
            fut = self.services.kernel.spawn(
                outcome, name=f"{self.loid}.{invocation.method}"
            )

            def _finish(done_fut) -> None:
                if span is not None:
                    exc = done_fut.exception()
                    tracer.finish(span, type(exc).__name__ if exc else "ok")
                if done_fut.failed():
                    done(MethodResult.failure(done_fut.exception()))
                else:
                    done(MethodResult.success(done_fut.result()))

            fut.add_done_callback(_finish)
        else:
            if span is not None:
                tracer.finish(span)
            done(MethodResult.success(outcome))

    def _reply(self, request: Message, result: MethodResult) -> None:
        if self.in_flight > 0:
            self.in_flight -= 1
        if self.active:
            self.services.network.send(request.reply_with(result))
        # else: deactivated mid-method; caller will see a stale binding
        if self.admission is not None:
            self.admission.pump()

    def _shed_reply(self, request: Message, retry_after: float, reason: str) -> None:
        """Refuse ``request`` with Overloaded(retry_after); never dispatched.

        Counts the shed against the SHED metric (one per logical request,
        so batch sheds count every member), records the incident on the
        FaultLog and as a "shed" span, and replies without ever touching
        ``in_flight``.
        """
        payload = request.payload
        count = len(payload.calls) if type(payload) is BatchInvocation else 1
        self.services.metrics.incr(self.component, MetricsRegistry.SHED, count)
        fault_log = self.services.fault_log
        now = self.services.kernel.now
        tracer = self.services.tracer
        traced = tracer is not None and tracer.active
        for _ in range(count):
            if fault_log is not None:
                fault_log.observe(now, "request-shed", self._component_label, reason)
            if traced:
                tracer.instant(
                    "shed " + payload.method,
                    "shed",
                    parent=request.trace,
                    component=self._component_label,
                    reason=reason,
                    retry_after=round(retry_after, 3),
                )
        if not self.active:
            return
        result = MethodResult.failure(
            Overloaded(
                f"{self.loid} shed {payload.method} ({reason})",
                retry_after=retry_after,
            )
        )
        self.services.network.send(request.reply_with(result))

    # ----------------------------------------------------------------- lifecycle

    def deactivate(self) -> None:
        """Tear the endpoint down (object going Inert or migrating).

        After this, messages to the old address produce DELIVERY_FAILURE
        at their senders -- the stale-binding signal of section 4.1.4.
        """
        if not self.active:
            return
        self.impl.on_deactivating()
        self.active = False
        self._endpoint.unregister()
        self.runtime.fail_pending("deactivated")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "inert"
        return f"<ObjectServer {self.loid} @{self.element} {state}>"
