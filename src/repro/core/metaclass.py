"""LegionClassImpl: the root metaclass object (sections 2.1.3, 3.2, 4.1.3).

LegionClass is one of the paper's few "single logical Legion objects":

* it "is responsible for handing out unique Class Identifiers to each new
  class" (section 3.2);
* it "can be the authority for locating class objects.  LegionClass does
  not directly maintain the bindings; instead, it delegates that
  responsibility to other class objects.  To do so, LegionClass maintains
  a mapping of LOID pairs.  The existence of pair <X,Y> indicates that X
  is responsible for locating Y" (section 4.1.3);
* it is itself a class object -- "LegionClass is derived from
  LegionObject; thus, classes are objects in Legion" -- and maintains
  bindings for the objects it is directly responsible for, terminating
  the recursive class-location walk.

Scalability note (section 5.2.2): because class bindings change slowly,
responsibility pairs and class bindings are aggressively cacheable;
experiment E3 shows a combining tree of Binding Agents flattening the
request load measured at this object.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import UnknownObject
from repro.core.class_types import ClassFlavor
from repro.core.legion_class import ClassObjectImpl
from repro.core.object_base import legion_method
from repro.naming.binding import Binding
from repro.naming.loid import (
    CLASS_ID_LEGION_CLASS,
    FIRST_USER_CLASS_ID,
    LOID,
)


class LegionClassImpl(ClassObjectImpl):
    """The LegionClass core object.  See module docstring."""

    def __init__(
        self,
        candidate_magistrates: Optional[List[LOID]] = None,
        scheduling_agent: Optional[LOID] = None,
        next_class_id: int = FIRST_USER_CLASS_ID,
    ) -> None:
        super().__init__(
            class_name="LegionClass",
            class_id=CLASS_ID_LEGION_CLASS,
            flavor=ClassFlavor.REGULAR,
            instance_factory="legion.class-object",
            candidate_magistrates=candidate_magistrates,
            scheduling_agent=scheduling_agent,
        )
        self._next_class_id = next_class_id
        #: The responsibility map: created class id → creator class LOID,
        #: i.e. pair <X, Y> stored as responsible_for[Y.class_id] = X.
        self.responsible_for: Dict[int, LOID] = {}
        #: Names registered at allocation (diagnostics / directory).
        self.class_names: Dict[int, str] = {}
        #: Bindings for objects LegionClass is *directly* responsible for
        #: (the core Abstract classes started at bootstrap).  This is where
        #: the recursive location process of section 4.1.3 terminates.
        self.direct_bindings: Dict[int, Binding] = {}

    def persistent_attributes(self) -> List[str]:
        return super().persistent_attributes() + [
            "_next_class_id",
            "responsible_for",
            "class_names",
        ]

    # ---------------------------------------------------------------- allocation

    @legion_method("int AllocateClassID(LOID, string)")
    def allocate_class_id(self, creator: LOID, name: str) -> int:
        """Hand out a fresh unique Class Identifier and record <creator, new>.

        "When a new class object D is created, the creating class C
        contacts LegionClass for a new Class Identifier ...  At this time,
        LegionClass can record that C is responsible for locating D."
        """
        class_id = self._next_class_id
        self._next_class_id += 1
        self.responsible_for[class_id] = creator
        self.class_names[class_id] = name
        return class_id

    # ----------------------------------------------------------------- location

    @legion_method("LOID LocateResponsible(LOID)")
    def locate_responsible(self, loid: LOID) -> LOID:
        """Who is responsible for locating ``loid``?

        For a non-class object the answer is pure field surgery (zero the
        class-specific field); for a class object the responsibility map
        answers.  Returns our own LOID for objects we are directly
        responsible for -- the walk's termination condition.
        """
        if not loid.is_class:
            class_id, _zero = loid.class_identity()
            return self._class_loid_for(class_id)
        if loid.class_id in self.direct_bindings:
            return self.loid
        creator = self.responsible_for.get(loid.class_id)
        if creator is None:
            raise UnknownObject(
                f"LegionClass never allocated class id {loid.class_id}"
            )
        return creator

    def _class_loid_for(self, class_id: int) -> LOID:
        return LOID.for_class(class_id, self.services.secret)

    @legion_method("binding GetCoreBinding(LOID)")
    def get_core_binding(self, loid: LOID) -> Binding:
        """The binding of an object LegionClass directly maintains.

        "LegionClass simply hands out the appropriate binding which, as a
        class object, it is responsible for maintaining."  Raises for
        anything not directly registered (use LocateResponsible + the
        responsible class's GetBinding for those).
        """
        binding = self.direct_bindings.get(loid.class_id)
        if binding is None or binding.loid.identity != loid.identity:
            # Fall back to the ordinary class-object table (instances and
            # subclasses LegionClass itself created).
            row = self.table.find(loid)
            if row is not None and row.object_address is not None and not row.deleted:
                return self._binding_for(loid, row.object_address)
            raise UnknownObject(
                f"LegionClass maintains no direct binding for {loid}"
            )
        return binding

    # ---------------------------------------------------------------- bootstrap

    @legion_method("RegisterCoreClass(binding, string)")
    def register_core_class(self, binding: Binding, name: str) -> None:
        """Record a bootstrap-started core class (section 4.2.1).

        The core Abstract classes are "started exactly once -- when the
        Legion system comes alive" -- outside the normal Create()/Derive()
        path, so they register here to become locatable.
        """
        class_id = binding.loid.class_id
        self.direct_bindings[class_id] = binding
        self.class_names.setdefault(class_id, name)
        if class_id >= self._next_class_id:
            self._next_class_id = class_id + 1

    @legion_method("RefreshCoreBinding(binding)")
    def refresh_core_binding(self, binding: Binding) -> None:
        """Update a core object's binding (e.g. after planned migration)."""
        self.direct_bindings[binding.loid.class_id] = binding

    # ---------------------------------------------------------------- directory

    @legion_method("string ClassName(int)")
    def class_name_of(self, class_id: int) -> str:
        """The name registered for ``class_id`` ('' if unknown)."""
        return self.class_names.get(class_id, "")

    @legion_method("int ClassCount()")
    def class_count(self) -> int:
        """How many class identifiers have been handed out or registered."""
        return len(self.class_names)
