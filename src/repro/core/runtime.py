"""LegionRuntime: the per-object Legion-aware communication layer.

"Since A is a Legion object, it contains a Legion-aware communication
layer which may implement a binding cache." (paper section 4.1.2)

Each active object owns one runtime.  The runtime:

* keeps the object's **binding cache** (first stop of every resolution);
* knows the object's **Binding Agent** -- "the persistent state of each
  Legion object contains the Object Address of its Binding Agent"
  (section 3.6) -- and consults it on cache misses;
* detects **stale bindings** via DELIVERY_FAILURE notices (section 4.1.4),
  invalidates them, asks the agent for a refresh by passing the *stale
  binding itself* to GetBinding(binding), and retries;
* implements the **Object Address semantics** of section 3.4 on send:
  FIRST tries elements in order, ANY_RANDOM picks one, ALL fans out and
  gathers every reply, K_OF_N fans out and returns the first k.

All remote calls are generator-style: ``value = yield from rt.invoke(...)``
inside a simulation process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    BindingNotFound,
    DeliveryFailure,
    InvocationTimeout,
    Overloaded,
    PartitionedError,
)
from repro.core.callpath import compile_invoke_path
from repro.core.method import MethodInvocation, MethodResult
from repro.flow.batching import RequestBatcher
from repro.flow.credits import CreditLedger
from repro.naming.binding import Binding
from repro.naming.cache import BindingCache
from repro.naming.loid import LOID
from repro.net.address import AddressSemantic, ObjectAddress, ObjectAddressElement
from repro.net.message import Message
from repro.security.environment import CallEnvironment
from repro.simkernel.futures import SimFuture, gather, k_of
from repro.simkernel.kernel import SimKernel, Timeout


@dataclass(frozen=True)
class RetryPolicy:
    """How ``invoke`` spends its failure budget (attempts, backoff, deadline).

    The default policy reproduces the pre-policy behaviour exactly: four
    attempts back-to-back (no backoff, no jitter, no per-call budget),
    partitions raised immediately, resolution failures fatal.  Chaos-facing
    callers install a patient policy (backoff + jitter + budget +
    ``retry_partitions``) so calls ride out whole-host crashes and timed
    partitions while recovery runs underneath them.

    Frozen so policies can be shared between runtimes and compared by value.
    """

    #: Total tries of the call itself (1 = no retry).
    max_attempts: int = 4
    #: Delay before the *second* attempt; 0 disables backoff entirely.
    base_backoff: float = 0.0
    #: Multiplier applied per further attempt (exponential backoff).
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff delay.
    max_backoff: float = 1_000.0
    #: Fractional jitter: delay is scaled by 1 + jitter*U(-1, 1) from the
    #: seeded "retry-backoff" RNG stream, so runs stay bit-identical.
    jitter: float = 0.0
    #: Wall (simulated) time budget for the whole invoke, measured from the
    #: first attempt; None = unlimited.  A retry whose backoff would land
    #: past the budget is not attempted (counts as an exhausted budget).
    budget: Optional[float] = None
    #: Treat PartitionedError like any delivery failure and retry (waiting
    #: out a heal) instead of raising immediately.
    retry_partitions: bool = False
    #: Keep retrying with the old binding when a refresh comes back
    #: BindingNotFound (e.g. the recovery control path is itself cut off by
    #: a partition) instead of giving up on the spot.
    retry_resolution_failures: bool = False
    #: Wait at least the server's ``retry_after`` pushback hint before the
    #: attempt after an Overloaded (admission-shed) reply.  Shed replies
    #: never count as stale bindings: no invalidate, no refresh, no rebind.
    honor_retry_after: bool = True
    #: Per-runtime global retry *token bucket*: every attempt after the
    #: first spends one token; a dry bucket stops the retry loop
    #: (stats.retry_denied), so N concurrent invokes cannot multiply
    #: offered load during an outage.  None = unlimited (the historical
    #: behaviour).
    retry_tokens: Optional[float] = None
    #: Bucket refill rate in tokens per simulated ms (0 = no refill).
    retry_token_refill: float = 0.0

    def backoff_delay(self, attempt: int, rng) -> float:
        """Delay to sleep before ``attempt`` (2-based; attempt 1 never waits)."""
        if attempt <= 1 or self.base_backoff <= 0.0:
            return 0.0
        delay = min(
            self.base_backoff * self.backoff_factor ** (attempt - 2),
            self.max_backoff,
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


#: The compatibility policy: identical semantics to the historical
#: MAX_REFRESH_ATTEMPTS loop (see that constant's docstring).
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class RuntimeStats:
    """Per-object communication statistics (feed the experiments).

    When ``_pending`` is empty the request-plane counters reconcile::

        requests_sent == replies_received + timeouts
                         + delivery_failures + cancelled + shed

    -- every request settles exactly one way; the property test pins this.
    """

    invocations: int = 0
    requests_sent: int = 0
    replies_received: int = 0
    stale_detected: int = 0
    refreshes: int = 0
    timeouts: int = 0
    agent_lookups: int = 0
    #: Call attempts made by invoke() (== invocations when nothing retries).
    attempts: int = 0
    #: Successful re-resolutions after a stale binding was invalidated.
    rebinds: int = 0
    #: Invokes abandoned because the next backoff overran policy.budget.
    budget_exhausted: int = 0
    #: Requests settled by a DELIVERY_FAILURE notice.
    delivery_failures: int = 0
    #: Requests failed by fail_pending (teardown/migration).
    cancelled: int = 0
    #: Requests settled by an Overloaded reply (admission-control shed).
    shed: int = 0
    #: Retries the global retry token bucket refused to fund.
    retry_denied: int = 0
    #: Sends that had to park on an exhausted credit window first.
    credit_waits: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.invocations = self.requests_sent = self.replies_received = 0
        self.stale_detected = self.refreshes = self.timeouts = 0
        self.agent_lookups = 0
        self.attempts = self.rebinds = self.budget_exhausted = 0
        self.delivery_failures = self.cancelled = 0
        self.shed = self.retry_denied = self.credit_waits = 0


class LegionRuntime:
    """The communication layer of one active Legion object."""

    #: How many stale-binding refresh cycles invoke() tolerates before
    #: giving up with BindingNotFound.  Kept small because refreshes can
    #: nest (a refresh's own requests may retry): depth-k call chains cost
    #: up to (MAX_REFRESH_ATTEMPTS+1)^k attempts in the worst case.
    MAX_REFRESH_ATTEMPTS = 3

    def __init__(
        self,
        services,
        loid: LOID,
        element: ObjectAddressElement,
        cache_capacity: Optional[int] = 128,
        default_timeout: Optional[float] = None,
    ) -> None:
        self.services = services
        self.kernel: SimKernel = services.kernel
        self.loid = loid
        self.element = element
        self.cache = BindingCache(capacity=cache_capacity)
        self.stats = RuntimeStats()
        #: The object's Binding Agent (LOID + address), per section 3.6.
        self.binding_agent: Optional[Binding] = None
        #: Per-request deadline when messages can be silently dropped.
        self.default_timeout = default_timeout
        #: How invoke() spends its failure budget; swap per-object for
        #: chaos-tolerant callers.  The default reproduces the historical
        #: refresh loop bit-for-bit.
        self.retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
        #: (loid identity, stale address) → in-flight refresh future.  N
        #: concurrent invokes sharing one dead address coalesce onto a
        #: single GetBinding(stale) instead of storming the agent.
        self._refreshing: Dict[tuple, SimFuture] = {}
        self._pending: Dict[int, SimFuture] = {}
        self._timeout_handles: Dict[int, Any] = {}
        #: Metrics-style "kind:name" label used on spans this runtime
        #: records; the owning ObjectServer overwrites it with its
        #: ComponentId so traces and counters share a vocabulary.
        self.component_label = str(loid)
        #: correlation id → open "request" span (only populated while a
        #: trace is active; stays empty -- one truthiness test -- otherwise).
        self._request_spans: Dict[int, Any] = {}
        #: Non-evictable well-known bindings (the core objects).  A
        #: transient failure (e.g. a partition) may invalidate the cached
        #: copy, but resolution falls back here, so connectivity loss is
        #: never promoted into permanent amnesia about the core objects.
        self._permanent: Dict[tuple, Binding] = {}
        #: The flow-control configuration (repro.flow), or None.  Every
        #: flow feature below guards on it so the default costs nothing.
        flow = getattr(services, "flow", None)
        self._flow = flow
        #: Caller-side credit windows (credit-based backpressure).
        self.credits: Optional[CreditLedger] = (
            CreditLedger(flow.credit_window)
            if flow is not None and flow.credit_window is not None
            else None
        )
        #: Request batcher; created lazily by enable_batching() (or
        #: eagerly when the config pre-registers batch_methods).
        self._batcher: Optional[RequestBatcher] = None
        if flow is not None and flow.batch_window > 0.0 and flow.batch_methods:
            self._batcher = RequestBatcher(
                self, flow.batch_window, flow.batch_limit, flow.batch_methods
            )
        #: Global retry token bucket (None until first use; see
        #: RetryPolicy.retry_tokens).
        self._retry_bucket: Optional[float] = None
        self._retry_bucket_at = 0.0
        # Compile the invoke pipeline for the current configuration
        # (repro.core.callpath); sets _invoke_key, _plain_path and the
        # _callpath_epoch stamp the per-call staleness check compares.
        compile_invoke_path(self)

    # ------------------------------------------------------------------ wiring

    @property
    def pending_count(self) -> int:
        """Outstanding requests awaiting replies (client-side queue depth)."""
        return len(self._pending)

    def set_binding_agent(self, agent: Binding) -> None:
        """Install the Binding Agent this object consults on cache misses."""
        self.binding_agent = agent

    def seed_binding(self, binding: Binding, permanent: bool = False) -> None:
        """Pre-load the cache (bootstrap and AddBinding-style propagation).

        ``permanent=True`` marks a well-known binding that survives any
        invalidation (used for the core class objects).
        """
        if permanent:
            self._permanent[binding.loid.identity] = binding
        self.cache.insert(binding)

    def lookup_binding(self, loid: LOID) -> Optional[Binding]:
        """Cache lookup with fallback to the permanent well-known seeds."""
        binding = self.cache.lookup(loid, self.kernel.now)
        if binding is None:
            binding = self._permanent.get(loid.identity)
            if binding is not None:
                self.cache.insert(binding)
        return binding

    def enable_batching(self, *methods: str) -> bool:
        """Opt this runtime's calls to ``methods`` into request batching.

        Binding agents call this for GetBinding (the combining tree's
        data plane) and clone-pool routers for CloneEpoch/GetClonePool;
        only idempotent metadata reads belong here.  A no-op returning
        False unless the installed FlowConfig enables a batch window.
        """
        flow = self._flow
        if flow is None or flow.batch_window <= 0.0:
            return False
        if self._batcher is None:
            self._batcher = RequestBatcher(
                self, flow.batch_window, flow.batch_limit, flow.batch_methods
            )
        self._batcher.methods.update(methods)
        # Runtime-local config change the services epoch cannot see.
        compile_invoke_path(self)
        return True

    def _take_retry_token(self) -> bool:
        """Spend one global retry token; False (and counted) when dry."""
        policy = self.retry_policy
        cap = policy.retry_tokens
        if cap is None:
            return True
        now = self.kernel.now
        if self._retry_bucket is None:
            self._retry_bucket = float(cap)
        elif policy.retry_token_refill > 0.0:
            refilled = self._retry_bucket + (
                (now - self._retry_bucket_at) * policy.retry_token_refill
            )
            self._retry_bucket = refilled if refilled < cap else float(cap)
        self._retry_bucket_at = now
        if self._retry_bucket >= 1.0:
            self._retry_bucket -= 1.0
            return True
        self.stats.retry_denied += 1
        return False

    # --------------------------------------------------------------- message in

    def handle_reply(self, message: Message) -> None:
        """Route an incoming REPLY to its waiting future."""
        fut = self._pending.pop(message.correlation_id, None)
        self._cancel_timeout(message.correlation_id)
        if self._request_spans:
            self._finish_request_span(message.correlation_id, "ok")
        if fut is None or fut.done():
            return  # late reply after timeout; drop
        payload = message.payload
        if type(payload) is MethodResult and payload.error_type == "Overloaded":
            # Admission-control shed: its own terminal state, not a reply
            # in the goodput sense and never a stale-binding signal.
            self.stats.shed += 1
        else:
            self.stats.replies_received += 1
        fut.set_result(payload)

    def handle_delivery_failure(self, message: Message) -> None:
        """Route a DELIVERY_FAILURE notice to its waiting future."""
        fut = self._pending.pop(message.correlation_id, None)
        self._cancel_timeout(message.correlation_id)
        if self._request_spans:
            self._finish_request_span(message.correlation_id, "delivery-failure")
        if fut is None or fut.done():
            return
        self.stats.delivery_failures += 1
        reason = str(message.payload)
        exc_type = PartitionedError if "partition" in reason else DeliveryFailure
        fut.set_exception(
            exc_type(
                f"delivery to {message.source} failed: {reason}",
                element=message.source,
            )
        )

    def _cancel_timeout(self, correlation_id: int) -> None:
        handle = self._timeout_handles.pop(correlation_id, None)
        if handle is not None:
            handle.cancel()

    def _finish_request_span(self, correlation_id: int, status: str) -> None:
        span = self._request_spans.pop(correlation_id, None)
        if span is not None:
            tracer = self.services.tracer
            if tracer is not None:
                tracer.finish(span, status)

    # --------------------------------------------------------------- message out

    def send_request(
        self,
        element: ObjectAddressElement,
        invocation: MethodInvocation,
        timeout: Optional[float] = None,
    ) -> SimFuture:
        """Fire one REQUEST at one element; future resolves with MethodResult.

        The future fails with :class:`DeliveryFailure` on a stale element
        and with :class:`InvocationTimeout` if a deadline was set and no
        reply arrived in time.
        """
        message = Message.request(self.element, element, invocation)
        # The name is debugging metadata only; formatting the invocation
        # eagerly here would dominate the warm-call profile, so keep the
        # cheap constant part (errors still carry the full invocation).
        fut = SimFuture(invocation.method)
        self._pending[message.correlation_id] = fut
        self.stats.requests_sent += 1
        tracer = self.services.tracer
        if tracer is not None and tracer.active:
            link = self.services.network.latency.classify(
                self.element.host, element.host
            )
            span = tracer.start(
                "request " + invocation.method,
                "request",
                parent=invocation.env.trace,
                component=self.component_label,
                link=link.value,
            )
            message.trace = span.context
            self._request_spans[message.correlation_id] = span
        deadline = timeout if timeout is not None else self.default_timeout
        if deadline is not None:
            corr = message.correlation_id

            def _expire() -> None:
                pending = self._pending.pop(corr, None)
                self._timeout_handles.pop(corr, None)
                if self._request_spans:
                    self._finish_request_span(corr, "timeout")
                if pending is not None and not pending.done():
                    self.stats.timeouts += 1
                    pending.set_exception(
                        InvocationTimeout(
                            f"no reply to {invocation} within {deadline}",
                            element=element,
                        )
                    )

            self._timeout_handles[corr] = self.kernel.schedule(deadline, _expire)
        self.services.network.send(message)
        return fut

    def send_event(
        self, element: ObjectAddressElement, payload: Any, trace: Any = None
    ) -> None:
        """Fire-and-forget EVENT (exception reports, invalidation gossip).

        ``trace`` optionally parents the event's span (e.g. the dispatch
        span of the method emitting invalidation gossip).
        """
        message = Message.event(self.element, element, payload)
        tracer = self.services.tracer
        if tracer is not None and tracer.active:
            span = tracer.instant(
                "event",
                "event",
                parent=trace,
                component=self.component_label,
                link=self.services.network.latency.classify(
                    self.element.host, element.host
                ).value,
            )
            message.trace = span.context
        self.services.network.send(message)

    # ----------------------------------------------------------------- calls

    def call_element(
        self,
        element: ObjectAddressElement,
        target: LOID,
        method: str,
        args: Tuple[Any, ...],
        env: CallEnvironment,
        timeout: Optional[float] = None,
        priority: int = 0,
    ):
        """Process-style call of one element; returns the unwrapped value."""
        if self._flow is None:
            invocation = MethodInvocation(
                target=target, method=method, args=args, env=env
            )
            result: MethodResult = yield self.send_request(element, invocation, timeout)
            return result.unwrap()
        invocation = self._flow_invocation(target, method, args, env, timeout, priority)
        batcher = self._batcher
        if batcher is not None and method in batcher.methods:
            # Coalesced path: credits are bypassed on purpose -- the
            # batch window itself paces upstream traffic, and one wire
            # message per window is the bound we are after.
            result = yield batcher.submit(element, invocation, timeout)
            return result.unwrap()
        result = yield from self._credited_send(element, invocation, timeout)
        return result.unwrap()

    def _flow_invocation(
        self, target, method, args, env, timeout, priority
    ) -> MethodInvocation:
        """An invocation stamped with flow metadata (deadline, priority)."""
        deadline = timeout if timeout is not None else self.default_timeout
        return MethodInvocation(
            target=target,
            method=method,
            args=args,
            env=env,
            priority=priority,
            deadline=None if deadline is None else self.kernel.now + deadline,
        )

    def _credited_send(self, element, invocation: MethodInvocation, timeout):
        """send_request behind the element's credit window (if any).

        Any settlement of the wire future -- reply, shed, failure,
        timeout, cancellation -- releases the credit exactly once.
        """
        credits = self.credits
        if credits is None:
            result = yield self.send_request(element, invocation, timeout)
            return result
        window = credits.window(invocation.target.identity, element)
        waiter = window.try_acquire()
        if waiter is not None:
            self.stats.credit_waits += 1
            tracer = self.services.tracer
            if tracer is not None and tracer.active:
                tracer.instant(
                    "credit-wait " + invocation.method,
                    "credit",
                    parent=invocation.env.trace,
                    component=self.component_label,
                    window=window.capacity,
                )
            yield waiter
        fut = self.send_request(element, invocation, timeout)
        fut.add_done_callback(window.release)
        result = yield fut
        return result

    def call_address(
        self,
        address: ObjectAddress,
        target: LOID,
        method: str,
        args: Tuple[Any, ...],
        env: CallEnvironment,
        timeout: Optional[float] = None,
        priority: int = 0,
    ):
        """Semantics-aware call of a (possibly replicated) Object Address.

        Returns a single value for FIRST/ANY_RANDOM, a list of all values
        for ALL, and a list of k values for K_OF_N.  Raises
        :class:`DeliveryFailure` when the semantic cannot be satisfied
        (e.g. every element of a FIRST list is stale).
        """
        semantic = address.semantic
        if semantic is AddressSemantic.FIRST:
            elements = address.elements
            selector = self._replica_selector
            if selector is not None and len(elements) > 1:
                # Locality-aware selection (repro.replication): try the
                # group nearest-first by link class from *this* caller's
                # host.  The sort is stable, so equally-near replicas keep
                # their group order and the schedule stays deterministic.
                elements = selector.order(self.element.host, elements)
            last_error: Optional[BaseException] = None
            for element in elements:
                try:
                    value = yield from self.call_element(
                        element, target, method, args, env, timeout, priority
                    )
                    return value
                except DeliveryFailure as exc:
                    last_error = exc
            assert last_error is not None
            raise last_error
        if semantic is AddressSemantic.ANY_RANDOM:
            rng = self.services.rng.stream("address-any-random")
            (element,) = address.targets(rng)
            value = yield from self.call_element(
                element, target, method, args, env, timeout, priority
            )
            return value
        if self._flow is None:
            invocation_futs = [
                self.send_request(
                    element,
                    MethodInvocation(target=target, method=method, args=args, env=env),
                    timeout,
                )
                for element in address.elements
            ]
        else:
            # Fan-out under flow control: acquire each element's credit
            # (possibly waiting) before its leg fires, sequentially in
            # element order so the acquisition schedule is deterministic.
            invocation = self._flow_invocation(
                target, method, args, env, timeout, priority
            )
            invocation_futs = []
            credits = self.credits
            for element in address.elements:
                if credits is not None:
                    waiter = credits.window(target.identity, element).try_acquire()
                    if waiter is not None:
                        self.stats.credit_waits += 1
                        yield waiter
                fut = self.send_request(element, invocation, timeout)
                if credits is not None:
                    fut.add_done_callback(
                        credits.window(target.identity, element).release
                    )
                invocation_futs.append(fut)
        if semantic is AddressSemantic.ALL:
            results: List[MethodResult] = yield gather(invocation_futs)
            return [r.unwrap() for r in results]
        # K_OF_N
        indexed = yield k_of(invocation_futs, address.k)
        return [r.unwrap() for _i, r in indexed]

    # -------------------------------------------------------------- resolution

    def resolve(self, loid: LOID, trace: Any = None):
        """Produce a Binding for ``loid``: local cache, then Binding Agent.

        This is exactly the start of the paper's section 4.1.2 walk; the
        *agent* performs any deeper search (other agents, the class, the
        magistrate).  Raises :class:`BindingNotFound` when no agent is
        configured and the cache misses.  ``trace`` optionally parents
        the resolution's span (the caller's invoke span).
        """
        cached = self.lookup_binding(loid)
        tracer = self.services.tracer
        traced = tracer is not None and tracer.active
        if cached is not None:
            if traced:
                tracer.instant(
                    "resolve",
                    "resolve",
                    parent=trace,
                    component=self.component_label,
                    cache="hit",
                )
            return cached
        span = None
        if traced:
            span = tracer.start(
                "resolve", "resolve", parent=trace, component=self.component_label
            )
            span.annotate(cache="miss")
            trace = span.context
        try:
            binding = yield from self._agent_get_binding(loid, trace=trace)
        except BaseException as exc:
            if span is not None:
                span.status = type(exc).__name__
            raise
        finally:
            if span is not None:
                tracer.finish(span)
        self.cache.insert(binding)
        return binding

    def _agent_get_binding(self, query, trace: Any = None):
        """GetBinding(LOID) or GetBinding(binding) on our Binding Agent."""
        agent = self.binding_agent
        if agent is None:
            if isinstance(query, Binding):
                raise BindingNotFound(
                    f"stale binding for {query.loid} and no Binding Agent configured",
                    loid=query.loid,
                )
            raise BindingNotFound(
                f"no cached binding for {query} and no Binding Agent configured",
                loid=query,
            )
        self.stats.agent_lookups += 1
        env = CallEnvironment.originating(self.loid)
        if trace is not None:
            env = env.with_trace(trace)
        binding = yield from self.call_address(
            agent.address, agent.loid, "GetBinding", (query,), env
        )
        if binding is None:
            loid = query.loid if isinstance(query, Binding) else query
            raise BindingNotFound(f"Binding Agent found no binding for {loid}", loid=loid)
        return binding

    def _refresh_binding(self, stale: Binding, trace: Any = None):
        """GetBinding(stale) with per-(loid, address) coalescing.

        When N in-flight calls share one dead address, the first failure
        starts the refresh and the other N-1 ride its future -- one
        GetBinding on the wire, one cache insert, no refresh storm.
        """
        key = (stale.loid.identity, stale.address)
        inflight = self._refreshing.get(key)
        if inflight is not None:
            binding = yield inflight
            return binding
        fut = SimFuture(f"refresh {stale.loid}")
        self._refreshing[key] = fut
        self.stats.refreshes += 1
        try:
            binding = yield from self._agent_get_binding(stale, trace=trace)
        except BaseException as exc:
            self._refreshing.pop(key, None)
            fut.set_exception(exc)
            raise
        self._refreshing.pop(key, None)
        self.cache.insert(binding)
        fut.set_result(binding)
        return binding

    # ------------------------------------------------------------------- invoke

    def invoke(
        self,
        target: LOID,
        method: str,
        *args: Any,
        env: Optional[CallEnvironment] = None,
        timeout: Optional[float] = None,
        priority: int = 0,
    ):
        """The full non-blocking method invocation path (section 4.1).

        Resolution, call, stale detection, refresh, retry::

            result = yield from runtime.invoke(loid, "Ping")

        ``env`` defaults to a fresh environment rooted at this object;
        nested calls inside a server method should pass
        ``ctx.nested_env(self.loid)`` instead to preserve the Responsible
        Agent across hops.

        A plain dispatcher: returns the compiled entry generator, so
        configuration checks and the cache lookup happen when the call
        first *runs*, not when the generator is created -- a spawned
        invoke may start many events after the spawn, across a config
        change.
        """
        return self._invoke_entry(target, method, args, env, timeout, priority)

    def _invoke_entry(self, target, method, args, env, timeout, priority):
        """The compiled invoke pipeline (repro.core.callpath).

        For the zero-middleware configuration (no tracer installed, no
        flow config) hitting a warm single-element FIRST binding, the
        whole call is this one flat generator frame: lookup, one
        request, one reply, unwrap -- instead of the historical
        invoke -> resolve -> call_address -> call_element ->
        send_request generator nest.  Anything else -- enabled
        middleware, a cold cache, a replicated address, a failed first
        attempt, an exhausted attempt budget -- falls through to
        :meth:`_invoke_loop`, the single source of truth for
        retry/refresh/backoff semantics.
        """
        if self._callpath_epoch != self.services.callpath_epoch:
            compile_invoke_path(self)
        if not self._plain_path:
            value = yield from self._invoke_general(
                target, method, args, env, timeout, priority
            )
            return value
        stats = self.stats
        stats.invocations += 1
        if env is None:
            env = CallEnvironment.originating(self.loid)
        policy = self.retry_policy
        binding = self.lookup_binding(target)
        if (
            binding is None
            or policy.max_attempts < 1
            or binding.address.semantic is not AddressSemantic.FIRST
            or len(binding.address.elements) != 1
        ):
            value = yield from self._invoke_loop(
                target, method, args, env, timeout, priority,
                None, False, policy, self.kernel.now, None, None,
            )
            return value
        started = self.kernel.now
        stats.attempts += 1
        invocation = MethodInvocation(target=target, method=method, args=args, env=env)
        try:
            result: MethodResult = yield self.send_request(
                binding.address.elements[0], invocation, timeout
            )
            return result.unwrap()
        except (Overloaded, DeliveryFailure) as exc:
            # PartitionedError and InvocationTimeout are DeliveryFailure
            # subclasses, so this catches every retryable transport-level
            # outcome; application errors propagate exactly as they do
            # from call_element.  Re-raising the failure inside the
            # loop's first iteration runs the identical handler chain
            # (shed pushback / staleness / refresh) the general path
            # would have run for a failed first attempt.
            value = yield from self._invoke_loop(
                target, method, args, env, timeout, priority,
                None, False, policy, started, binding, exc,
            )
            return value

    def _invoke_general(self, target, method, args, env, timeout, priority):
        """The fully-featured invoke entry (tracing and/or flow enabled)."""
        self.stats.invocations += 1
        if env is None:
            env = CallEnvironment.originating(self.loid)
        tracer = self.services.tracer
        traced = tracer is not None and tracer.active
        span = None
        if traced:
            # The logical operation's span: roots a fresh trace at a call
            # chain's origin, or nests under the server dispatch span the
            # caller's environment carries (ctx.nested_env propagation).
            span = tracer.start(
                "invoke " + method,
                "invoke",
                parent=env.trace,
                component=self.component_label,
            )
            span.annotate(target=str(target))
            env = env.with_trace(span.context)
        try:
            value = yield from self._invoke_loop(
                target, method, args, env, timeout, priority,
                span, traced, self.retry_policy, self.kernel.now, None, None,
            )
            return value
        except BaseException as exc:
            if span is not None:
                span.status = type(exc).__name__
            raise
        finally:
            if span is not None:
                tracer.finish(span)

    def _invoke_loop(
        self,
        target,
        method,
        args,
        env,
        timeout,
        priority,
        span,
        traced,
        policy,
        started,
        binding: Optional[Binding],
        injected: Optional[BaseException],
    ):
        """The resolution/call/refresh/retry loop behind every invoke.

        ``traced`` is the per-invoke cached tracing predicate -- computed
        once by the caller instead of re-testing ``tracer is not None
        and tracer.active`` on every backoff.

        ``binding``/``injected`` resume a fast-path attempt that already
        went to the wire and failed: the injected exception is re-raised
        inside the first iteration's try block (which is why that
        iteration neither counts an attempt nor resolves -- the fast
        path already did both), so the fallback behaves exactly as if
        the loop itself had made the attempt.
        """
        tracer = self.services.tracer
        last_error: Optional[BaseException] = None
        pushback = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                if not self._take_retry_token():
                    break
                delay = policy.backoff_delay(
                    attempt, self.services.rng.stream("retry-backoff")
                )
                if pushback > 0.0:
                    # The server told us when admission is plausible;
                    # hammering the queue any earlier is wasted wire.
                    if delay < pushback:
                        delay = pushback
                    pushback = 0.0
                if (
                    policy.budget is not None
                    and self.kernel.now - started + delay >= policy.budget
                ):
                    self.stats.budget_exhausted += 1
                    break
                if delay > 0.0:
                    if traced:
                        tracer.instant(
                            "retry-backoff",
                            "retry",
                            parent=env.trace,
                            component=self.component_label,
                            attempt=attempt,
                            delay=round(delay, 3),
                        )
                    yield Timeout(delay)
            if injected is None:
                self.stats.attempts += 1
            if binding is None:
                # Resolution is part of the attempt: the walk to the
                # agent (and onward to the class) crosses the same
                # faulty network the call does, so a patient policy
                # retries its partitions and losses under the same
                # backoff/budget instead of leaking them to the caller.
                try:
                    binding = yield from self.resolve(target, trace=env.trace)
                except Overloaded as exc:
                    # The resolution path itself (agent or class) shed
                    # us; always retryable, paced by its pushback hint.
                    last_error = exc
                    if policy.honor_retry_after:
                        pushback = exc.retry_after
                    continue
                except PartitionedError as exc:
                    if not policy.retry_partitions:
                        raise
                    last_error = exc
                    continue
                except (DeliveryFailure, BindingNotFound) as exc:
                    if not policy.retry_resolution_failures:
                        raise
                    last_error = exc
                    continue
            try:
                if injected is not None:
                    error, injected = injected, None
                    raise error
                value = yield from self.call_address(
                    binding.address, target, method, args, env, timeout,
                    priority,
                )
                if span is not None and attempt > 1:
                    span.annotate(attempts=attempt)
                return value
            except Overloaded as exc:
                # Admission-control shed: the binding is *not* stale.
                # No invalidate, no refresh, no rebind -- just wait out
                # the server's retry_after hint and try again.
                last_error = exc
                if policy.honor_retry_after:
                    pushback = exc.retry_after
            except PartitionedError as exc:
                # The destination's site is unreachable; a refreshed
                # binding cannot help until the partition heals, and
                # retrying through intermediaries just multiplies traffic.
                # A patient policy instead backs off and waits the heal out.
                self.stats.stale_detected += 1
                if not policy.retry_partitions:
                    raise
                last_error = exc
            except DeliveryFailure as exc:
                # Stale binding (4.1.4): drop it and ask for a refresh,
                # passing the stale binding so the agent knows not to
                # hand back its own identical cached copy.
                self.stats.stale_detected += 1
                self.cache.invalidate_exact(binding)
                last_error = exc
                try:
                    binding = yield from self._refresh_binding(
                        binding, trace=env.trace
                    )
                    self.stats.rebinds += 1
                except BindingNotFound as missing:
                    # The agent (or the recovery path behind it) found
                    # nothing.  Usually fatal; a patient policy keeps the
                    # old binding and retries -- recovery may still be
                    # running, or the control path may be partitioned.
                    if not policy.retry_resolution_failures:
                        raise missing from exc
                    last_error = missing
                except DeliveryFailure:
                    # The refresh leg itself was lost (a lossy network,
                    # not a stale binding).  Keep the old binding and let
                    # the retry budget govern: the next attempt may get
                    # through, and a genuinely dead address will exhaust
                    # the attempts into BindingNotFound below.
                    pass
        if isinstance(last_error, (PartitionedError, Overloaded)):
            raise last_error
        raise BindingNotFound(
            f"could not reach {target} after {policy.max_attempts} attempts",
            loid=target,
        ) from last_error

    # ---------------------------------------------------------------- teardown

    def fail_pending(self, reason: str) -> None:
        """Fail all in-flight calls (object deactivating or migrating).

        Cancels each call's pending ``_expire`` timeout event too, so a
        stale timeout can never fire after the failure was delivered.
        """
        pending, self._pending = self._pending, {}
        for corr, fut in pending.items():
            self._cancel_timeout(corr)
            if self._request_spans:
                self._finish_request_span(corr, "cancelled")
            if not fut.done():
                self.stats.cancelled += 1
                fut.set_exception(DeliveryFailure(f"runtime torn down: {reason}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LegionRuntime {self.loid} @{self.element} pending={len(self._pending)}>"
