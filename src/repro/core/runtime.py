"""LegionRuntime: the per-object Legion-aware communication layer.

"Since A is a Legion object, it contains a Legion-aware communication
layer which may implement a binding cache." (paper section 4.1.2)

Each active object owns one runtime.  The runtime:

* keeps the object's **binding cache** (first stop of every resolution);
* knows the object's **Binding Agent** -- "the persistent state of each
  Legion object contains the Object Address of its Binding Agent"
  (section 3.6) -- and consults it on cache misses;
* detects **stale bindings** via DELIVERY_FAILURE notices (section 4.1.4),
  invalidates them, asks the agent for a refresh by passing the *stale
  binding itself* to GetBinding(binding), and retries;
* implements the **Object Address semantics** of section 3.4 on send:
  FIRST tries elements in order, ANY_RANDOM picks one, ALL fans out and
  gathers every reply, K_OF_N fans out and returns the first k.

All remote calls are generator-style: ``value = yield from rt.invoke(...)``
inside a simulation process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import BindingNotFound, DeliveryFailure, InvocationTimeout, PartitionedError
from repro.core.method import MethodInvocation, MethodResult
from repro.naming.binding import Binding
from repro.naming.cache import BindingCache
from repro.naming.loid import LOID
from repro.net.address import AddressSemantic, ObjectAddress, ObjectAddressElement
from repro.net.message import Message
from repro.security.environment import CallEnvironment
from repro.simkernel.futures import SimFuture, gather, k_of
from repro.simkernel.kernel import SimKernel


@dataclass
class RuntimeStats:
    """Per-object communication statistics (feed the experiments)."""

    invocations: int = 0
    requests_sent: int = 0
    replies_received: int = 0
    stale_detected: int = 0
    refreshes: int = 0
    timeouts: int = 0
    agent_lookups: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.invocations = self.requests_sent = self.replies_received = 0
        self.stale_detected = self.refreshes = self.timeouts = 0
        self.agent_lookups = 0


class LegionRuntime:
    """The communication layer of one active Legion object."""

    #: How many stale-binding refresh cycles invoke() tolerates before
    #: giving up with BindingNotFound.  Kept small because refreshes can
    #: nest (a refresh's own requests may retry): depth-k call chains cost
    #: up to (MAX_REFRESH_ATTEMPTS+1)^k attempts in the worst case.
    MAX_REFRESH_ATTEMPTS = 3

    def __init__(
        self,
        services,
        loid: LOID,
        element: ObjectAddressElement,
        cache_capacity: Optional[int] = 128,
        default_timeout: Optional[float] = None,
    ) -> None:
        self.services = services
        self.kernel: SimKernel = services.kernel
        self.loid = loid
        self.element = element
        self.cache = BindingCache(capacity=cache_capacity)
        self.stats = RuntimeStats()
        #: The object's Binding Agent (LOID + address), per section 3.6.
        self.binding_agent: Optional[Binding] = None
        #: Per-request deadline when messages can be silently dropped.
        self.default_timeout = default_timeout
        self._pending: Dict[int, SimFuture] = {}
        self._timeout_handles: Dict[int, Any] = {}
        #: Metrics-style "kind:name" label used on spans this runtime
        #: records; the owning ObjectServer overwrites it with its
        #: ComponentId so traces and counters share a vocabulary.
        self.component_label = str(loid)
        #: correlation id → open "request" span (only populated while a
        #: trace is active; stays empty -- one truthiness test -- otherwise).
        self._request_spans: Dict[int, Any] = {}
        #: Non-evictable well-known bindings (the core objects).  A
        #: transient failure (e.g. a partition) may invalidate the cached
        #: copy, but resolution falls back here, so connectivity loss is
        #: never promoted into permanent amnesia about the core objects.
        self._permanent: Dict[tuple, Binding] = {}

    # ------------------------------------------------------------------ wiring

    def set_binding_agent(self, agent: Binding) -> None:
        """Install the Binding Agent this object consults on cache misses."""
        self.binding_agent = agent

    def seed_binding(self, binding: Binding, permanent: bool = False) -> None:
        """Pre-load the cache (bootstrap and AddBinding-style propagation).

        ``permanent=True`` marks a well-known binding that survives any
        invalidation (used for the core class objects).
        """
        if permanent:
            self._permanent[binding.loid.identity] = binding
        self.cache.insert(binding)

    def lookup_binding(self, loid: LOID) -> Optional[Binding]:
        """Cache lookup with fallback to the permanent well-known seeds."""
        binding = self.cache.lookup(loid, self.kernel.now)
        if binding is None:
            binding = self._permanent.get(loid.identity)
            if binding is not None:
                self.cache.insert(binding)
        return binding

    # --------------------------------------------------------------- message in

    def handle_reply(self, message: Message) -> None:
        """Route an incoming REPLY to its waiting future."""
        fut = self._pending.pop(message.correlation_id, None)
        self._cancel_timeout(message.correlation_id)
        if self._request_spans:
            self._finish_request_span(message.correlation_id, "ok")
        if fut is None or fut.done():
            return  # late reply after timeout; drop
        self.stats.replies_received += 1
        fut.set_result(message.payload)

    def handle_delivery_failure(self, message: Message) -> None:
        """Route a DELIVERY_FAILURE notice to its waiting future."""
        fut = self._pending.pop(message.correlation_id, None)
        self._cancel_timeout(message.correlation_id)
        if self._request_spans:
            self._finish_request_span(message.correlation_id, "delivery-failure")
        if fut is None or fut.done():
            return
        reason = str(message.payload)
        exc_type = PartitionedError if "partition" in reason else DeliveryFailure
        fut.set_exception(
            exc_type(
                f"delivery to {message.source} failed: {reason}",
                element=message.source,
            )
        )

    def _cancel_timeout(self, correlation_id: int) -> None:
        handle = self._timeout_handles.pop(correlation_id, None)
        if handle is not None:
            handle.cancel()

    def _finish_request_span(self, correlation_id: int, status: str) -> None:
        span = self._request_spans.pop(correlation_id, None)
        if span is not None:
            tracer = self.services.tracer
            if tracer is not None:
                tracer.finish(span, status)

    # --------------------------------------------------------------- message out

    def send_request(
        self,
        element: ObjectAddressElement,
        invocation: MethodInvocation,
        timeout: Optional[float] = None,
    ) -> SimFuture:
        """Fire one REQUEST at one element; future resolves with MethodResult.

        The future fails with :class:`DeliveryFailure` on a stale element
        and with :class:`InvocationTimeout` if a deadline was set and no
        reply arrived in time.
        """
        message = Message.request(self.element, element, invocation)
        # The name is debugging metadata only; formatting the invocation
        # eagerly here would dominate the warm-call profile, so keep the
        # cheap constant part (errors still carry the full invocation).
        fut = SimFuture(invocation.method)
        self._pending[message.correlation_id] = fut
        self.stats.requests_sent += 1
        tracer = self.services.tracer
        if tracer is not None and tracer.active:
            link = self.services.network.latency.classify(
                self.element.host, element.host
            )
            span = tracer.start(
                "request " + invocation.method,
                "request",
                parent=invocation.env.trace,
                component=self.component_label,
                link=link.value,
            )
            message.trace = span.context
            self._request_spans[message.correlation_id] = span
        deadline = timeout if timeout is not None else self.default_timeout
        if deadline is not None:
            corr = message.correlation_id

            def _expire() -> None:
                pending = self._pending.pop(corr, None)
                self._timeout_handles.pop(corr, None)
                if self._request_spans:
                    self._finish_request_span(corr, "timeout")
                if pending is not None and not pending.done():
                    self.stats.timeouts += 1
                    pending.set_exception(
                        InvocationTimeout(
                            f"no reply to {invocation} within {deadline}",
                            element=element,
                        )
                    )

            self._timeout_handles[corr] = self.kernel.schedule(deadline, _expire)
        self.services.network.send(message)
        return fut

    def send_event(
        self, element: ObjectAddressElement, payload: Any, trace: Any = None
    ) -> None:
        """Fire-and-forget EVENT (exception reports, invalidation gossip).

        ``trace`` optionally parents the event's span (e.g. the dispatch
        span of the method emitting invalidation gossip).
        """
        message = Message.event(self.element, element, payload)
        tracer = self.services.tracer
        if tracer is not None and tracer.active:
            span = tracer.instant(
                "event",
                "event",
                parent=trace,
                component=self.component_label,
                link=self.services.network.latency.classify(
                    self.element.host, element.host
                ).value,
            )
            message.trace = span.context
        self.services.network.send(message)

    # ----------------------------------------------------------------- calls

    def call_element(
        self,
        element: ObjectAddressElement,
        target: LOID,
        method: str,
        args: Tuple[Any, ...],
        env: CallEnvironment,
        timeout: Optional[float] = None,
    ):
        """Process-style call of one element; returns the unwrapped value."""
        invocation = MethodInvocation(target=target, method=method, args=args, env=env)
        result: MethodResult = yield self.send_request(element, invocation, timeout)
        return result.unwrap()

    def call_address(
        self,
        address: ObjectAddress,
        target: LOID,
        method: str,
        args: Tuple[Any, ...],
        env: CallEnvironment,
        timeout: Optional[float] = None,
    ):
        """Semantics-aware call of a (possibly replicated) Object Address.

        Returns a single value for FIRST/ANY_RANDOM, a list of all values
        for ALL, and a list of k values for K_OF_N.  Raises
        :class:`DeliveryFailure` when the semantic cannot be satisfied
        (e.g. every element of a FIRST list is stale).
        """
        semantic = address.semantic
        if semantic is AddressSemantic.FIRST:
            last_error: Optional[BaseException] = None
            for element in address.elements:
                try:
                    value = yield from self.call_element(
                        element, target, method, args, env, timeout
                    )
                    return value
                except DeliveryFailure as exc:
                    last_error = exc
            assert last_error is not None
            raise last_error
        if semantic is AddressSemantic.ANY_RANDOM:
            rng = self.services.rng.stream("address-any-random")
            (element,) = address.targets(rng)
            value = yield from self.call_element(element, target, method, args, env, timeout)
            return value
        invocation_futs = [
            self.send_request(
                element,
                MethodInvocation(target=target, method=method, args=args, env=env),
                timeout,
            )
            for element in address.elements
        ]
        if semantic is AddressSemantic.ALL:
            results: List[MethodResult] = yield gather(invocation_futs)
            return [r.unwrap() for r in results]
        # K_OF_N
        indexed = yield k_of(invocation_futs, address.k)
        return [r.unwrap() for _i, r in indexed]

    # -------------------------------------------------------------- resolution

    def resolve(self, loid: LOID, trace: Any = None):
        """Produce a Binding for ``loid``: local cache, then Binding Agent.

        This is exactly the start of the paper's section 4.1.2 walk; the
        *agent* performs any deeper search (other agents, the class, the
        magistrate).  Raises :class:`BindingNotFound` when no agent is
        configured and the cache misses.  ``trace`` optionally parents
        the resolution's span (the caller's invoke span).
        """
        cached = self.lookup_binding(loid)
        tracer = self.services.tracer
        traced = tracer is not None and tracer.active
        if cached is not None:
            if traced:
                tracer.instant(
                    "resolve",
                    "resolve",
                    parent=trace,
                    component=self.component_label,
                    cache="hit",
                )
            return cached
        span = None
        if traced:
            span = tracer.start(
                "resolve", "resolve", parent=trace, component=self.component_label
            )
            span.annotate(cache="miss")
            trace = span.context
        try:
            binding = yield from self._agent_get_binding(loid, trace=trace)
        except BaseException as exc:
            if span is not None:
                span.status = type(exc).__name__
            raise
        finally:
            if span is not None:
                tracer.finish(span)
        self.cache.insert(binding)
        return binding

    def _agent_get_binding(self, query, trace: Any = None):
        """GetBinding(LOID) or GetBinding(binding) on our Binding Agent."""
        agent = self.binding_agent
        if agent is None:
            if isinstance(query, Binding):
                raise BindingNotFound(
                    f"stale binding for {query.loid} and no Binding Agent configured",
                    loid=query.loid,
                )
            raise BindingNotFound(
                f"no cached binding for {query} and no Binding Agent configured",
                loid=query,
            )
        self.stats.agent_lookups += 1
        env = CallEnvironment.originating(self.loid)
        if trace is not None:
            env = env.with_trace(trace)
        binding = yield from self.call_address(
            agent.address, agent.loid, "GetBinding", (query,), env
        )
        if binding is None:
            loid = query.loid if isinstance(query, Binding) else query
            raise BindingNotFound(f"Binding Agent found no binding for {loid}", loid=loid)
        return binding

    # ------------------------------------------------------------------- invoke

    def invoke(
        self,
        target: LOID,
        method: str,
        *args: Any,
        env: Optional[CallEnvironment] = None,
        timeout: Optional[float] = None,
    ):
        """The full non-blocking method invocation path (section 4.1).

        Resolution, call, stale detection, refresh, retry::

            result = yield from runtime.invoke(loid, "Ping")

        ``env`` defaults to a fresh environment rooted at this object;
        nested calls inside a server method should pass
        ``ctx.nested_env(self.loid)`` instead to preserve the Responsible
        Agent across hops.
        """
        self.stats.invocations += 1
        if env is None:
            env = CallEnvironment.originating(self.loid)
        tracer = self.services.tracer
        span = None
        if tracer is not None and tracer.active:
            # The logical operation's span: roots a fresh trace at a call
            # chain's origin, or nests under the server dispatch span the
            # caller's environment carries (ctx.nested_env propagation).
            span = tracer.start(
                "invoke " + method,
                "invoke",
                parent=env.trace,
                component=self.component_label,
            )
            span.annotate(target=str(target))
            env = env.with_trace(span.context)
        try:
            binding = yield from self.resolve(target, trace=env.trace)
            last_error: Optional[BaseException] = None
            for _attempt in range(self.MAX_REFRESH_ATTEMPTS + 1):
                try:
                    value = yield from self.call_address(
                        binding.address, target, method, tuple(args), env, timeout
                    )
                    return value
                except PartitionedError:
                    # The destination's site is unreachable; a refreshed
                    # binding cannot help until the partition heals, and
                    # retrying through intermediaries just multiplies traffic.
                    self.stats.stale_detected += 1
                    raise
                except DeliveryFailure as exc:
                    # Stale binding (4.1.4): drop it and ask for a refresh,
                    # passing the stale binding so the agent knows not to
                    # hand back its own identical cached copy.
                    self.stats.stale_detected += 1
                    self.cache.invalidate_exact(binding)
                    last_error = exc
                    self.stats.refreshes += 1
                    try:
                        binding = yield from self._agent_get_binding(
                            binding, trace=env.trace
                        )
                        self.cache.insert(binding)
                    except BindingNotFound as missing:
                        raise missing from exc
                    except DeliveryFailure:
                        # The refresh leg itself was lost (a lossy network,
                        # not a stale binding).  Keep the old binding and let
                        # the retry budget govern: the next attempt may get
                        # through, and a genuinely dead address will exhaust
                        # the attempts into BindingNotFound below.
                        pass
            raise BindingNotFound(
                f"could not reach {target} after {self.MAX_REFRESH_ATTEMPTS} refreshes",
                loid=target,
            ) from last_error
        except BaseException as exc:
            if span is not None:
                span.status = type(exc).__name__
            raise
        finally:
            if span is not None:
                tracer.finish(span)

    # ---------------------------------------------------------------- teardown

    def fail_pending(self, reason: str) -> None:
        """Fail all in-flight calls (object deactivating or migrating).

        Cancels each call's pending ``_expire`` timeout event too, so a
        stale timeout can never fire after the failure was delivered.
        """
        pending, self._pending = self._pending, {}
        for corr, fut in pending.items():
            self._cancel_timeout(corr)
            if self._request_spans:
                self._finish_request_span(corr, "cancelled")
            if not fut.done():
                fut.set_exception(DeliveryFailure(f"runtime torn down: {reason}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LegionRuntime {self.loid} @{self.element} pending={len(self._pending)}>"
