"""The is-a / kind-of / inherits-from relation graph (paper Fig. 2).

The three relations the class-mandatory member functions define
(section 2.1.1):

* **is-a** (Create): non-class object → its class.  "An object belongs to
  exactly one class."
* **kind-of** (Derive): subclass → superclass.  "A class ... is the
  subclass of exactly one superclass."
* **inherits-from** (InheritFrom): class → base class.  "A class can
  inherit from, and be a base class for, any number of other classes."

The graph is system-wide bookkeeping used for introspection, invariants
(tests assert, e.g., that the union of kind-of and is-a has LegionObject's
class as its only sink, per section 2.1.3), and the experiments' hierarchy
construction.  It is *descriptive*: the authoritative state lives in the
class objects' logical tables; this graph mirrors it.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Set

import networkx as nx

from repro.errors import ObjectModelError
from repro.naming.loid import LOID


class RelationKind(enum.Enum):
    """The three edge flavours of Fig. 2."""

    IS_A = "is-a"
    KIND_OF = "kind-of"
    INHERITS_FROM = "inherits-from"


class RelationGraph:
    """A typed multigraph over LOIDs recording the three relations.

    Edges point from the dependent object to the one it relates to:
    ``O --is-a--> C``, ``D --kind-of--> C``, ``C --inherits-from--> B``.
    """

    def __init__(self) -> None:
        self._graph = nx.MultiDiGraph()

    # -- recording ---------------------------------------------------------------

    def record_is_a(self, instance: LOID, cls: LOID) -> None:
        """O is-a C: set on Create().  At most one is-a edge per object."""
        existing = self.class_of(instance)
        if existing is not None:
            raise ObjectModelError(
                f"{instance} already is-a {existing}; an object belongs to "
                "exactly one class"
            )
        self._graph.add_edge(instance, cls, kind=RelationKind.IS_A)

    def record_kind_of(self, subclass: LOID, superclass: LOID) -> None:
        """D kind-of C: set on Derive().  At most one superclass."""
        existing = self.superclass_of(subclass)
        if existing is not None:
            raise ObjectModelError(
                f"{subclass} already kind-of {existing}; a class is the "
                "subclass of exactly one superclass"
            )
        self._graph.add_edge(subclass, superclass, kind=RelationKind.KIND_OF)

    def record_inherits_from(self, cls: LOID, base: LOID) -> None:
        """C inherits-from B: set on InheritFrom().  Many allowed."""
        if base in self.bases_of(cls):
            return  # idempotent
        if cls == base:
            raise ObjectModelError(f"{cls} cannot inherit from itself")
        # Reject inheritance cycles: the paper's inheritance is an active,
        # run-time process, and a cycle would make interface merging
        # non-terminating.
        if cls in self._inherits_closure(base):
            raise ObjectModelError(
                f"inherits-from cycle: {base} already (transitively) inherits from {cls}"
            )
        self._graph.add_edge(cls, base, kind=RelationKind.INHERITS_FROM)

    def forget(self, loid: LOID) -> None:
        """Remove an object and its incident edges (Delete())."""
        if self._graph.has_node(loid):
            self._graph.remove_node(loid)

    # -- single-step queries --------------------------------------------------------

    def _out_neighbours(self, loid: LOID, kind: RelationKind) -> List[LOID]:
        if not self._graph.has_node(loid):
            return []
        return [
            v
            for _u, v, data in self._graph.out_edges(loid, data=True)
            if data["kind"] is kind
        ]

    def _in_neighbours(self, loid: LOID, kind: RelationKind) -> List[LOID]:
        if not self._graph.has_node(loid):
            return []
        return [
            u
            for u, _v, data in self._graph.in_edges(loid, data=True)
            if data["kind"] is kind
        ]

    def class_of(self, instance: LOID) -> Optional[LOID]:
        """The unique class an object is-a, or None."""
        classes = self._out_neighbours(instance, RelationKind.IS_A)
        return classes[0] if classes else None

    def superclass_of(self, cls: LOID) -> Optional[LOID]:
        """The unique superclass a class is kind-of, or None (roots)."""
        supers = self._out_neighbours(cls, RelationKind.KIND_OF)
        return supers[0] if supers else None

    def bases_of(self, cls: LOID) -> List[LOID]:
        """All base classes (inherits-from targets)."""
        return self._out_neighbours(cls, RelationKind.INHERITS_FROM)

    def instances_of(self, cls: LOID) -> List[LOID]:
        """All recorded instances (is-a sources) of a class."""
        return self._in_neighbours(cls, RelationKind.IS_A)

    def subclasses_of(self, cls: LOID) -> List[LOID]:
        """All direct subclasses (kind-of sources) of a class."""
        return self._in_neighbours(cls, RelationKind.KIND_OF)

    # -- transitive queries -------------------------------------------------------------

    def ancestry(self, cls: LOID) -> List[LOID]:
        """The kind-of chain from ``cls`` up to its root, inclusive."""
        chain = [cls]
        seen = {cls}
        current = cls
        while True:
            parent = self.superclass_of(current)
            if parent is None:
                return chain
            if parent in seen:  # pragma: no cover - guarded at insert
                raise ObjectModelError(f"kind-of cycle through {parent}")
            chain.append(parent)
            seen.add(parent)
            current = parent

    def _inherits_closure(self, cls: LOID) -> Set[LOID]:
        closure: Set[LOID] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            for base in self.bases_of(current):
                if base not in closure:
                    closure.add(base)
                    stack.append(base)
        return closure

    def all_bases(self, cls: LOID) -> Set[LOID]:
        """Transitive inherits-from closure (excluding ``cls`` itself)."""
        return self._inherits_closure(cls)

    def is_derived_from(self, cls: LOID, ancestor: LOID) -> bool:
        """Whether ``ancestor`` is on ``cls``'s kind-of chain."""
        return ancestor in self.ancestry(cls)

    # -- invariants ------------------------------------------------------------------------

    def sinks(self) -> List[LOID]:
        """Nodes with no outgoing is-a or kind-of edges.

        Section 2.1.3: "the class object for LegionObject is the only sink
        in the graph that is implied by the union of the kind-of and is-a
        relations" -- tests assert this returns exactly [LegionObject].
        """
        out: List[LOID] = []
        for node in self._graph.nodes:
            edges = [
                data["kind"]
                for _u, _v, data in self._graph.out_edges(node, data=True)
            ]
            if not any(k in (RelationKind.IS_A, RelationKind.KIND_OF) for k in edges):
                out.append(node)
        return sorted(out)

    def node_count(self) -> int:
        """Number of objects the graph has seen."""
        return self._graph.number_of_nodes()

    def edge_count(self, kind: Optional[RelationKind] = None) -> int:
        """Number of edges, optionally of one kind."""
        if kind is None:
            return self._graph.number_of_edges()
        return sum(
            1 for _u, _v, data in self._graph.edges(data=True) if data["kind"] is kind
        )

    def __contains__(self, loid: LOID) -> bool:
        return self._graph.has_node(loid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RelationGraph nodes={self._graph.number_of_nodes()} "
            f"edges={self._graph.number_of_edges()}>"
        )
