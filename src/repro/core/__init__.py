"""The core Legion object model (paper sections 2, 3.7, 4.1-4.2).

This package implements the paper's primary contribution: the model of
cooperating core objects.  Its pieces:

* :mod:`repro.core.method` -- MethodInvocation / MethodResult envelopes;
  non-blocking method invocation as data.
* :mod:`repro.core.object_base` -- :class:`LegionObjectImpl`, the base of
  every object implementation, exporting the object-mandatory member
  functions (MayI, Iam, Ping, GetInterface, SaveState, RestoreState).
* :mod:`repro.core.runtime` -- the per-object Legion-aware communication
  layer: binding cache, Binding Agent consultation, stale-binding
  detection and refresh (section 4.1.4).
* :mod:`repro.core.server` -- the dispatch loop hosting an implementation
  at a network endpoint; accepts methods in any order, each invocation in
  its own simulated process.
* :mod:`repro.core.table` -- the class object's logical table (Fig. 16).
* :mod:`repro.core.legion_class` -- class objects with the class-mandatory
  member functions (Create, Derive, InheritFrom, Delete, GetBinding,
  GetInterface) and the Abstract / Private / Fixed class types.
* :mod:`repro.core.metaclass` -- LegionClass itself: class-identifier
  allocation and the responsibility pairs used to locate class objects
  (section 4.1.3).
* :mod:`repro.core.relations` -- the is-a / kind-of / inherits-from
  relation graph (Fig. 2).
"""

from repro.core.class_types import ClassFlavor
from repro.core.context import SystemServices
from repro.core.legion_class import ClassObjectImpl, CLASS_MANDATORY_INTERFACE
from repro.core.metaclass import LegionClassImpl
from repro.core.method import InvocationContext, MethodInvocation, MethodResult
from repro.core.object_base import (
    LegionObjectImpl,
    OBJECT_MANDATORY_INTERFACE,
    legion_method,
)
from repro.core.relations import RelationGraph, RelationKind
from repro.core.runtime import LegionRuntime
from repro.core.server import ObjectServer
from repro.core.table import LogicalTable, TableRow

__all__ = [
    "ClassFlavor",
    "SystemServices",
    "ClassObjectImpl",
    "CLASS_MANDATORY_INTERFACE",
    "LegionClassImpl",
    "InvocationContext",
    "MethodInvocation",
    "MethodResult",
    "LegionObjectImpl",
    "OBJECT_MANDATORY_INTERFACE",
    "legion_method",
    "RelationGraph",
    "RelationKind",
    "LegionRuntime",
    "ObjectServer",
    "LogicalTable",
    "TableRow",
]
