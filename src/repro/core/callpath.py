"""Call-path compilation: per-configuration dispatch pipelines.

The invoke/dispatch hot path accreted per-call feature guards as the
subsystems landed: flow admission, credit windows, request batching,
causal tracing, retry-token buckets, autoscale sampling.  Every one of
them is off in the default configuration, yet every call still paid the
branch tax of asking -- ``tracer is not None and tracer.active``, ``flow
is None``, ``admission is not None``, ``type(payload) is
BatchInvocation`` -- several times per message.

This module moves those questions from *call time* to *configuration
time*.  For each ``(runtime | server, FlowConfig, tracer, policy)``
configuration it compiles a flat pipeline -- concretely, it selects a
specialised entry function containing only the stages the configuration
enables -- so a disabled feature costs exactly zero instructions on the
hot path:

* the **invoke path** of :class:`~repro.core.runtime.LegionRuntime`
  compiles to a single flat generator for the zero-middleware
  configuration (no tracer installed, no flow config): cached-binding
  lookup, one request, one reply, unwrap.  Any deviation -- cache miss,
  multi-element address, a failure needing the retry machinery -- falls
  through to the general loop, which remains the single source of truth
  for retry/refresh/backoff semantics;
* the **dispatch path** of :class:`~repro.core.server.ObjectServer`
  compiles to one of four request handlers: admission-controlled,
  flow-aware (batch unpacking), traced, or the bare
  ``in_flight``/metrics/execute chain.

Recompilation is driven by a monotonic *epoch* counter on
:class:`~repro.core.context.SystemServices`: assigning ``tracer`` or
``flow`` bumps ``callpath_epoch``, and every compiled path carries the
epoch it was built at.  The entry functions compare epochs (one integer
compare) at the top of each call/dispatch and rebuild lazily when stale,
so ``enable_tracing``/``disable_tracing`` and test-style ``services.flow
= FlowConfig(...)`` assignments take effect exactly as they did when the
guards were evaluated per call.  Runtime-local configuration that the
pipeline keys on (``enable_batching``) recompiles eagerly.

The compiled behaviour is bit-identical to the guard-per-call behaviour:
the same messages, the same kernel events, the same counters, in the
same order.  ``tests/core/test_callpath.py`` pins both the recompile
triggers and a full fast-path-vs-general-path equivalence run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class InvokePathKey:
    """The configuration fingerprint of one runtime's compiled invoke path."""

    #: A SpanRecorder is installed (spans may be recorded; the recorder's
    #: own ``active`` flag is still honoured inside the traced path).
    traced: bool
    #: A FlowConfig is installed on this runtime (deadline/priority
    #: stamping, credit windows, batching all hang off it).
    flow: bool
    #: Caller-side credit windows are enabled.
    credits: bool
    #: A RequestBatcher exists (methods may still opt in later).
    batching: bool
    #: A replication directory with locality-aware selection is installed
    #: (repro.replication).  Orthogonal to ``plain``: the fast path only
    #: ever fires for single-element bindings, and multi-element groups --
    #: the only addresses selection can reorder -- always fall through to
    #: ``call_address``, so locality never invalidates the flat pipeline.
    locality: bool = False

    @property
    def plain(self) -> bool:
        """True when the zero-middleware fast path is valid."""
        return not (self.traced or self.flow)

    def stages(self) -> Tuple[str, ...]:
        """The enabled middleware stages, in pipeline order."""
        out = []
        if self.traced:
            out.append("tracing")
        if self.credits:
            out.append("credits")
        if self.batching:
            out.append("batching")
        if self.flow:
            out.append("flow")
        return tuple(out)


@dataclass(frozen=True)
class DispatchPathKey:
    """The configuration fingerprint of one server's compiled dispatch path."""

    #: Bounded admission queue in front of the dispatch loop.
    admission: bool
    #: A system-wide FlowConfig exists, so BatchInvocation payloads can
    #: arrive and must be unpacked.
    flow: bool
    #: A SpanRecorder is installed.
    traced: bool

    @property
    def plain(self) -> bool:
        """True when requests go straight to the bare execute chain."""
        return not (self.admission or self.flow or self.traced)

    def stages(self) -> Tuple[str, ...]:
        """The enabled middleware stages, in pipeline order."""
        out = []
        if self.admission:
            out.append("admission")
        if self.flow:
            out.append("batch-unpack")
        if self.traced:
            out.append("tracing")
        return tuple(out)


def invoke_path_key(runtime) -> InvokePathKey:
    """The key the runtime's invoke pipeline would compile under right now."""
    flow = runtime._flow
    replication = getattr(runtime.services, "replication", None)
    return InvokePathKey(
        traced=runtime.services.tracer is not None,
        flow=flow is not None,
        credits=runtime.credits is not None,
        batching=runtime._batcher is not None,
        locality=replication is not None and replication.locality,
    )


def dispatch_path_key(server) -> DispatchPathKey:
    """The key the server's dispatch pipeline would compile under right now."""
    return DispatchPathKey(
        admission=server.admission is not None,
        flow=server.services.flow is not None,
        traced=server.services.tracer is not None,
    )


def compile_invoke_path(runtime) -> InvokePathKey:
    """(Re)build ``runtime``'s invoke pipeline for the current config.

    Sets ``runtime._plain_path`` (the fast-path validity flag the entry
    generator branches on once per call) and stamps the services epoch,
    so the next epoch mismatch -- and only that -- recompiles.
    """
    key = invoke_path_key(runtime)
    runtime._invoke_key = key
    runtime._plain_path = key.plain
    if key.locality:
        # One selector object per compile, shared by every call_address on
        # this runtime; ``order`` is a pure function of (src host, group).
        replication = runtime.services.replication
        runtime._replica_selector = replication.selector(
            runtime.services.network.latency
        )
    else:
        runtime._replica_selector = None
    runtime._callpath_epoch = runtime.services.callpath_epoch
    return key


def compile_dispatch_path(server) -> DispatchPathKey:
    """(Re)build ``server``'s request-dispatch pipeline.

    Selects the one handler the configuration needs and installs it as
    ``server._request_path``; the other stages simply do not exist on
    the compiled path.
    """
    key = dispatch_path_key(server)
    if key.admission:
        # Admission owns the whole intake (it understands batches too).
        path = server.admission.arrive
    elif key.flow:
        # No admission on this server, but batched payloads may arrive.
        path = server._dispatch_flow
    elif key.traced:
        path = server._dispatch_request
    else:
        path = server._dispatch_plain
    server._dispatch_key = key
    server._request_path = path
    server._dispatch_epoch = server.services.callpath_epoch
    return key
