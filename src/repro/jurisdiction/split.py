"""Jurisdiction splitting (paper section 2.2).

"If a Jurisdiction's resources impose a substantial load on its
Magistrate, the Jurisdiction can be split, and a new Magistrate can be
created to take over responsibility for some of the resources and
objects."

:func:`split_jurisdiction` performs that operation on a live system:

1. a child Jurisdiction is created (jurisdictions "can be organized to
   form hierarchies") with its own vault;
2. a chosen subset of the hosts transfers: the old magistrate releases
   them, the new one adopts them, and the Host Objects' reporting line
   changes;
3. objects the old magistrate manages *on the transferred hosts* are
   Move()d to the new magistrate -- the standard migration protocol, no
   special cases;
4. the new magistrate registers with its class like any bootstrap-started
   magistrate (section 4.2.1), becoming locatable and schedulable.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import LegionError
from repro.core.server import ObjectServer
from repro.jurisdiction.jurisdiction import Jurisdiction
from repro.jurisdiction.magistrate import MagistrateImpl, ObjectState
from repro.metrics.counters import ComponentKind
from repro.naming.loid import LOID
from repro.persistence.storage import PersistentStore


def split_jurisdiction(
    system,
    site: str,
    new_name: Optional[str] = None,
    hosts_to_move: Optional[List[LOID]] = None,
    placement: str = "round-robin",
) -> ObjectServer:
    """Split ``site``'s jurisdiction; returns the new magistrate's server.

    ``hosts_to_move`` selects the transferred Host Objects (default: the
    second half of the jurisdiction's hosts).  Raises
    :class:`~repro.errors.LegionError` when the split would leave either
    side without hosts.
    """
    old_jurisdiction = system.jurisdictions[site]
    old_magistrate_server = system.magistrates[site]
    old_impl: MagistrateImpl = old_magistrate_server.impl
    new_name = new_name or f"{site}-split"
    if new_name in system.jurisdictions:
        raise LegionError(f"jurisdiction {new_name!r} already exists")

    all_hosts = list(old_jurisdiction.host_objects)
    if hosts_to_move is None:
        hosts_to_move = all_hosts[len(all_hosts) // 2 :]
    if not hosts_to_move or len(hosts_to_move) >= len(all_hosts):
        raise LegionError(
            "a split must leave at least one host on each side "
            f"(moving {len(hosts_to_move)} of {len(all_hosts)})"
        )

    # -- 1. the child jurisdiction, with its own storage.
    new_jurisdiction = Jurisdiction(new_name, parent=old_jurisdiction)
    new_jurisdiction.vault.add_store(PersistentStore(new_name, "disk0"))

    # -- 2. transfer the hosts.
    moved_host_servers = []
    for host_loid in hosts_to_move:
        host_server = next(
            s for s in system.host_servers.values() if s.loid == host_loid
        )
        moved_host_servers.append(host_server)
        host_id = host_server.impl.host_id
        old_jurisdiction.remove_host(host_id, host_loid)
        new_jurisdiction.add_host(host_id, host_loid)
        old_impl.remove_host(host_loid)

    # -- 3. the new magistrate, started out-of-band like any magistrate.
    magistrate_class = system.standard_classes["StandardMagistrate"]
    new_impl = MagistrateImpl(new_jurisdiction, placement=placement)
    new_loid = magistrate_class.impl._allocate_instance_loid()
    new_server = ObjectServer(
        system.services,
        new_loid,
        new_impl,
        host=moved_host_servers[0].impl.host_id,
        component_kind=ComponentKind.MAGISTRATE,
        component_name=new_name,
    )
    agent_binding = system.agents[site].binding()
    new_server.runtime.set_binding_agent(agent_binding)
    new_jurisdiction.magistrate = new_loid
    for host_server in moved_host_servers:
        new_impl.add_host(host_server.binding())
        host_server.impl.magistrate = new_loid
    system.jurisdictions[new_name] = new_jurisdiction
    system.magistrates[new_name] = new_server
    system.site_hosts[new_name] = [s.impl.host_id for s in moved_host_servers]

    # -- 4. register with LegionMagistrate's subclass (4.2.1) and hand over
    #    the objects living on the transferred hosts.
    fut = system.kernel.spawn(
        new_server.runtime.invoke(
            magistrate_class.loid, "RegisterOutOfBand", new_server.binding()
        ),
        name=f"register-split-{new_name}",
    )
    system.kernel.run_until_complete(fut)

    # Objects currently Active on the transferred hosts follow the hosts;
    # Inert objects stay in the old vault (their OPRs already live there).
    moved_hosts = {s.loid for s in moved_host_servers}
    to_move = [
        record.loid
        for record in old_impl.managed.values()
        if record.state is ObjectState.ACTIVE and record.host in moved_hosts
    ]
    console = system.console
    for loid in to_move:
        fut = system.kernel.spawn(
            console.runtime.invoke(
                old_magistrate_server.loid, "Move", loid, new_loid
            ),
            name=f"split-move-{loid}",
        )
        system.kernel.run_until_complete(fut)

    # New creations may now be placed on the new magistrate too.
    for role in ("LegionObject", "LegionClass"):
        candidates = system.core[role].impl.candidate_magistrates
        if candidates is not None and new_loid not in candidates:
            candidates.append(new_loid)
    return new_server
