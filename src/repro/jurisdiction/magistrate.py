"""MagistrateImpl: the object in charge of a Jurisdiction (section 3.8).

"The purpose of a Magistrate is to perform the activation, deactivation,
and migration of the Legion objects under its control. ...  Magistrates
are not intended to be complex decision making entities.  Instead, they
should act as mechanisms by which other Legion objects implement policies
and algorithms.  As a likely security boundary for the objects it manages,
a Magistrate has the authority to reject requests."

Exported member functions (the paper's list, plus the cooperation methods
the creation and migration protocols need):

* ``Activate(LOID)`` / ``Activate(LOID, LOID)`` -- activate, optionally on
  a suggested Host Object; returns the Object Address.
* ``Deactivate(LOID)`` -- save state into an OPR in the vault.
* ``Delete(LOID)`` -- remove Active and Inert copies from existence.
* ``Copy(LOID, LOID)`` / ``Move(LOID, LOID)`` -- inter-jurisdiction
  migration; Move is "equivalent to Copy() then Delete()".
* ``CreateObject(opr, host_hint)`` -- the class-object cooperation path of
  section 4.2 ("the actual creation of the object is carried out by the
  Magistrate and Host Object").
* ``ImportObject(bytes)`` / ``ExportObject(LOID)`` -- the receiving/sending
  halves of migration.
* ``ReportExceptions(host, list)`` -- Host Objects report reaped crashes.

Every method is guarded by the magistrate's MayI policy (site autonomy:
"an organization may choose to implement its own Magistrate"), and the
admission hook :meth:`admit_opr` lets subclasses refuse objects whose
implementations they do not trust -- the DOE scenario of Fig. 9.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    BindingNotFound,
    DeliveryFailure,
    InvocationTimeout,
    LegionError,
    LifecycleError,
    NoCapacity,
    PartitionedError,
    ProcessKilled,
    RequestRefused,
    UnknownObject,
)
from repro.core.method import InvocationContext
from repro.core.object_base import LegionObjectImpl, legion_method
from repro.jurisdiction.jurisdiction import Jurisdiction
from repro.naming.binding import Binding
from repro.naming.loid import LOID
from repro.net.address import ObjectAddress
from repro.persistence.opr import OPRecord
from repro.simkernel.futures import SimFuture


class ObjectState(enum.Enum):
    """The two object states of section 3.1."""

    ACTIVE = "active"
    INERT = "inert"


@dataclass
class ManagedObject:
    """The magistrate's record of one object under its control."""

    loid: LOID
    class_loid: LOID
    state: ObjectState
    #: Host Object the process runs on (Active only).
    host: Optional[LOID] = None
    #: Current Object Address (Active only).
    address: Optional[ObjectAddress] = None
    #: The OPR template (identity + factory chain, no state); combined with
    #: freshly saved state on each deactivation.
    template: Optional[OPRecord] = None
    #: For system-level replicated objects (section 4.3): the (host LOID,
    #: Object Address) of each replica process this magistrate runs.
    replicas: List[Tuple[LOID, ObjectAddress]] = field(default_factory=list)
    #: True when the object went Inert through failure (demotion), not a
    #: clean Deactivate; the next successful activation is a *recovery*
    #: and is reported to ``services.fault_log`` as such.
    lost: bool = False


class MagistrateImpl(LegionObjectImpl):
    """The base Magistrate.  Site-specific subclasses override policy."""

    def __init__(
        self,
        jurisdiction: Jurisdiction,
        placement: str = "round-robin",
    ) -> None:
        if placement not in ("round-robin", "least-loaded", "first-fit"):
            raise ValueError(f"unknown placement policy {placement!r}")
        self.jurisdiction = jurisdiction
        self.placement = placement
        self.managed: Dict[Tuple[int, int], ManagedObject] = {}
        #: Bindings of the jurisdiction's Host Objects, in adoption order.
        self.hosts: List[Binding] = []
        self._host_rr = 0
        #: (host LOID, object LOID, reason) triples from ReportExceptions.
        self.exception_log: List[Tuple[LOID, LOID, str]] = []
        #: Standing placement suggestions from Scheduling Agents: object
        #: identity → suggested Host Object, consumed at next activation.
        self.placement_suggestions: Dict[Tuple[int, int], LOID] = {}
        #: Host identities believed crashed (probe failed hard).  Placement
        #: skips them; re-adopting the host via AddHost clears the mark.
        self.suspect_hosts: set = set()
        #: object identity → in-flight recovery future, so concurrent
        #: RecoverObject calls for one lost object coalesce onto a single
        #: probe + reactivation instead of double-activating.
        self._recovering: Dict[Tuple[int, int], SimFuture] = {}

    # --------------------------------------------------------------------- hosts

    @legion_method("AddHost(binding)")
    def add_host(self, host: Binding) -> None:
        """Adopt a Host Object into this jurisdiction."""
        if all(h.loid != host.loid for h in self.hosts):
            self.hosts.append(host)
        self.suspect_hosts.discard(host.loid.identity)
        self.runtime.seed_binding(host)

    @legion_method("RemoveHost(LOID)")
    def remove_host(self, host: LOID) -> None:
        """Withdraw a Host Object (its running objects keep running)."""
        self.hosts = [h for h in self.hosts if h.loid != host]

    # ----------------------------------------------------------- scheduling hooks

    @legion_method("list GetHosts()")
    def get_hosts(self) -> List[LOID]:
        """The jurisdiction's Host Objects (for Scheduling Agents).

        Part of the "primitive scheduling functions exported by the
        Magistrates" (section 3.8) that agents build policies on.
        """
        return [h.loid for h in self.hosts]

    @legion_method("SetPlacementPolicy(string)")
    def set_placement_policy(self, policy: str) -> None:
        """Switch the default host-selection policy at run time."""
        if policy not in ("round-robin", "least-loaded", "first-fit"):
            raise RequestRefused(f"unknown placement policy {policy!r}")
        self.placement = policy

    @legion_method("SuggestPlacement(LOID, LOID)")
    def suggest_placement(self, loid: LOID, host: LOID) -> None:
        """A Scheduling Agent pre-pins the host for an object's NEXT
        activation (the hook of sections 3.7-3.8: agents "suggest how to
        schedule the objects in the Jurisdiction").  Consumed once."""
        if all(h.loid != host for h in self.hosts):
            raise RequestRefused(
                f"host {host} is not in jurisdiction {self.jurisdiction.name}"
            )
        self.placement_suggestions[loid.identity] = host

    def _choose_host(self, hint: Optional[LOID], env, loid: Optional[LOID] = None) -> LOID:
        """Pick the Host Object for an activation."""
        if hint is None and loid is not None:
            hint = self.placement_suggestions.pop(loid.identity, None)
        if hint is not None:
            if all(h.loid != hint for h in self.hosts):
                raise RequestRefused(
                    f"host {hint} is not in jurisdiction {self.jurisdiction.name}"
                )
            if hint.identity in self.suspect_hosts:
                raise RequestRefused(f"host {hint} is suspected failed")
            return hint
        if not self.hosts:
            raise NoCapacity(f"jurisdiction {self.jurisdiction.name} has no hosts")
        if self.placement == "least-loaded":
            chosen = yield from self._least_loaded_host(env)
            return chosen
        if self.placement == "first-fit":
            chosen = yield from self._first_fit_host(env)
            return chosen
        if not self.suspect_hosts:
            self._host_rr = (self._host_rr + 1) % len(self.hosts)
            return self.hosts[self._host_rr].loid
        # Same rotation, skipping suspects (the no-suspects arithmetic above
        # is kept verbatim so fault-free placement patterns are unchanged).
        for _ in range(len(self.hosts)):
            self._host_rr = (self._host_rr + 1) % len(self.hosts)
            candidate = self.hosts[self._host_rr]
            if candidate.loid.identity not in self.suspect_hosts:
                return candidate.loid
        raise NoCapacity(
            f"every host in jurisdiction {self.jurisdiction.name} is suspected failed"
        )

    def _probe_host(self, host_loid: LOID, method: str, args: tuple, env):
        """One direct call, classified as liveness evidence.

        Returns ``("alive", value)``, ``("dead", None)``, or
        ``("unknown", None)``.  A single un-retried ``call_address`` keeps
        the evidence unambiguous: only a hard bounce (no endpoint
        registered at the host's address -- the Host Object is down) counts
        as dead.  Timeouts and partitions are *not* proof: on a lossy or
        split network a live host looks exactly the same, and declaring it
        dead would leak capacity (or split-brain a recovery), so those
        return "unknown" and the caller re-probes on a later sweep.
        """
        try:
            binding = yield from self.runtime.resolve(host_loid, trace=env.trace)
        except ProcessKilled:
            raise  # the probing process is being torn down, not evidence
        except LegionError:
            return ("unknown", None)  # control-path trouble, not host evidence
        try:
            value = yield from self.runtime.call_address(
                binding.address, host_loid, method, args, env
            )
            return ("alive", value)
        except (PartitionedError, InvocationTimeout):
            return ("unknown", None)
        except DeliveryFailure:
            self.runtime.cache.invalidate_exact(binding)
            return ("dead", None)
        except ProcessKilled:
            raise
        except LegionError:
            return ("unknown", None)

    def _probe_host_state(self, host: Binding, env):
        """GetState with failure classification: None means the host is
        provably dead (now a suspect) or unreachable; the caller skips it."""
        status, state = yield from self._probe_host(host.loid, "GetState", (), env)
        if status == "dead":
            self.suspect_hosts.add(host.loid.identity)
        return state if status == "alive" else None

    def _first_fit_host(self, env):
        """The first host (adoption order) that is accepting with a slot."""
        for host in self.hosts:
            if host.loid.identity in self.suspect_hosts:
                continue
            state = yield from self._probe_host_state(host, env)
            if state is not None and state.accepting and state.free_slots > 0:
                return host.loid
        raise NoCapacity(
            f"no accepting host with capacity in {self.jurisdiction.name}"
        )

    def _least_loaded_host(self, env):
        best: Optional[LOID] = None
        best_load = float("inf")
        for host in self.hosts:
            if host.loid.identity in self.suspect_hosts:
                continue
            state = yield from self._probe_host_state(host, env)
            if state is not None and state.accepting and state.process_count < best_load:
                best_load = state.process_count
                best = host.loid
        if best is None:
            raise NoCapacity(
                f"no accepting host in jurisdiction {self.jurisdiction.name}"
            )
        return best

    # ------------------------------------------------------------------ admission

    def admit_opr(self, opr: OPRecord) -> bool:
        """Site-specific admission hook over the object's implementation.

        Subclasses implement trust decisions here (e.g. a DOE magistrate
        admitting only certified factory names).
        """
        return True

    def _checked(self, opr: OPRecord) -> OPRecord:
        if not self.admit_opr(opr):
            raise RequestRefused(
                f"magistrate of {self.jurisdiction.name} refuses {opr.loid} "
                f"(implementation {opr.factory_chain[0][0]!r})"
            )
        return opr

    # ------------------------------------------------------------------- creation

    @legion_method("address CreateObject(opr, LOID)")
    def create_object(
        self, opr: OPRecord, host_hint: Optional[LOID], *, ctx: Optional[InvocationContext] = None
    ):
        """Create a brand-new object from its class's OPR (section 4.2).

        Runs with "the cooperation of the Magistrate ... and of the Host
        Object": the magistrate records management responsibility, the
        host actually starts the process.
        """
        self._checked(opr)
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        host = yield from self._choose_host(host_hint, env, opr.loid)
        address = yield from self.runtime.invoke(host, "Activate", opr, env=env)
        self.managed[opr.loid.identity] = ManagedObject(
            loid=opr.loid,
            class_loid=opr.class_loid,
            state=ObjectState.ACTIVE,
            host=host,
            address=address,
            template=OPRecord(
                loid=opr.loid,
                class_loid=opr.class_loid,
                factory_chain=list(opr.factory_chain),
                component_kind=opr.component_kind,
                annotations=dict(opr.annotations),
            ),
        )
        return address

    @legion_method("address CreateReplica(opr, LOID)")
    def create_replica(
        self, opr: OPRecord, host_hint: Optional[LOID], *, ctx: Optional[InvocationContext] = None
    ):
        """Start one replica process of a system-level replicated object.

        Unlike CreateObject, several replicas of the *same LOID* may run
        under one magistrate (on distinct hosts); the managed record
        accumulates them.  Section 4.3: "a Legion object -- an entity
        named by a single LOID -- can be implemented as a set of
        processes".
        """
        self._checked(opr)
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        used = {host for host, _addr in self._replicas_of(opr.loid)}
        host = None
        if host_hint is not None:
            host = yield from self._choose_host(host_hint, env)
        else:
            for candidate in self.hosts:
                if candidate.loid not in used:
                    host = candidate.loid
                    break
            if host is None:
                raise NoCapacity(
                    f"jurisdiction {self.jurisdiction.name}: every host already "
                    f"runs a replica of {opr.loid}"
                )
        address = yield from self.runtime.invoke(host, "Activate", opr, env=env)
        record = self.managed.get(opr.loid.identity)
        if record is None:
            record = ManagedObject(
                loid=opr.loid,
                class_loid=opr.class_loid,
                state=ObjectState.ACTIVE,
                template=OPRecord(
                    loid=opr.loid,
                    class_loid=opr.class_loid,
                    factory_chain=list(opr.factory_chain),
                    component_kind=opr.component_kind,
                    annotations=dict(opr.annotations),
                ),
            )
            self.managed[opr.loid.identity] = record
        record.replicas.append((host, address))
        return address

    def _replicas_of(self, loid: LOID) -> List[Tuple[LOID, ObjectAddress]]:
        record = self.managed.get(loid.identity)
        return list(record.replicas) if record is not None else []

    # ------------------------------------------------------------------ activation

    @legion_method("address Activate(LOID)")
    def activate_default(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """Activate(LOID): no host suggestion."""
        return self.activate_on(loid, None, ctx=ctx)

    @legion_method("address Activate(LOID, LOID)")
    def activate_on(
        self, loid: LOID, host_hint: Optional[LOID], *, ctx: Optional[InvocationContext] = None
    ):
        """Make an object Active; returns its Object Address.

        Idempotent for already-Active objects ("causes it to become a
        running process ... if the object isn't already Active").  The
        second parameter lets "a Scheduling Agent (or any other Legion
        object) provide suggestions about where to run the object".
        """
        record = self._get_managed(loid)
        if record.state is ObjectState.ACTIVE:
            if record.address is None and record.replicas:
                # A system-level replicated object (section 4.3): the
                # *class* owns the combined group address; a magistrate
                # only knows its local replicas and cannot activate "the"
                # object at a single address.
                raise RequestRefused(
                    f"{loid} is a replica group; its class manages the "
                    "group address"
                )
            return record.address
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        opr = self.jurisdiction.vault.load_opr(loid)
        self._checked(opr)
        host = yield from self._choose_host(host_hint, env, loid)
        address = yield from self.runtime.invoke(host, "Activate", opr, env=env)
        self.jurisdiction.vault.delete_opr(loid)
        record.state = ObjectState.ACTIVE
        record.host = host
        record.address = address
        if record.lost:
            # This activation repaired a failure (demotion), whichever path
            # requested it -- RecoverObject, a sweep, or a plain Activate
            # after the class cleared the stale row.
            record.lost = False
            log = getattr(self.services, "fault_log", None)
            if log is not None:
                log.observe(
                    self.services.kernel.now, "object-recovered", str(loid),
                    detail=f"reactivated on {host}",
                )
        yield from self._notify_class(
            record, "NoteActivated", loid, address, self.loid, env=env
        )
        return address

    @legion_method("Deactivate(LOID)")
    def deactivate(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """Move an object to the Inert state: OPR into the vault (3.1)."""
        record = self._get_managed(loid)
        if record.state is ObjectState.INERT:
            return  # idempotent
        if record.replicas:
            raise LifecycleError(
                f"{loid} is a replica group: it has no single process to "
                "deactivate; shrink it via ReportDeadReplica or remove it "
                "via Delete"
            )
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        state = yield from self.runtime.invoke(
            record.host, "Deactivate", loid, env=env
        )
        assert record.template is not None
        opr = record.template.with_state(state)
        self.jurisdiction.vault.store_opr(opr)
        record.state = ObjectState.INERT
        record.host = None
        record.address = None
        yield from self._notify_class(
            record, "NoteDeactivated", loid, self.loid, env=env
        )

    # ------------------------------------------------------------------- recovery

    @legion_method("Checkpoint(LOID)")
    def checkpoint(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """Snapshot a running object's state into the vault, without
        stopping it.  A later host crash reactivates from this point
        (RecoverObject) instead of losing the state with the process."""
        record = self._get_managed(loid)
        if record.state is ObjectState.INERT:
            return  # the vault OPR already IS the latest state
        if record.replicas:
            raise LifecycleError(
                f"{loid} is a replica group: its replicas carry the "
                "redundancy; there is no single process to checkpoint"
            )
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        state = yield from self.runtime.invoke(
            record.host, "CheckpointObject", loid, env=env
        )
        assert record.template is not None
        self.jurisdiction.vault.store_opr(record.template.with_state(state))

    @legion_method("address RecoverObject(LOID)")
    def recover_object(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """Reactivate a lost object on a surviving host; returns its address.

        The class calls this when a caller reports a stale binding for an
        object this magistrate records as Active.  The record alone cannot
        be trusted -- the process may be fine (the caller hit a transient
        fault) or gone (its host crashed) -- so the recorded host is probed
        first.  Concurrent calls for one object coalesce onto a single
        probe + reactivation.
        """
        record = self._get_managed(loid)
        inflight = self._recovering.get(loid.identity)
        if inflight is not None:
            address = yield inflight
            return address
        fut = SimFuture(f"recover {loid}")
        self._recovering[loid.identity] = fut
        try:
            address = yield from self._recover_object(record, ctx)
        except BaseException as exc:
            self._recovering.pop(loid.identity, None)
            fut.set_exception(exc)
            raise
        self._recovering.pop(loid.identity, None)
        fut.set_result(address)
        return address

    def _recover_object(self, record: ManagedObject, ctx):
        loid = record.loid
        lost_host = record.host
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        if record.state is ObjectState.ACTIVE:
            if record.address is None and record.replicas:
                raise RequestRefused(
                    f"{loid} is a replica group; its class manages the group address"
                )
            alive = False
            if lost_host is not None:
                # Work off the snapshot: the probe yields, and a concurrent
                # sweep may demote this very record (record.host -> None)
                # while we wait.
                status, value = yield from self._probe_host(
                    lost_host, "HasProcess", (loid,), env
                )
                if status == "unknown":
                    # Cannot judge liveness (partition, loss); recovering
                    # now could split-brain the object.  Let the caller
                    # retry once the network settles.
                    raise RequestRefused(
                        f"cannot prove {loid} lost: host {lost_host} unreachable"
                    )
                if status == "dead":
                    self.suspect_hosts.add(lost_host.identity)
                alive = status == "alive" and bool(value)
            if alive and record.state is ObjectState.ACTIVE:
                return record.address  # transient fault; the address works
            if record.state is ObjectState.ACTIVE:
                self._demote_to_inert(record, "process lost")
        # Inert now: reactivate from the persisted OPR -- but keep the
        # checkpoint, because activate_on consumes the vault copy and a
        # second crash before the next checkpoint must not lose the state.
        checkpoint = None
        if self.jurisdiction.vault.holds(loid):
            checkpoint = self.jurisdiction.vault.load_opr(loid)
        address = yield from self.activate_on(loid, None, ctx=ctx)
        if checkpoint is not None:
            self.jurisdiction.vault.store_opr(checkpoint)
        return address

    @legion_method("list SweepHosts()")
    def sweep_hosts(self, *, ctx: Optional[InvocationContext] = None):
        """The reap sweep: probe every adopted host; when one is provably
        dead, demote its resident objects and reactivate them elsewhere.
        Returns the LOIDs of hosts newly found dead."""
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        failed: List[LOID] = []
        for host in list(self.hosts):
            status, _state = yield from self._probe_host(
                host.loid, "GetState", (), env
            )
            if status == "alive":
                # Also clears a false suspicion, so capacity marked dead in
                # error returns to the placement pool.
                self.suspect_hosts.discard(host.loid.identity)
                continue
            if status == "unknown":
                continue  # unreachable or lossy, not provably dead
            if host.loid.identity not in self.suspect_hosts:
                self.suspect_hosts.add(host.loid.identity)
                failed.append(host.loid)
            residents = [
                r
                for r in self.managed.values()
                if r.state is ObjectState.ACTIVE and r.host == host.loid
            ]
            # Class objects (clones) first: their instances' recoveries may
            # route through them, and an autoscaler wants the pool healed
            # before the pool's tenants.
            residents.sort(
                key=lambda r: (
                    r.template is None
                    or r.template.component_kind != "class-object"
                )
            )
            for record in residents:
                self._demote_to_inert(record, f"host {host.loid} lost")
                try:
                    yield from self.recover_object(record.loid, ctx=ctx)
                except ProcessKilled:
                    raise  # the sweeping process itself is being torn down
                except Exception:  # noqa: BLE001 - no surviving capacity yet
                    # Leave the record Inert; a later sweep (or the class's
                    # GetBinding-on-stale path) retries the reactivation.
                    # Tell the class, so a routing pool (clone autoscaling)
                    # stops sending traffic at a provably dead address.
                    yield from self._notify_class(
                        record, "NoteDeactivated", record.loid, self.loid, env=env
                    )
        return failed

    def _demote_to_inert(self, record: ManagedObject, reason: str) -> None:
        """Mark a lost Active object Inert, recoverable from the vault.

        Prefers an existing checkpoint OPR; falls back to the creation
        template (state since the last checkpoint is lost, but the object
        survives -- better than dropping it from management).
        """
        loid = record.loid
        if not self.jurisdiction.vault.holds(loid) and record.template is not None:
            self.jurisdiction.vault.store_opr(record.template)
        record.state = ObjectState.INERT
        record.host = None
        record.address = None
        record.lost = True
        log = getattr(self.services, "fault_log", None)
        if log is not None:
            log.observe(
                self.services.kernel.now, "object-demoted", str(loid), detail=reason
            )

    # -------------------------------------------------------------------- deletion

    @legion_method("Delete(LOID)")
    def delete(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """Remove the object from existence: Active and Inert copies both.

        "After a Delete() function is successfully executed, future
        attempts to bind the LOID to an Object Address will be
        unsuccessful.  Stale bindings may exist, but will be eventually
        removed as objects unsuccessfully try to use them."
        """
        record = self.managed.get(loid.identity)
        if record is None:
            return  # idempotent: not ours (any more)
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        if record.state is ObjectState.ACTIVE and record.host is not None:
            yield from self.runtime.invoke(record.host, "KillObject", loid, env=env)
        for host, _address in record.replicas:
            yield from self.runtime.invoke(host, "KillObject", loid, env=env)
        self.jurisdiction.vault.delete_opr(loid)
        del self.managed[loid.identity]

    # ------------------------------------------------------------------- migration

    @legion_method("bytes ExportObject(LOID)")
    def export_object(self, loid: LOID, *, ctx: Optional[InvocationContext] = None):
        """Deactivate (if needed) and hand out the OPR bytes (Copy's source)."""
        record = self._get_managed(loid)
        if record.state is ObjectState.ACTIVE:
            yield from self.deactivate(loid, ctx=ctx)
        opr = self.jurisdiction.vault.load_opr(loid)
        return opr.to_bytes()

    @legion_method("ImportObject(bytes)")
    def import_object(self, blob: bytes, *, ctx: Optional[InvocationContext] = None) -> None:
        """Receive a migrating object's OPR (Copy's destination).

        Subject to the same admission policy as creation: a jurisdiction
        cannot be forced to accept objects it does not trust.
        """
        opr = OPRecord.from_bytes(blob)
        self._checked(opr)
        self.jurisdiction.vault.store_opr(opr)
        self.managed[opr.loid.identity] = ManagedObject(
            loid=opr.loid,
            class_loid=opr.class_loid,
            state=ObjectState.INERT,
            template=OPRecord(
                loid=opr.loid,
                class_loid=opr.class_loid,
                factory_chain=list(opr.factory_chain),
                component_kind=opr.component_kind,
                annotations=dict(opr.annotations),
            ),
        )

    @legion_method("Copy(LOID, LOID)")
    def copy(self, loid: LOID, target_magistrate: LOID, *, ctx: Optional[InvocationContext] = None):
        """Replicate the OPR to another Magistrate (section 3.8).

        "This function causes the Magistrate to deactivate the object,
        creating an Object Persistent Representation, and to send the
        Object Persistent Representation to the other Magistrate."
        """
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        blob = yield from self.export_object(loid, ctx=ctx)
        yield from self.runtime.invoke(
            target_magistrate, "ImportObject", blob, env=env
        )
        record = self._get_managed(loid)
        yield from self._notify_class(
            record, "NoteCopied", loid, target_magistrate, env=env
        )

    @legion_method("Move(LOID, LOID)")
    def move(self, loid: LOID, target_magistrate: LOID, *, ctx: Optional[InvocationContext] = None):
        """Change the managing Magistrate: "equivalent to Copy() then Delete()"."""
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        blob = yield from self.export_object(loid, ctx=ctx)
        yield from self.runtime.invoke(
            target_magistrate, "ImportObject", blob, env=env
        )
        record = self._get_managed(loid)
        self.jurisdiction.vault.delete_opr(loid)
        del self.managed[loid.identity]
        yield from self._notify_class(
            record, "NoteMigrated", loid, self.loid, target_magistrate, env=env
        )

    # ------------------------------------------------------------------- reporting

    @legion_method("ReportExceptions(LOID, list)")
    def report_exceptions(self, host: LOID, reaped: List[Tuple[LOID, str]]) -> None:
        """A Host Object reports crashed processes it reaped.

        Crashed Active objects fall back to Inert-with-last-OPR if the
        vault still has one, otherwise they are dropped from management
        (their class will fail future GetBinding with BindingNotFound).
        """
        for loid, reason in reaped:
            self.exception_log.append((host, loid, reason or ""))
            record = self.managed.get(loid.identity)
            if record is None:
                continue
            if record.state is ObjectState.ACTIVE and record.host != host:
                # The object was already recovered onto another host before
                # this report arrived; demoting it now would kill a healthy
                # process's record.  The report is stale -- log only.
                continue
            if self.jurisdiction.vault.holds(loid):
                self._demote_to_inert(record, reason or "crashed")
            else:
                del self.managed[loid.identity]

    # ------------------------------------------------------------------- queries

    @legion_method("state GetObjectState(LOID)")
    def get_object_state(self, loid: LOID) -> ObjectState:
        """Whether the object is currently Active or Inert here."""
        return self._get_managed(loid).state

    @legion_method("int ManagedCount()")
    def managed_count(self) -> int:
        """How many objects this magistrate currently manages."""
        return len(self.managed)

    # -------------------------------------------------------------------- helpers

    def _get_managed(self, loid: LOID) -> ManagedObject:
        record = self.managed.get(loid.identity)
        if record is None:
            raise UnknownObject(
                f"magistrate of {self.jurisdiction.name} does not manage {loid}"
            )
        return record

    def _notify_class(self, record: ManagedObject, method: str, *args, env):
        """Keep the owning class's logical table current (section 3.7).

        Best-effort: a class that is unreachable (or that never created
        the object, e.g. bootstrap objects) must not wedge lifecycle
        operations, so failures are swallowed.
        """
        try:
            yield from self.runtime.invoke(record.class_loid, method, *args, env=env)
        except Exception:  # noqa: BLE001 - notification is best-effort
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.jurisdiction.name!r} "
            f"managed={len(self.managed)} hosts={len(self.hosts)}>"
        )
