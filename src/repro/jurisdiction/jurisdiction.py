"""Jurisdiction: a set of hosts plus aggregate persistent storage.

"Jurisdictions are potentially non-disjoint; both hosts and persistent
storage may be contained in two or more Jurisdictions, and Jurisdictions
can be organized to form hierarchies.  The union of all Jurisdictions
comprises the full Legion system." (section 2.2, Fig. 10)

A Jurisdiction is *descriptive* resource bookkeeping -- all lifecycle
intelligence lives in its Magistrate.  The one structural requirement it
enforces is Fig. 11's visibility rule: every host of the jurisdiction can
reach the whole vault, which in the simulation is automatic because the
vault is jurisdiction-scoped, and which migration (an OPR written through
one host, activated on another) exercises.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.errors import LegionError
from repro.naming.loid import LOID
from repro.persistence.vault import Vault


class Jurisdiction:
    """One autonomous resource partition (see module docstring)."""

    def __init__(self, name: str, parent: Optional["Jurisdiction"] = None) -> None:
        self.name = name
        self.parent = parent
        self.children: List["Jurisdiction"] = []
        if parent is not None:
            parent.children.append(self)
        #: Host ids (network-level 32-bit host identifiers) in this
        #: jurisdiction.  A host id may appear in several jurisdictions.
        self.host_ids: Set[int] = set()
        #: LOIDs of the Host Objects representing those hosts.
        self.host_objects: List[LOID] = []
        self.vault = Vault(name)
        #: The Magistrate in charge (None until one adopts it).
        self.magistrate: Optional[LOID] = None

    # -- membership -------------------------------------------------------------

    def add_host(self, host_id: int, host_object: LOID) -> None:
        """Include a host (and its Host Object) in this jurisdiction."""
        self.host_ids.add(host_id)
        if host_object not in self.host_objects:
            self.host_objects.append(host_object)

    def remove_host(self, host_id: int, host_object: LOID) -> None:
        """Withdraw a host (site autonomy: resources can be reclaimed)."""
        self.host_ids.discard(host_id)
        if host_object in self.host_objects:
            self.host_objects.remove(host_object)

    def contains_host(self, host_id: int) -> bool:
        """Whether ``host_id`` belongs to this jurisdiction."""
        return host_id in self.host_ids

    def overlaps(self, other: "Jurisdiction") -> bool:
        """Whether the two jurisdictions share any host (non-disjointness)."""
        return bool(self.host_ids & other.host_ids)

    # -- hierarchy -----------------------------------------------------------------

    def ancestors(self) -> List["Jurisdiction"]:
        """Parent chain, nearest first."""
        out: List["Jurisdiction"] = []
        current = self.parent
        while current is not None:
            if current in out:
                raise LegionError(f"jurisdiction hierarchy cycle at {current.name}")
            out.append(current)
            current = current.parent
        return out

    def subtree(self) -> List["Jurisdiction"]:
        """This jurisdiction and all descendants (preorder)."""
        out: List["Jurisdiction"] = [self]
        for child in self.children:
            out.extend(child.subtree())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Jurisdiction {self.name!r} hosts={len(self.host_ids)} "
            f"oprs={self.vault.opr_count}>"
        )
