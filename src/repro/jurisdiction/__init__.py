"""Jurisdictions and Magistrates (paper sections 2.2, 3.8).

"An instance of Legion is partitioned into autonomous Jurisdictions, each
of which consists of a set of hosts and associated storage. ...
Jurisdictions are the mechanism by which Legion provides site autonomy."

* :class:`Jurisdiction` -- the resource partition: hosts + a
  :class:`~repro.persistence.vault.Vault`; possibly overlapping with
  other jurisdictions and organisable into hierarchies (Fig. 10).
* :class:`MagistrateImpl` -- the object in charge of a jurisdiction:
  activation, deactivation, deletion, and migration (Copy/Move) of the
  objects under its control; a security boundary that may refuse any
  request (member function calls on Magistrates are requests, not
  commands).
"""

from repro.jurisdiction.jurisdiction import Jurisdiction
from repro.jurisdiction.magistrate import MagistrateImpl, ManagedObject, ObjectState

__all__ = ["Jurisdiction", "MagistrateImpl", "ManagedObject", "ObjectState"]
