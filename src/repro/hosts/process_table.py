"""The per-host table of running Legion object processes.

A Host Object must know what is running on its host in order to reap dead
objects, report exceptions, and enforce capacity (section 2.3).  Each
entry pairs a LOID with the :class:`~repro.core.server.ObjectServer`
standing in for the object's process, plus resource accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import HostError
from repro.naming.loid import LOID


@dataclass
class ProcessEntry:
    """One running (or crashed-but-unreaped) object process."""

    loid: LOID
    server: object  # ObjectServer; typed loosely to avoid an import cycle
    started_at: float
    cpu_share: float = 1.0
    memory_bytes: int = 0
    #: Set when the process died abnormally; reaping reports and clears it.
    exception: Optional[str] = None

    @property
    def crashed(self) -> bool:
        """Whether the process terminated abnormally and awaits reaping."""
        return self.exception is not None


class ProcessTable:
    """All processes on one host, keyed by LOID identity."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int], ProcessEntry] = {}

    def add(self, entry: ProcessEntry) -> None:
        """Record a started process; a LOID runs at most once per host."""
        key = entry.loid.identity
        if key in self._entries:
            raise HostError(f"{entry.loid} already runs on this host")
        self._entries[key] = entry

    def get(self, loid: LOID) -> ProcessEntry:
        """The entry for ``loid``; raises :class:`HostError` if absent."""
        entry = self._entries.get(loid.identity)
        if entry is None:
            raise HostError(f"{loid} is not running on this host")
        return entry

    def find(self, loid: LOID) -> Optional[ProcessEntry]:
        """The entry for ``loid`` or None."""
        return self._entries.get(loid.identity)

    def remove(self, loid: LOID) -> ProcessEntry:
        """Drop and return the entry (process stopped or reaped)."""
        entry = self._entries.pop(loid.identity, None)
        if entry is None:
            raise HostError(f"{loid} is not running on this host")
        return entry

    def crashed_entries(self) -> List[ProcessEntry]:
        """Processes that died abnormally and await reaping."""
        return [e for e in self._entries.values() if e.crashed]

    def running(self) -> List[ProcessEntry]:
        """Live (non-crashed) processes."""
        return [e for e in self._entries.values() if not e.crashed]

    @property
    def total_cpu_share(self) -> float:
        """Sum of CPU shares of live processes."""
        return sum(e.cpu_share for e in self.running())

    @property
    def total_memory(self) -> int:
        """Sum of memory of live processes."""
        return sum(e.memory_bytes for e in self.running())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, loid: LOID) -> bool:
        return loid.identity in self._entries

    def __iter__(self):
        return iter(list(self._entries.values()))
