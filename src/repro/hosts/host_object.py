"""HostObjectImpl: the base Host Object implementation (section 3.9).

"Host Objects export member functions that start or restart processes,
that suspend processes that are currently running, and that restrict
access to the host.  The full set ... will include at least the following:
Activate(), Deactivate(), SetCPUload(), SetMemoryUsage(), and GetState()."

Activation is where an Object Persistent Representation becomes a live
process: the host instantiates the OPR's factory chain (a single factory,
or a :class:`~repro.core.composite.CompositeImpl` for multiply-inheriting
classes), restores saved state, and registers an
:class:`~repro.core.server.ObjectServer` at a fresh endpoint on this host.

Access restriction follows the paper's trust philosophy: the host's MayI
policy (typically "only my Magistrate") guards every member function, and
an additional admission hook (:meth:`admit`) lets site-specific subclasses
refuse individual OPRs -- the "certified not to leak information" hosts of
the DOE scenario.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import HostError, NoCapacity, RequestRefused
from repro.core.composite import CompositeImpl
from repro.core.method import InvocationContext
from repro.core.object_base import LegionObjectImpl, legion_method
from repro.core.server import ObjectServer
from repro.hosts.process_table import ProcessEntry, ProcessTable
from repro.metrics.counters import ComponentKind
from repro.naming.binding import Binding
from repro.naming.loid import LOID
from repro.net.address import ObjectAddress
from repro.persistence.opr import OPRecord

#: OPR ``component_kind`` string → metrics kind for the new server.
_KIND_MAP = {
    "application": ComponentKind.APPLICATION,
    "class-object": ComponentKind.CLASS_OBJECT,
    "binding-agent": ComponentKind.BINDING_AGENT,
    "magistrate": ComponentKind.MAGISTRATE,
    "host-object": ComponentKind.HOST_OBJECT,
    "scheduler": ComponentKind.SCHEDULER,
}


class HostState:
    """The GetState() report: a plain, picklable capacity snapshot."""

    def __init__(
        self,
        host_id: int,
        process_count: int,
        max_processes: Optional[int],
        cpu_load: float,
        memory_used: int,
        accepting: bool,
    ) -> None:
        self.host_id = host_id
        self.process_count = process_count
        self.max_processes = max_processes
        self.cpu_load = cpu_load
        self.memory_used = memory_used
        self.accepting = accepting

    @property
    def free_slots(self) -> float:
        """Remaining process slots (inf when unlimited)."""
        if self.max_processes is None:
            return float("inf")
        return self.max_processes - self.process_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HostState host={self.host_id} procs={self.process_count}"
            f"/{self.max_processes} load={self.cpu_load:.2f}>"
        )


class HostObjectImpl(LegionObjectImpl):
    """The base Host Object.  Platform flavours subclass this (Fig. 8)."""

    #: Platform label reported in GetState and used by schedulers.
    platform = "generic"

    def __init__(
        self,
        host_id: int,
        max_processes: Optional[int] = None,
        cpu_capacity: float = 1.0,
        memory_capacity: Optional[int] = None,
        node_count: int = 1,
    ) -> None:
        self.host_id = host_id
        self.max_processes = max_processes
        self.cpu_capacity = cpu_capacity
        self.memory_capacity = memory_capacity
        self.node_count = node_count
        self.processes = ProcessTable()
        #: Admission limits settable via SetCPUload / SetMemoryUsage.
        self.cpu_load_limit: Optional[float] = None
        self.memory_limit: Optional[int] = memory_capacity
        #: When False the host refuses all new activations.
        self.accepting = True
        #: The Binding Agent installed into objects activated here (the
        #: site's agent); set by bootstrap.
        self.site_binding_agent: Optional[Binding] = None
        #: The Magistrate responsible for this host (exception reports go
        #: there); set when the magistrate adopts the host.
        self.magistrate: Optional[LOID] = None

    # ------------------------------------------------------------------ admission

    def admit(self, opr: OPRecord) -> bool:
        """Site-specific admission hook; subclasses enforce local policy.

        Returning False refuses the activation with RequestRefused --
        Host Objects decide "which objects can run on the host" (2.3).
        """
        return True

    def assign_node(self) -> int:
        """The platform-specific node number for the next activation.

        Section 3.4: "on multiprocessors, a 32 bit platform-specific
        internal node number may be used to distinguish each particular
        processor."  Uniprocessors return 0; UnixSMMP round-robins.
        """
        return 0

    def _check_capacity(self) -> None:
        if not self.accepting:
            raise RequestRefused(f"host {self.host_id} is not accepting objects")
        if (
            self.max_processes is not None
            and len(self.processes.running()) >= self.max_processes
        ):
            raise NoCapacity(
                f"host {self.host_id} is full "
                f"({self.max_processes} process slots)"
            )
        if (
            self.cpu_load_limit is not None
            and self.processes.total_cpu_share >= self.cpu_load_limit
        ):
            raise NoCapacity(f"host {self.host_id} is at its CPU-load limit")

    # ------------------------------------------------------------------- Activate

    @legion_method("address Activate(opr)")
    def activate(self, opr: OPRecord, *, ctx: Optional[InvocationContext] = None) -> ObjectAddress:
        """Start an object process from its OPR; returns its Object Address."""
        tracer = self.services.tracer
        span = None
        if tracer is not None and tracer.active:
            server = getattr(self, "server", None)
            span = tracer.start(
                "activate",
                "activate",
                parent=ctx.env.trace if ctx is not None else None,
                component=server._component_label if server is not None else "",
            )
            span.annotate(target=str(opr.loid), kind=opr.component_kind)
        try:
            return self._activate(opr)
        except BaseException as exc:
            if span is not None:
                span.status = type(exc).__name__
            raise
        finally:
            if span is not None:
                tracer.finish(span)

    def _activate(self, opr: OPRecord) -> ObjectAddress:
        self._check_capacity()
        if not self.admit(opr):
            raise RequestRefused(
                f"host {self.host_id} refuses to run {opr.loid} "
                f"(implementation {opr.factory_chain[0][0]!r})"
            )
        if opr.loid in self.processes:
            entry = self.processes.get(opr.loid)
            if not entry.crashed:
                return entry.server.address  # already running here
            self.processes.remove(opr.loid)

        parts = []
        exposures = []
        for factory, init in opr.factory_chain:
            init = dict(init)
            # Selective inheritance marker (see ClassObjectImpl
            # inherit_from_selective): which of this part's methods are
            # exposed; not a constructor argument.
            exposed = init.pop("__expose__", None)
            parts.append(self.services.impls.create(factory, **init))
            exposures.append(None if exposed is None else set(exposed))
        if len(parts) == 1 and exposures[0] is None:
            impl = parts[0]
        else:
            impl = CompositeImpl(parts, exposures)
        if opr.state is not None:
            impl.restore_state(opr.state)
        kind = _KIND_MAP.get(opr.component_kind, ComponentKind.OTHER)
        server = ObjectServer(
            self.services,
            opr.loid,
            impl,
            host=self.host_id,
            node=self.assign_node(),
            component_kind=kind,
        )
        if self.site_binding_agent is not None:
            server.runtime.set_binding_agent(self.site_binding_agent)
        self.processes.add(
            ProcessEntry(
                loid=opr.loid,
                server=server,
                started_at=self.services.kernel.now,
                memory_bytes=opr.annotations.get("memory_bytes", 0),
                cpu_share=opr.annotations.get("cpu_share", 1.0),
            )
        )
        return server.address

    # ------------------------------------------------------------------ Deactivate

    @legion_method("bytes Deactivate(LOID)")
    def deactivate(self, loid: LOID) -> bytes:
        """Suspend a process: SaveState(), tear down, return the state bytes.

        The caller (a Magistrate) wraps the bytes into an OPR and stores
        it in the jurisdiction's vault (section 3.1).
        """
        entry = self.processes.get(loid)
        if entry.crashed:
            self.processes.remove(loid)
            raise HostError(f"{loid} crashed on host {self.host_id}; state lost")
        state = entry.server.impl.save_state()
        entry.server.deactivate()
        self.processes.remove(loid)
        return state

    @legion_method("KillObject(LOID)")
    def kill_object(self, loid: LOID) -> None:
        """Terminate a process without saving state (the Delete() path)."""
        entry = self.processes.find(loid)
        if entry is None:
            return  # idempotent: already gone
        if not entry.crashed:
            entry.server.deactivate()
        self.processes.remove(loid)

    # --------------------------------------------------------------- resource limits

    @legion_method("SetCPUload(float)")
    def set_cpu_load(self, limit: float) -> None:
        """Cap the aggregate CPU share of Legion processes on this host."""
        if limit < 0:
            raise HostError(f"negative CPU-load limit {limit}")
        self.cpu_load_limit = limit

    @legion_method("SetMemoryUsage(int)")
    def set_memory_usage(self, limit: int) -> None:
        """Cap the aggregate memory of Legion processes on this host."""
        if limit < 0:
            raise HostError(f"negative memory limit {limit}")
        self.memory_limit = limit

    @legion_method("state GetState()")
    def get_state(self) -> HostState:
        """Capacity snapshot (used by placement policies and monitors)."""
        running = self.processes.running()
        cpu = (
            sum(e.cpu_share for e in running) / self.cpu_capacity
            if self.cpu_capacity
            else 0.0
        )
        return HostState(
            host_id=self.host_id,
            process_count=len(running),
            max_processes=self.max_processes,
            cpu_load=cpu,
            memory_used=self.processes.total_memory,
            accepting=self.accepting,
        )

    @legion_method("SetAccepting(bool)")
    def set_accepting(self, accepting: bool) -> None:
        """Open/close the host to new activations (drain for maintenance)."""
        self.accepting = bool(accepting)

    @legion_method("bool HasProcess(LOID)")
    def has_process(self, loid: LOID) -> bool:
        """Liveness probe: does this host run a live process for ``loid``?

        Magistrates use it before recovery: a reply of False (or a
        delivery failure, the host itself being dead) licenses
        reactivation elsewhere; True means the earlier failure was
        transient and the recorded address still works.
        """
        entry = self.processes.find(loid)
        return entry is not None and not entry.crashed

    @legion_method("bytes CheckpointObject(LOID)")
    def checkpoint_object(self, loid: LOID) -> bytes:
        """SaveState() without teardown: the process keeps running.

        The magistrate stores the returned bytes as a recovery OPR, so a
        later host crash can reactivate the object from this point
        instead of losing state with the process.
        """
        entry = self.processes.get(loid)
        if entry.crashed:
            raise HostError(
                f"{loid} crashed on host {self.host_id}; nothing to checkpoint"
            )
        return entry.server.impl.save_state()

    # -------------------------------------------------------------------- reaping

    @legion_method("list Reap()")
    def reap(self, *, ctx: Optional[InvocationContext] = None):
        """Collect crashed processes; report exceptions to the magistrate.

        Returns the list of (LOID, exception string) pairs reaped.  Part
        of the Host Object's charter: "reaping objects, and reporting
        object exceptions" (section 2.3).
        """
        reaped = []
        for entry in self.processes.crashed_entries():
            self.processes.remove(entry.loid)
            reaped.append((entry.loid, entry.exception))
        if reaped and self.magistrate is not None:
            env = ctx.nested_env(self.loid) if ctx else self.own_env()
            yield from self.runtime.invoke(
                self.magistrate, "ReportExceptions", self.loid, reaped, env=env
            )
        return reaped

    # -------------------------------------------------------------- failure injection

    def crash_object(self, loid: LOID, reason: str = "simulated crash") -> None:
        """Test hook: the process dies abnormally (endpoint vanishes).

        Not a Legion member function -- this is the simulated hardware
        fault that reaping and stale-binding experiments inject.
        """
        entry = self.processes.get(loid)
        entry.server.deactivate()
        entry.exception = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} host={self.host_id} "
            f"procs={len(self.processes)}>"
        )
