"""Host Objects: each host's representative to Legion (sections 2.3, 3.9).

"A Host Object is a host's representative to Legion.  It is responsible
for executing objects on the host, reaping objects, and reporting object
exceptions.  Thus, the Host Object for a host is ultimately responsible
for deciding which objects can run on the host it represents."

* :class:`HostObjectImpl` -- the base implementation exporting the
  paper's member functions: Activate(), Deactivate(), SetCPUload(),
  SetMemoryUsage(), GetState(), plus reaping and exception reporting.
* :mod:`repro.hosts.host_types` -- the Fig. 8 hierarchy: UnixHost,
  SPMDHost, UnixSMMP, CM5Host, CrayT3DHost, with platform-flavoured
  capacity models (an SPMD host activates one object across many nodes).
* :class:`ProcessTable` -- the per-host table of running object processes.
"""

from repro.hosts.host_object import HostObjectImpl, HostState
from repro.hosts.host_types import (
    CM5HostImpl,
    CrayT3DHostImpl,
    SPMDHostImpl,
    UnixHostImpl,
    UnixSMMPHostImpl,
)
from repro.hosts.process_table import ProcessEntry, ProcessTable

__all__ = [
    "HostObjectImpl",
    "HostState",
    "UnixHostImpl",
    "SPMDHostImpl",
    "UnixSMMPHostImpl",
    "CM5HostImpl",
    "CrayT3DHostImpl",
    "ProcessEntry",
    "ProcessTable",
]
