"""The Fig. 8 host hierarchy: platform-flavoured Host Object classes.

"UnixHost and SPMDHost are derived directly from LegionHost.  UnixSMMP is
derived from UnixHost, and CM-5 and CrayT3D are derived from SPMDHost."

The flavours differ in how they model capacity:

* **UnixHost** -- a workstation: modest process slots, one node.
* **UnixSMMP** -- a shared-memory multiprocessor (the paper's SGI Power
  Challenge): many slots, per-processor node numbers in Object Addresses.
* **SPMDHost** -- a parallel machine running single-program multiple-data
  jobs: activating an object claims a *partition* of nodes, so slot
  accounting is in nodes, not processes.
* **CM5Host / CrayT3DHost** -- concrete SPMD machines with their
  characteristic partition granularities.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NoCapacity
from repro.hosts.host_object import HostObjectImpl
from repro.persistence.opr import OPRecord


class UnixHostImpl(HostObjectImpl):
    """A Unix workstation (e.g. the paper's Sun workstation)."""

    platform = "unix"

    def __init__(self, host_id: int, max_processes: Optional[int] = 64) -> None:
        super().__init__(
            host_id=host_id,
            max_processes=max_processes,
            cpu_capacity=1.0,
            node_count=1,
        )


class UnixSMMPHostImpl(UnixHostImpl):
    """A shared-memory multiprocessor running Unix (SGI Power Challenge).

    Activations are spread over processors round-robin; the processor
    index becomes the 32-bit node number of the Object Address Element
    (section 3.4: "on multiprocessors, a 32 bit platform-specific internal
    node number may be used to distinguish each particular processor").
    """

    platform = "unix-smmp"

    def __init__(self, host_id: int, processors: int = 8, max_processes: Optional[int] = None) -> None:
        super().__init__(
            host_id=host_id,
            max_processes=max_processes if max_processes is not None else processors * 32,
        )
        self.cpu_capacity = float(processors)
        self.node_count = processors
        self._next_processor = 0

    def next_node(self) -> int:
        """Round-robin processor assignment for new activations."""
        node = self._next_processor
        self._next_processor = (self._next_processor + 1) % self.node_count
        return node

    def assign_node(self) -> int:
        """Activations carry the processor number in their addresses."""
        return self.next_node()


class SPMDHostImpl(HostObjectImpl):
    """A distributed-memory parallel machine running SPMD jobs.

    Each activation claims ``partition_nodes`` nodes (overridable per-OPR
    via the ``nodes`` annotation); capacity is the node pool.
    """

    platform = "spmd"

    def __init__(self, host_id: int, total_nodes: int = 32, partition_nodes: int = 8) -> None:
        super().__init__(host_id=host_id, max_processes=None, node_count=total_nodes)
        self.total_nodes = total_nodes
        self.partition_nodes = partition_nodes
        self.nodes_in_use = 0

    def _partition_size(self, opr: OPRecord) -> int:
        return int(opr.annotations.get("nodes", self.partition_nodes))

    def admit(self, opr: OPRecord) -> bool:
        """Admit only if a partition of the requested size is free."""
        return self.nodes_in_use + self._partition_size(opr) <= self.total_nodes

    def activate(self, opr: OPRecord, *, ctx=None):
        """Claim the partition, then start the object as usual."""
        size = self._partition_size(opr)
        if self.nodes_in_use + size > self.total_nodes:
            raise NoCapacity(
                f"SPMD host {self.host_id}: {size} nodes requested, "
                f"{self.total_nodes - self.nodes_in_use} free"
            )
        address = super().activate(opr, ctx=ctx)
        self.nodes_in_use += size
        entry = self.processes.get(opr.loid)
        entry.cpu_share = float(size)
        return address

    def _release(self, loid) -> None:
        entry = self.processes.find(loid)
        if entry is not None:
            self.nodes_in_use = max(0, self.nodes_in_use - int(entry.cpu_share))

    def deactivate(self, loid):
        self._release(loid)
        return super().deactivate(loid)

    def kill_object(self, loid) -> None:
        self._release(loid)
        super().kill_object(loid)


class CM5HostImpl(SPMDHostImpl):
    """A Thinking Machines CM-5: power-of-two partitions, 32-node default."""

    platform = "cm-5"

    def __init__(self, host_id: int, total_nodes: int = 512) -> None:
        super().__init__(host_id=host_id, total_nodes=total_nodes, partition_nodes=32)

    def _partition_size(self, opr: OPRecord) -> int:
        requested = super()._partition_size(opr)
        size = 32  # CM-5 partitions come in powers of two, minimum 32
        while size < requested:
            size *= 2
        return size


class CrayT3DHostImpl(SPMDHostImpl):
    """A Cray T3D: PE pairs, small default partitions."""

    platform = "cray-t3d"

    def __init__(self, host_id: int, total_nodes: int = 256) -> None:
        super().__init__(host_id=host_id, total_nodes=total_nodes, partition_nodes=2)

    def _partition_size(self, opr: OPRecord) -> int:
        requested = super()._partition_size(opr)
        return requested + (requested % 2)  # PEs are allocated in pairs
