"""The columnar state table: dense component ids → numpy columns.

One :class:`StateFrame` holds the *bulk* population of a mega-scale
scenario -- millions of objects as parallel arrays instead of millions of
Python objects.  A row is one component: its class, the host slot it
occupies, its lifecycle band, its application state (a counter value),
its cumulative call/shed tallies, and its binding-cache entry (the clone
pool epoch it last bound against).  Whole-population transitions apply
frame-at-once (vivarium-style): one tick touches every column with a
handful of vectorised operations, never a per-object callback.

Ids are *dense and monotone*: :class:`IdAllocator` hands out contiguous
ranges and never recycles an id within a run, so escalation/demotion
churn can never alias two logical objects onto one row -- trace and audit
identities stay stable (see ``tests/megascale/test_frame.py`` for the
regression pinning this).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import LegionError
from repro.megascale.compat import require_numpy

#: Lifecycle bands of a bulk row.  BULK rows take frame-at-once
#: transitions; PROMOTED rows are owned by the rich-object path (their
#: bulk columns are frozen until demotion); LOST rows sat on a crashed
#: host and await promotion-on-recovery.
BULK, PROMOTED, LOST = 0, 1, 2

BAND_NAMES = {BULK: "bulk", PROMOTED: "promoted", LOST: "lost"}


class IdAllocator:
    """Monotone dense-id allocator: ids are never reused within a run.

    Escalation promotes a row out of the bulk table and demotion folds it
    back, but neither movement ever *frees* the id -- a recycled id would
    let a trace span or audit row recorded before the churn silently
    refer to a different logical object after it.  ``alloc`` only ever
    moves the high-water mark forward; there is deliberately no
    ``release``.
    """

    def __init__(self) -> None:
        self._next = 0

    def alloc(self, count: int) -> range:
        """A fresh contiguous id range (monotone; never recycled)."""
        if count < 0:
            raise LegionError(f"cannot allocate {count} ids")
        start = self._next
        self._next += count
        return range(start, start + count)

    @property
    def high_water(self) -> int:
        """Total ids ever issued; the frame's row count."""
        return self._next


class StateFrame:
    """Parallel columns over a dense id space, plus per-class/host tallies.

    Columns (one entry per id):

    * ``klass``      -- class index (int32)
    * ``host``       -- host-slot index (int32)
    * ``state``      -- lifecycle band: BULK / PROMOTED / LOST (uint8)
    * ``value``      -- application state: the counter value (int64)
    * ``calls``      -- completed calls while in the bulk band (int64)
    * ``shed``       -- calls shed by the bulk admission limit (int64)
    * ``cache_epoch``-- binding-cache entry: the clone-pool epoch this
      component last bound against (int32; -1 = cold)
    * ``queue``      -- queue depth carried between ticks (int32)

    Aggregates maintained incrementally by the kernels:

    * ``class_calls`` / ``class_sheds`` -- per-class tallies
    * ``host_occupancy`` -- live bulk rows per host slot
    * ``host_up``        -- host liveness mask
    """

    def __init__(self, n_classes: int, n_hosts: int) -> None:
        np = require_numpy("StateFrame")
        if n_classes < 1 or n_hosts < 1:
            raise LegionError(
                f"StateFrame needs >= 1 class and host, got {n_classes}/{n_hosts}"
            )
        self.np = np
        self.n_classes = int(n_classes)
        self.n_hosts = int(n_hosts)
        self.allocator = IdAllocator()
        size = 0
        self.klass = np.empty(size, dtype=np.int32)
        self.host = np.empty(size, dtype=np.int32)
        self.state = np.empty(size, dtype=np.uint8)
        self.value = np.empty(size, dtype=np.int64)
        self.calls = np.empty(size, dtype=np.int64)
        self.shed = np.empty(size, dtype=np.int64)
        self.cache_epoch = np.empty(size, dtype=np.int32)
        self.queue = np.empty(size, dtype=np.int32)
        self.class_calls = np.zeros(self.n_classes, dtype=np.int64)
        self.class_sheds = np.zeros(self.n_classes, dtype=np.int64)
        self.host_occupancy = np.zeros(self.n_hosts, dtype=np.int64)
        self.host_up = np.ones(self.n_hosts, dtype=bool)

    # ------------------------------------------------------------------ sizing

    def __len__(self) -> int:
        return self.allocator.high_water

    @property
    def size(self) -> int:
        """Rows in the frame (== ids ever allocated; ids are monotone)."""
        return self.allocator.high_water

    def extend(self, count: int, klass, host):
        """Allocate ``count`` fresh rows; returns their id array.

        ``klass``/``host`` may be scalars or arrays of length ``count``;
        new rows start in the BULK band with zeroed state and a cold
        binding-cache entry.
        """
        np = self.np
        ids = self.allocator.alloc(count)
        new_size = self.allocator.high_water
        for name, fill in (
            ("klass", klass),
            ("host", host),
            ("state", BULK),
            ("value", 0),
            ("calls", 0),
            ("shed", 0),
            ("cache_epoch", -1),
            ("queue", 0),
        ):
            old = getattr(self, name)
            grown = np.empty(new_size, dtype=old.dtype)
            grown[: len(old)] = old
            grown[len(old) :] = fill
            setattr(self, name, grown)
        id_arr = np.arange(ids.start, ids.stop, dtype=np.int64)
        bad_class = (self.klass[id_arr] < 0) | (self.klass[id_arr] >= self.n_classes)
        bad_host = (self.host[id_arr] < 0) | (self.host[id_arr] >= self.n_hosts)
        if bool(bad_class.any()) or bool(bad_host.any()):
            raise LegionError("extend: class or host index out of range")
        np.add.at(self.host_occupancy, self.host[id_arr], 1)
        return id_arr

    # -------------------------------------------------------------- escalation

    def snapshot_row(self, i: int) -> Dict[str, int]:
        """A row's full column state, as plain ints (picklable)."""
        return {
            "id": int(i),
            "klass": int(self.klass[i]),
            "host": int(self.host[i]),
            "state": int(self.state[i]),
            "value": int(self.value[i]),
            "calls": int(self.calls[i]),
            "shed": int(self.shed[i]),
            "cache_epoch": int(self.cache_epoch[i]),
            "queue": int(self.queue[i]),
        }

    def promote(self, ids) -> List[Dict[str, int]]:
        """Move rows to the PROMOTED band; returns their state snapshots.

        The snapshots seed the rich-object twins (the escalation
        boundary's analogue of a magistrate restoring from an OPR).  The
        rows' ids stay allocated and their columns stay in place --
        frozen -- so ``demote`` can fold the rich state back onto the
        *same* id.  Host occupancy drops while promoted (the rich twin
        occupies a real process slot instead).
        """
        np = self.np
        id_arr = np.asarray(ids, dtype=np.int64)
        if id_arr.size == 0:
            return []
        if bool((self.state[id_arr] == PROMOTED).any()):
            raise LegionError("promote: row already promoted")
        snapshots = [self.snapshot_row(int(i)) for i in id_arr]
        # LOST rows already left their (crashed) host's occupancy count
        # in mark_lost; only BULK rows vacate a live slot here.
        bulk = id_arr[self.state[id_arr] == BULK]
        self.state[id_arr] = PROMOTED
        np.add.at(self.host_occupancy, self.host[bulk], -1)
        return snapshots

    def demote(self, i: int, value: int, host: Optional[int] = None) -> None:
        """Fold a rich twin's state back onto row ``i`` (BULK again).

        ``value`` is the twin's application state; ``host`` optionally
        re-homes the row (recovery after its original host crashed).  The
        id is the same one ``promote`` snapshotted -- the allocator never
        recycled it in between (see :class:`IdAllocator`).
        """
        if int(self.state[i]) != PROMOTED:
            raise LegionError(f"demote: row {i} is not promoted")
        if host is not None:
            if not (0 <= host < self.n_hosts):
                raise LegionError(f"demote: host {host} out of range")
            self.host[i] = host
        if not bool(self.host_up[self.host[i]]):
            raise LegionError(f"demote: host {int(self.host[i])} is down")
        self.value[i] = int(value)
        self.state[i] = BULK
        self.host_occupancy[self.host[i]] += 1

    # ------------------------------------------------------------------- chaos

    def bulk_ids_on_host(self, host_id: int):
        """The BULK-band ids currently occupying ``host_id``'s slots."""
        np = self.np
        mask = (self.host == host_id) & (self.state == BULK)
        return np.nonzero(mask)[0].astype(np.int64)

    def crash_host(self, host_id: int) -> None:
        """Mark a host slot range down (the engine decides who escalates)."""
        if not (0 <= host_id < self.n_hosts):
            raise LegionError(f"crash_host: host {host_id} out of range")
        self.host_up[host_id] = False

    def mark_lost(self, ids) -> None:
        """Move BULK rows to the LOST band (their host crashed).

        The rows vacate their slots; a later ``promote`` recovers them
        into the rich-object path without double-counting occupancy.
        """
        np = self.np
        id_arr = np.asarray(ids, dtype=np.int64)
        if id_arr.size == 0:
            return
        if bool((self.state[id_arr] != BULK).any()):
            raise LegionError("mark_lost: only BULK rows can be lost")
        self.state[id_arr] = LOST
        np.add.at(self.host_occupancy, self.host[id_arr], -1)

    def restore_host(self, host_id: int) -> None:
        """Bring a crashed host slot range back up."""
        self.host_up[host_id] = True

    # --------------------------------------------------------------- reporting

    def band_histogram(self) -> Dict[str, int]:
        """Row counts per lifecycle band."""
        np = self.np
        counts = np.bincount(self.state, minlength=3)
        return {BAND_NAMES[band]: int(counts[band]) for band in (BULK, PROMOTED, LOST)}

    def value_checksum(self) -> int:
        """An order-sensitive digest of per-id application state.

        Weighting each value by a per-id coefficient makes the checksum
        sensitive to *which* id holds which value, not just the total --
        a swapped pair of rows changes it.  Computable identically by the
        per-agent reference machine (plain int arithmetic, no float).
        """
        np = self.np
        n = self.size
        if n == 0:
            return 0
        weights = (np.arange(n, dtype=np.int64) % 9973) + 1
        return int((self.value * weights % 2305843009213693951).sum() % 2305843009213693951)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StateFrame rows={self.size} classes={self.n_classes} "
            f"hosts={self.n_hosts} bands={self.band_histogram()}>"
        )
