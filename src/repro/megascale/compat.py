"""Optional-numpy shim for the columnar mega-scale backend.

The core reproduction runs without numpy (``repro[mega]`` is the extra
that pulls it in); everything under :mod:`repro.megascale` must degrade
to a clear, actionable error instead of an ImportError at import time.
Tests use :data:`HAVE_NUMPY` (via ``pytest.importorskip``) to skip
gracefully on numpy-less installs.
"""

from __future__ import annotations

from repro.errors import LegionError

try:  # pragma: no cover - exercised via HAVE_NUMPY on both kinds of install
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less installs only
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False


def require_numpy(feature: str = "the columnar mega-scale backend"):
    """Return the numpy module, or raise a LegionError naming the fix.

    Every megascale entry point (frame construction, the ``--mega``
    experiment flag, the benchmarks) funnels through this so a numpy-less
    install fails with one consistent message instead of a traceback
    inside a kernel.
    """
    if not HAVE_NUMPY:
        raise LegionError(
            f"{feature} needs numpy, which is not installed; "
            'install the optional extra: pip install "repro[mega]"'
        )
    return np
