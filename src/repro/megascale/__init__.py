"""Columnar mega-scale backend: state tables + frame-at-once kernels.

The bulk of a 10^6-10^7 object population lives in a
:class:`~repro.megascale.frame.StateFrame` (numpy columns over dense,
never-recycled ids); :class:`~repro.megascale.engine.BulkEngine` applies
whole-tick transitions as array operations; any id the scenario actually
touches crosses the escalation boundary into the ordinary rich-object
path and folds back when quiet.  ``repro.megascale.reference`` is the
numpy-free per-agent twin the differential tests trust; the scenario
module runs the same seeded plan through either backend.

numpy is optional (the ``repro[mega]`` extra): importing this package is
always safe, but constructing a frame without numpy raises a
:class:`~repro.errors.LegionError` naming the fix.
"""

from repro.megascale.compat import HAVE_NUMPY, require_numpy
from repro.megascale.frame import BULK, LOST, PROMOTED, IdAllocator, StateFrame
from repro.megascale.engine import BulkEngine, EngineLedger, TickOutcome
from repro.megascale.reference import ReferenceMachine, RefLedger, RefObject
from repro.megascale.scenario import (
    LiveEscalationBoundary,
    MegaOutcome,
    MegaReport,
    MegaScenario,
    build_plan,
    differential_spec,
    run_columnar,
    run_rich,
)

__all__ = [
    "HAVE_NUMPY",
    "require_numpy",
    "BULK",
    "PROMOTED",
    "LOST",
    "IdAllocator",
    "StateFrame",
    "BulkEngine",
    "EngineLedger",
    "TickOutcome",
    "ReferenceMachine",
    "RefLedger",
    "RefObject",
    "LiveEscalationBoundary",
    "MegaOutcome",
    "MegaReport",
    "MegaScenario",
    "build_plan",
    "differential_spec",
    "run_columnar",
    "run_rich",
]
