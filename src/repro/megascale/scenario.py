"""One seeded scenario, two interchangeable backends.

A :class:`MegaScenario` is a deterministic call plan over a population:
per tick, a vectorised draw picks bulk targets and a short round-robin
list of explicit *touches* lands on the standing hot set.  The plan is a
pure function of (spec, seed) -- built once from a named numpy stream --
so every backend consumes byte-identical inputs.

Two runners execute the same plan:

* :func:`run_rich` -- every object is a real Legion instance; every call
  goes through ``runtime.invoke``; the report is *measured* from the live
  system (MetricsRegistry counters, per-instance impl state, runtime
  settlement).  This is the ground truth, viable up to ~10^4 objects.
* :func:`run_columnar` -- the population lives in a
  :class:`~repro.megascale.frame.StateFrame`; bulk calls apply
  frame-at-once; only ids the scenario touches are promoted through
  :class:`LiveEscalationBoundary` into real Legion objects (and demoted
  back when quiet).  Viable at 10^6-10^7 objects.

The differential harness (``tests/megascale/test_differential.py``) runs
both at overlap scales and asserts the rendered :class:`MegaReport` is
identical -- per-class counters, settlement, value checksum, the lot.
The columnar backend is only trusted where that proof holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import LegionError
from repro.megascale.compat import require_numpy
from repro.megascale.engine import BulkEngine
from repro.megascale.frame import StateFrame
from repro.metrics.counters import ComponentKind
from repro.system.legion import LegionSystem, SiteSpec


@dataclass(frozen=True)
class MegaScenario:
    """A deterministic mega-population workload specification."""

    population: int
    n_classes: int = 4
    #: Virtual host-slot ranges for the bulk frame (columnar backend only).
    bulk_hosts: int = 4
    #: The live testbed both backends build (sites x hosts).
    sites: int = 2
    hosts_per_site: int = 2
    ticks: int = 6
    tick_ms: float = 20.0
    calls_per_tick: int = 64
    #: Standing "interesting set": ids the scenario touches by design.
    hot: int = 4
    touches_per_tick: int = 2
    demote_after: int = 2

    def __post_init__(self) -> None:
        if self.population < max(self.n_classes, self.bulk_hosts, self.hot, 1):
            raise LegionError(
                "population must cover classes, bulk hosts, and the hot set"
            )

    def hot_ids(self) -> List[int]:
        """The hot set, spread across the id space (and thus classes/hosts)."""
        stride = max(1, self.population // max(1, self.hot))
        return [j * stride for j in range(self.hot)]


def differential_spec(population: int) -> MegaScenario:
    """The overlap-scale spec the differential harness runs both ways."""
    return MegaScenario(
        population=population,
        calls_per_tick=max(16, population // 10),
    )


def build_plan(spec: MegaScenario, seed: int) -> List[Any]:
    """Per-tick target arrays: one seeded vectorised draw + the touches.

    A pure function of (spec, seed): the draw comes from the named numpy
    stream ``mega-calls`` of a fresh :class:`RngStreams`, consumed tick
    by tick, so both backends -- and every ``--jobs``/``--shards``
    worker -- see byte-identical plans.
    """
    np = require_numpy("the mega scenario plan")
    from repro.simkernel.rng import RngStreams

    rng = RngStreams(seed).numpy_stream(f"mega-calls-{spec.population}")
    hot = spec.hot_ids()
    plan = []
    for tick in range(spec.ticks):
        drawn = rng.integers(0, spec.population, size=spec.calls_per_tick)
        touches = [
            hot[(tick * spec.touches_per_tick + j) % len(hot)]
            for j in range(spec.touches_per_tick)
        ]
        plan.append(
            np.concatenate([drawn.astype(np.int64), np.asarray(touches, dtype=np.int64)])
        )
    return plan


def build_live_system(spec: MegaScenario, seed: int):
    """The (identical) live testbed both backends run on."""
    sites = [
        SiteSpec(
            name=f"mega{i}",
            hosts=spec.hosts_per_site,
            max_processes=max(1024, spec.population),
        )
        for i in range(spec.sites)
    ]
    system = LegionSystem.build(sites, seed=seed)
    classes = [
        system.create_class(f"MegaC{k}", factory=_counter_factory(k))
        for k in range(spec.n_classes)
    ]
    client = system.new_client("mega-driver", site=system.sites[0].name)
    return system, classes, client


def _counter_factory(k: int):
    from repro.workloads.apps import CounterImpl

    def factory() -> "CounterImpl":
        return CounterImpl()

    factory.__name__ = f"mega_counter_{k}"
    return factory


def _instance_servers(system) -> Dict[Any, Any]:
    """loid → ObjectServer for every running application instance."""
    out: Dict[Any, Any] = {}
    for host_server in system.host_servers.values():
        for entry in host_server.impl.processes.running():
            out[entry.loid] = entry.server
    return out


def _runtimes_settle(system, clients) -> bool:
    """Every runtime's settlement identity closes, nothing pending."""
    servers = (
        list(system.host_servers.values())
        + list(system.magistrates.values())
        + list(system.agents.values())
        + list(clients)
    )
    for host_server in system.host_servers.values():
        for entry in host_server.impl.processes.running():
            servers.append(entry.server)
    for server in servers:
        s = server.runtime.stats
        settled = (
            s.replies_received
            + s.timeouts
            + s.delivery_failures
            + s.cancelled
            + s.shed
        )
        if s.requests_sent != settled or server.runtime._pending:
            return False
    return True


# --------------------------------------------------------------------- report


@dataclass
class MegaReport:
    """The backend-invariant facts of one scenario run.

    Everything here must be equal between the rich and columnar backends
    on the same (spec, seed) -- the rendered text is what the
    differential harness compares byte for byte.  Backend-specific
    diagnostics (promotions, allocator high-water, wall time) live on
    :class:`MegaOutcome` instead.
    """

    population: int
    ticks: int
    issued: int
    completed: int
    shed: int
    class_calls: List[int]
    value_total: int
    value_checksum: int
    settled: bool
    wire_settled: bool

    def render(self) -> str:
        lines = [
            f"mega population={self.population} ticks={self.ticks}",
            f"issued={self.issued} completed={self.completed} shed={self.shed}",
            "class_calls=" + ",".join(str(c) for c in self.class_calls),
            f"value_total={self.value_total} checksum={self.value_checksum}",
            f"settled={self.settled} wire_settled={self.wire_settled}",
        ]
        return "\n".join(lines)


@dataclass
class MegaOutcome:
    """One backend run: the comparable report + that backend's diagnostics."""

    report: MegaReport
    backend: str
    diagnostics: Dict[str, Any] = field(default_factory=dict)
    sim_clock: float = 0.0
    sim_events: int = 0


# ----------------------------------------------------------- live escalation


class LiveEscalationBoundary:
    """The rich-object side of the escalation boundary.

    ``promote`` backs each promoted id with a real Legion instance of the
    id's class, seeding the twin's state from the frame snapshot exactly
    the way a magistrate restores an object from its checkpointed OPR --
    out-of-band, not via a counted invocation.  ``call`` routes one
    escalated call through ``runtime.invoke`` on the twin; completions
    close the engine ledger asynchronously.  ``demote`` reads the twin's
    state back for the frame (the twin stays inert and is reused if the
    id is promoted again -- its Legion identity, like the dense id, is
    never recycled).
    """

    def __init__(self, system, classes, client) -> None:
        self.system = system
        self.classes = classes
        self.client = client
        self.engine: Optional[BulkEngine] = None
        self.twins: Dict[int, Any] = {}  # dense id → instance Binding
        self.failures: List[str] = []
        self.rich_calls = 0

    def promote(self, snapshots, reason: str) -> None:
        for snap in snapshots:
            i = snap["id"]
            if i not in self.twins:
                self.twins[i] = self.system.create_instance(
                    self.classes[snap["klass"]].loid
                )
            server = _instance_servers(self.system).get(self.twins[i].loid)
            if server is None:
                raise LegionError(f"promote: twin for id {i} has no live server")
            server.impl.value = snap["value"]

    def call(self, i: int) -> None:
        self.rich_calls += 1
        self.system.spawn(self._one_call(i), name=f"mega-esc-{i}")

    def _one_call(self, i: int):
        try:
            yield from self.client.runtime.invoke(
                self.twins[i].loid, "Increment", 1, timeout=1_000.0
            )
        except LegionError as exc:
            self.failures.append(f"id {i}: {exc}")
            return
        self.engine.note_escalated_done(i)

    def demote(self, i: int) -> int:
        server = _instance_servers(self.system).get(self.twins[i].loid)
        if server is None:
            raise LegionError(f"demote: twin for id {i} has no live server")
        return int(server.impl.value)

    def twin_class_calls(self, n_classes: int) -> List[int]:
        """Per-class REQUESTS measured at the twins (from the registry)."""
        counts = self.system.services.metrics.loads(ComponentKind.APPLICATION)
        by_loid = {str(binding.loid): i for i, binding in self.twins.items()}
        out = [0] * n_classes
        for name, count in counts.items():
            if name in by_loid:
                i = by_loid[name]
                out[int(self.engine.frame.klass[i])] += count
        return out


# ----------------------------------------------------------------- backends


def run_columnar(spec: MegaScenario, seed: int) -> MegaOutcome:
    """The columnar backend: bulk frame + live escalation boundary."""
    np = require_numpy("the columnar scenario backend")
    plan = build_plan(spec, seed)
    system, classes, client = build_live_system(spec, seed)

    frame = StateFrame(n_classes=spec.n_classes, n_hosts=spec.bulk_hosts)
    ids = frame.extend(
        spec.population,
        klass=(np.arange(spec.population, dtype=np.int64) % spec.n_classes).astype(
            np.int32
        ),
        host=(np.arange(spec.population, dtype=np.int64) % spec.bulk_hosts).astype(
            np.int32
        ),
    )
    assert len(ids) == spec.population
    boundary = LiveEscalationBoundary(system, classes, client)
    engine = BulkEngine(
        frame,
        hot_ids=spec.hot_ids(),
        boundary=boundary,
        demote_after=spec.demote_after,
    )
    boundary.engine = engine

    start = system.kernel.now
    for tick, targets in enumerate(plan):
        engine.tick(tick, targets)
        system.kernel.run(until=start + (tick + 1) * spec.tick_ms)
        engine.demote_idle(tick)
    system.kernel.run()  # drain late escalated replies
    engine.demote_all()

    ledger = engine.ledger
    twin_calls = boundary.twin_class_calls(spec.n_classes)
    report = MegaReport(
        population=spec.population,
        ticks=spec.ticks,
        issued=ledger.issued,
        completed=ledger.bulk_completed + ledger.escalated_completed,
        shed=ledger.shed,
        class_calls=[int(c) for c in frame.class_calls],
        value_total=int(frame.value.sum()),
        value_checksum=frame.value_checksum(),
        settled=engine.settled() and not boundary.failures,
        wire_settled=_runtimes_settle(system, [client]),
    )
    return MegaOutcome(
        report=report,
        backend="columnar",
        diagnostics={
            "promotions": ledger.promotions,
            "demotions": ledger.demotions,
            "fault_promotions": ledger.fault_promotions,
            "rich_calls": boundary.rich_calls,
            "twin_class_calls": twin_calls,
            "escalated_by_class_match": twin_calls
            == _escalated_by_class(engine),
            "allocator_high_water": frame.allocator.high_water,
            "band_histogram": frame.band_histogram(),
            "failures": list(boundary.failures),
        },
        sim_clock=system.kernel.now,
        sim_events=system.kernel.events_executed,
    )


def _escalated_by_class(engine: BulkEngine) -> List[int]:
    """The engine-side escalated tally per class (cross-check vs metrics)."""
    frame = engine.frame
    out = [0] * frame.n_classes
    total_by_class = [int(c) for c in frame.class_calls]
    # class_calls = bulk + escalated; bulk per class is recomputable from
    # the per-row calls column (escalated completions never touch it).
    bulk_by_class = engine.np.bincount(
        frame.klass, weights=frame.calls, minlength=frame.n_classes
    ).astype(engine.np.int64)
    for k in range(frame.n_classes):
        out[k] = total_by_class[k] - int(bulk_by_class[k])
    return out


def run_rich(spec: MegaScenario, seed: int) -> MegaOutcome:
    """The rich-object backend: every id is a real Legion instance."""
    plan = build_plan(spec, seed)
    system, classes, client = build_live_system(spec, seed)

    instances = [
        system.create_instance(classes[i % spec.n_classes].loid)
        for i in range(spec.population)
    ]
    completed = [0]
    failures: List[str] = []

    def one_call(i: int):
        try:
            yield from client.runtime.invoke(
                instances[i].loid, "Increment", 1, timeout=1_000.0
            )
        except LegionError as exc:
            failures.append(f"id {i}: {exc}")
            return
        completed[0] += 1

    issued = 0
    start = system.kernel.now
    for tick, targets in enumerate(plan):
        for i in targets.tolist():
            issued += 1
            system.spawn(one_call(int(i)), name=f"mega-rich-{i}")
        system.kernel.run(until=start + (tick + 1) * spec.tick_ms)
    system.kernel.run()  # drain

    servers = _instance_servers(system)
    values = [int(servers[b.loid].impl.value) for b in instances]
    counts = system.services.metrics.loads(ComponentKind.APPLICATION)
    class_calls = [0] * spec.n_classes
    by_loid = {str(b.loid): i for i, b in enumerate(instances)}
    for name, count in counts.items():
        if name in by_loid:
            class_calls[by_loid[name] % spec.n_classes] += count

    checksum = 0
    mod = 2305843009213693951
    for i, v in enumerate(values):
        checksum += v * ((i % 9973) + 1) % mod
    report = MegaReport(
        population=spec.population,
        ticks=spec.ticks,
        issued=issued,
        completed=completed[0],
        shed=0,
        class_calls=class_calls,
        value_total=sum(values),
        value_checksum=checksum % mod,
        settled=completed[0] == issued and not failures,
        wire_settled=_runtimes_settle(system, [client]),
    )
    return MegaOutcome(
        report=report,
        backend="rich",
        diagnostics={"failures": failures},
        sim_clock=system.kernel.now,
        sim_events=system.kernel.events_executed,
    )
